"""Network lifetime: how snapshot queries stretch a battery budget.

A condensed version of the paper's Figure 10 experiment: two identical
networks with finite batteries answer the same stream of random spatial
queries — one regularly (every matching node responds), one through the
snapshot (representatives answer for their members, resigning before
their battery runs out).  The example prints the coverage curves and
the area under each.

Run with::

    python examples/network_lifetime.py        (a few minutes)
    python examples/network_lifetime.py quick  (a shorter horizon)

``REPRO_EXAMPLE_QUERIES`` overrides the query count outright (the test
suite's smoke runs set it to a few hundred).
"""

from __future__ import annotations

import os
import sys

from repro.experiments import figure10_lifetime


def render_bar(value: float, width: int = 40) -> str:
    filled = int(round(value * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    quick = len(sys.argv) > 1 and sys.argv[1] == "quick"
    n_queries = 3_000 if quick else 8_000
    n_queries = int(os.environ.get("REPRO_EXAMPLE_QUERIES", n_queries))
    # the bucketed rendering below needs at least one query per bucket
    n_queries = max(n_queries, 12)

    print(f"running {n_queries} random spatial queries against two networks...")
    result = figure10_lifetime(n_queries=n_queries, seed=7)

    bucket = n_queries // 12
    print()
    print(f"{'queries':>13}  {'regular':>7} {'':40}  {'snapshot':>8}")
    for index in range(0, n_queries, bucket):
        regular = sum(result.regular.samples[index : index + bucket]) / bucket
        snapshot = sum(result.snapshot.samples[index : index + bucket]) / bucket
        print(
            f"{index:>6}-{index + bucket:<6} {regular:>7.2f} "
            f"{render_bar(snapshot)}  {snapshot:>8.2f}"
        )
    print()
    print(f"area under coverage curve — regular : {result.regular.area:.0f}")
    print(f"area under coverage curve — snapshot: {result.snapshot.area:.0f}")
    print(f"snapshot/regular lifetime gain      : {result.area_gain:.2f}x")
    print()
    print("regular execution drains the network roughly uniformly and")
    print("collapses mid-run; the snapshot drains representatives faster")
    print("but hands the role off before they die, degrading gracefully.")


if __name__ == "__main__":
    main()
