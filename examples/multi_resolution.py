"""Multi-resolution snapshots and per-query error thresholds (§1, §3.1).

The paper sketches running the election at several thresholds to get
network "snapshots" at different resolutions, and serving each query
from the coarsest snapshot whose threshold does not exceed the query's
own (``T1 <= T2 <= ...`` reuse rule).  This example builds a
three-resolution family, then routes SQL queries with ``USE SNAPSHOT
WITH ERROR t`` clauses to the right resolution.

Run with::

    python examples/multi_resolution.py

``REPRO_EXAMPLE_NODES`` shrinks the deployment for smoke runs.
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    MultiResolutionSnapshot,
    ProtocolConfig,
    RandomWalkConfig,
    SnapshotRuntime,
    generate_random_walk,
    uniform_random_topology,
)
from repro.query import parse_query


def main() -> None:
    rng = np.random.default_rng(31)
    n_nodes = int(os.environ.get("REPRO_EXAMPLE_NODES", "100"))
    dataset, __ = generate_random_walk(
        RandomWalkConfig(n_nodes=n_nodes, n_classes=min(10, n_nodes)), rng
    )
    topology = uniform_random_topology(n_nodes, transmission_range=1.4, rng=rng)
    network = SnapshotRuntime(topology, dataset, ProtocolConfig(threshold=1.0))
    network.train(duration=10)
    network.advance_to(100)

    thresholds = (1.0, 10.0, 100.0)
    multi = MultiResolutionSnapshot(network, thresholds)
    views = multi.build()

    print("multi-resolution snapshot family:")
    for threshold in thresholds:
        view = views[threshold]
        print(f"  T = {threshold:>6.1f}: {view.size:>3} representatives "
              f"({100 * view.fraction():.0f}% of the network)")

    print()
    print("routing queries by their own error budgets (§3.1 reuse rule):")
    queries = [
        "SELECT loc, value FROM sensors USE SNAPSHOT WITH ERROR 2.5",
        "SELECT loc, value FROM sensors USE SNAPSHOT WITH ERROR 50",
        "SELECT loc, value FROM sensors USE SNAPSHOT WITH ERROR 1000",
        "SELECT loc, value FROM sensors USE SNAPSHOT WITH ERROR 0.2",
    ]
    for text in queries:
        query = parse_query(text)
        view = multi.view_for_threshold(query.snapshot_threshold)
        if view is None:
            print(f"  error budget {query.snapshot_threshold:>7}: tighter than "
                  f"every snapshot — needs its own election")
        else:
            used = max(t for t in thresholds if views[t] is view)
            print(f"  error budget {query.snapshot_threshold:>7}: served by the "
                  f"T={used:g} snapshot ({view.size} representatives)")

    print()
    print("each extra resolution costs one election round of at most five")
    print("messages per node (Table 2); the models are shared across all")
    print("resolutions, so no extra training is needed.")


if __name__ == "__main__":
    main()
