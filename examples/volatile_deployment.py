"""A volatile deployment: mobility, loss, failures — and self-healing.

The paper's thesis (§1) is that in uncontrolled, volatile environments
the *network* should absorb the dynamics, giving applications
"transparent access to the collected measurements in a unified way".
This example stresses exactly that: a lossy network whose nodes drift
(random-waypoint mobility) and occasionally die, while a long-running
continuous query keeps sampling through it all.  The energy-based
planner picks the execution mode; the maintenance protocol re-elects
around every disruption; the application code never changes.

Run with::

    python examples/volatile_deployment.py

``REPRO_EXAMPLE_NODES`` shrinks the deployment for smoke runs.
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    GlobalLoss,
    ProtocolConfig,
    RandomWalkConfig,
    SnapshotRuntime,
    generate_random_walk,
    uniform_random_topology,
)
from repro.network.mobility import RandomWaypoint, apply_mobility
from repro.query import ContinuousQuery, QueryExecutor, QueryPlanner, parse_query


def main() -> None:
    rng = np.random.default_rng(99)
    n_nodes = int(os.environ.get("REPRO_EXAMPLE_NODES", "60"))
    dataset, __ = generate_random_walk(
        RandomWalkConfig(n_nodes=n_nodes, n_classes=3, length=700), rng
    )
    topology = uniform_random_topology(n_nodes, transmission_range=0.45, rng=rng)
    network = SnapshotRuntime(
        topology,
        dataset,
        # member_expiry drops claims on nodes that drifted away (§3's
        # timestamp-based filtering) — essential under mobility
        ProtocolConfig(
            threshold=2.0, heartbeat_period=25.0, member_expiry_periods=3.0
        ),
        seed=99,
        loss_model=GlobalLoss(0.1),        # 10% message loss, always
        battery_capacity=2_000.0,
    )

    print("training models over a lossy radio ...")
    network.train(duration=10)
    network.advance_to(100)
    view = network.run_election()
    print(f"initial snapshot: {view.size} representatives of {view.n_nodes} nodes")

    network.start_maintenance()
    apply_mobility(network, RandomWaypoint(speed=0.004), period=10.0)

    planner = QueryPlanner(network)
    query = parse_query(
        "SELECT loc, value FROM sensors "
        "SAMPLE INTERVAL 20s FOR 400s USE SNAPSHOT"
    )
    plan = planner.plan(query)
    print(f"planner: {plan.reason}")

    executor = QueryExecutor(network)
    handle = ContinuousQuery(executor, query, sink=0).start()

    # mid-query sabotage: kill five random nodes (maybe representatives)
    def sabotage() -> None:
        alive = network.alive_ids()
        victims = network.simulator.random.stream("chaos").choice(
            alive, size=min(5, len(alive)), replace=False
        )
        for victim in victims:
            if victim != 0:
                network.radio.node(int(victim)).battery.draw(1e12)
        print(f"  t={network.now:.0f}: killed nodes "
              f"{sorted(int(v) for v in victims if v != 0)}")

    network.simulator.schedule(150.0, sabotage, label="chaos")

    network.advance_to(network.now + 420)

    print()
    print(f"{'epoch':>5}  {'t':>6}  {'coverage':>8}  {'participants':>12}")
    for record in handle.records:
        print(f"{record.epoch:>5}  {record.time:>6.0f}  "
              f"{record.coverage:>8.2f}  "
              f"{record.result.n_participants:>12}")
    print()
    print(f"mean coverage     : {handle.mean_coverage():.2f}")
    print(f"mean participants : {handle.mean_participants():.1f} of "
          f"{len(network.alive_ids())} alive nodes")
    print(f"snapshot size now : {network.snapshot().size} "
          f"(spurious claims: {network.snapshot().audit().n_spurious})")
    print()
    print("despite loss, motion and deaths, the query kept answering —")
    print("the network, not the application, absorbed every disruption.")


if __name__ == "__main__":
    main()
