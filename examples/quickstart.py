"""Quickstart: build a sensor network, elect a snapshot, query it.

Walks the paper's full pipeline on the §6.1 synthetic workload:

1. deploy 100 sensors uniformly on the unit square;
2. run the warm-up query so neighbors learn correlation models;
3. elect the representative set with the localized §5 protocol;
4. answer the paper's own example query (§3.1) — once regularly, once
   with ``USE SNAPSHOT`` — and compare who had to participate.

Run with::

    python examples/quickstart.py

``REPRO_EXAMPLE_NODES`` shrinks the deployment (the test suite's smoke
runs use it); the default reproduces the paper's 100-node setup.
"""

from __future__ import annotations

import os

import numpy as np

from repro import (
    ProtocolConfig,
    RandomWalkConfig,
    SnapshotRuntime,
    generate_random_walk,
    uniform_random_topology,
)
from repro.query import QueryExecutor, parse_query


def main() -> None:
    rng = np.random.default_rng(2005)
    n_nodes = int(os.environ.get("REPRO_EXAMPLE_NODES", "100"))

    # 1. deployment + workload: 4 hidden correlation classes (§6.1)
    dataset, classes = generate_random_walk(
        RandomWalkConfig(n_nodes=n_nodes, n_classes=4), rng
    )
    topology = uniform_random_topology(n_nodes, transmission_range=0.7, rng=rng)
    network = SnapshotRuntime(topology, dataset, ProtocolConfig(threshold=1.0))

    # 2. warm-up: a 10-unit query selecting every node's value lets the
    #    neighbors build their linear models (§6.1)
    network.train(duration=10)
    network.advance_to(100)

    # 3. the localized election (at most 5 messages per node, Table 2)
    view = network.run_election()
    print(f"network of {view.n_nodes} nodes, {len(set(classes))} hidden classes")
    print(f"snapshot: {view.size} representatives "
          f"({100 * view.fraction():.0f}% of the network)")
    print(f"max protocol messages by any node: "
          f"{network.stats.max_protocol_messages_any_node()}")

    # 4. the §3.1 example query, in both execution modes
    text = (
        "SELECT loc, temperature FROM sensors "
        "WHERE loc IN SOUTH_EAST_QUADRANT "
        "SAMPLE INTERVAL 1sec FOR 5min"
    )
    executor = QueryExecutor(network)
    regular = executor.execute(parse_query(text), sink=0, rounds=1)
    snapshot = executor.execute(
        parse_query(text + " USE SNAPSHOT"), sink=0, rounds=1
    )

    print()
    print(f"regular execution : {regular.n_participants} nodes participated, "
          f"{len(regular.reports)} measurements")
    print(f"snapshot execution: {snapshot.n_participants} nodes participated, "
          f"{len(snapshot.reports)} measurements "
          f"({sum(1 for _, est in snapshot.reports.values() if est)} estimated)")
    saved = 1 - snapshot.n_participants / max(1, regular.n_participants)
    print(f"participation saved by the snapshot: {100 * saved:.0f}%")

    # the estimates are within the threshold of the truth
    worst = max(
        (network.value_of(origin) - value) ** 2
        for origin, (value, estimated) in snapshot.reports.items()
        if estimated
    )
    print(f"worst squared error of an estimated reading: {worst:.3f} "
          f"(threshold T = {network.config.threshold})")


if __name__ == "__main__":
    main()
