"""Weather monitoring: multi-resolution snapshots over wind-speed data.

The paper's motivating deployment (§1) collects meteorological data
over a large terrain.  This example runs the §6.3 scenario on the
synthetic wind-speed workload: it trains a network, sweeps the error
threshold, and shows the precision/energy dial the application gets to
turn — a tighter threshold keeps more sensors awake but answers more
precisely, and the realized error always stays well below the
threshold (Figures 11 and 12).

Run with::

    python examples/weather_monitoring.py

``REPRO_EXAMPLE_NODES`` shrinks the deployment for smoke runs.
"""

from __future__ import annotations

import os
import statistics

import numpy as np

from repro import (
    NodeMode,
    ProtocolConfig,
    SnapshotRuntime,
    WeatherConfig,
    generate_weather,
    uniform_random_topology,
)
from repro.query import Aggregate, Query, QueryExecutor, Rect


def build_network(threshold: float, seed: int = 11) -> SnapshotRuntime:
    rng = np.random.default_rng(seed)
    n_nodes = int(os.environ.get("REPRO_EXAMPLE_NODES", "100"))
    # As in §6.3, the election runs after the last (100th) measurement,
    # so the estimates are evaluated against the values the
    # representability test saw.
    dataset, __ = generate_weather(WeatherConfig(n_series=n_nodes, length=100), rng)
    topology = uniform_random_topology(n_nodes, transmission_range=1.5, rng=rng)
    network = SnapshotRuntime(
        topology, dataset, ProtocolConfig(threshold=threshold), seed=seed
    )
    network.train(duration=10)
    network.advance_to(100)
    return network


def estimate_error(network: SnapshotRuntime) -> float:
    """Mean squared error of all representative estimates right now."""
    errors = []
    for node in network.nodes.values():
        if node.mode is not NodeMode.ACTIVE:
            continue
        for member in node.represented:
            estimate = node.estimate_for(member)
            if estimate is not None:
                errors.append((network.value_of(member) - estimate) ** 2)
    return statistics.fmean(errors) if errors else 0.0


def main() -> None:
    print(f"{'T':>6}  {'snapshot':>8}  {'est. sse':>9}  {'avg wind (est)':>14}")
    for threshold in (0.1, 0.5, 1.0, 5.0, 10.0):
        network = build_network(threshold)
        view = network.run_election()
        sse = estimate_error(network)

        # an aggregate snapshot query over the whole field
        executor = QueryExecutor(network)
        result = executor.execute(
            Query(
                aggregate=Aggregate.AVG,
                region=Rect(0.0, 0.0, 1.0, 1.0),
                use_snapshot=True,
            ),
            sink=0,
        )
        print(
            f"{threshold:>6.1f}  {view.size:>8d}  {sse:>9.4f}  "
            f"{result.aggregate_value:>14.2f}"
        )
    print()
    print("tighter thresholds keep more sensors awake; the realized sse")
    print("stays far below T at every resolution (Figures 11 and 12).")


if __name__ == "__main__":
    main()
