"""The query serving front door.

:class:`QueryFrontEnd` admits many concurrent clients against one live
:class:`~repro.core.runtime.SnapshotRuntime`:

* **Bounded admission.**  ``submit`` is callable from any number of
  client threads; requests beyond ``max_queue`` are rejected with
  :class:`AdmissionRejected` instead of piling up unboundedly, and a
  ``max_cost`` budget rejects queries whose planned transmission cost
  exceeds what the deployment should spend on one client (cost-based
  admission over the :class:`~repro.query.planner.QueryCostEstimate`
  numbers: transmissions, bytes on the network, nodes touched).
* **Batched dispatch.**  A single dispatcher thread drains the queue in
  batches and groups requests by sink, flooding *one* aggregation tree
  per group and passing it through ``execute(tree=...)`` — in-flight
  queries with the same sink (their regions all overlap the flood,
  which spans the network) share the tree instead of re-flooding per
  query.  Execution is serialized on the runtime, which is what makes
  a single-threaded simulator safe to serve from many clients.
* **Epoch-keyed result reuse.**  Snapshot-mode results are cached in an
  :class:`~repro.serving.cache.EpochResultCache` keyed by the
  runtime's :meth:`~repro.core.runtime.SnapshotRuntime.structure_version`
  — representatives change only when the protocol epoch bumps on
  re-election, so a cached result is replayed verbatim until then and
  invalidated the moment the version moves.  Regular-mode results read
  live values and are never cached.

Serving metrics land in the runtime's registry: ``serving.admitted``
(outcome-labeled), ``serving.cache`` (hit/miss per served request),
``serving.queue_depth``, ``serving.batch_size``, ``serving.trees`` and
the ``serving.latency`` histogram :meth:`stats` reports p50/p99 from.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.runtime import SnapshotRuntime
from repro.query.ast import Query
from repro.query.executor import QueryExecutor, QueryResult
from repro.query.planner import QueryCostEstimate, QueryPlan, QueryPlanner

__all__ = [
    "AdmissionRejected",
    "LATENCY_BUCKETS",
    "QueryFrontEnd",
    "ServedResult",
]

#: Buckets of the ``serving.latency`` histogram, in wall-clock seconds.
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Buckets of the ``serving.batch_size`` histogram.
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


class AdmissionRejected(RuntimeError):
    """A query the front door refused to enqueue.

    ``reason`` is ``"queue"`` (admission queue full) or ``"cost"``
    (planned cost above the front-end's ``max_cost`` budget).
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason


@dataclass(frozen=True)
class ServedResult:
    """One served query: the answer plus how it was produced.

    Attributes
    ----------
    result:
        The query result (identical whether served fresh or cached —
        the differential suite in ``tests/serving/`` proves it).
    plan:
        The planner's mode decision for the query.
    estimate:
        The pre-dispatch cost estimate admission was judged on.
    cached:
        Whether the result was replayed from the epoch cache.
    version:
        The runtime structure version the result is valid for.
    latency:
        Wall-clock seconds from ``submit`` to completion.
    """

    result: QueryResult
    plan: QueryPlan
    estimate: QueryCostEstimate
    cached: bool
    version: tuple
    latency: float


@dataclass(frozen=True)
class _CacheEntry:
    result: QueryResult
    plan: QueryPlan
    estimate: QueryCostEstimate


@dataclass
class _Request:
    query: Query
    planned_query: Query
    sink: int
    plan: QueryPlan
    estimate: QueryCostEstimate
    future: Future
    t0: float


class QueryFrontEnd:
    """Admit, plan, batch and serve queries against a live runtime.

    Parameters
    ----------
    runtime:
        The deployment to serve from.
    planner:
        The cost-based planner; a fresh :class:`QueryPlanner` over
        ``runtime`` if omitted (pass one wrapping a
        ``MultiResolutionSnapshot`` to serve per-query thresholds).
    max_queue:
        Bound of the admission queue; further submits are rejected.
    batch_max:
        Most requests one dispatch drains (and can share trees across).
    max_cost:
        Reject queries whose estimated *total* transmissions exceed
        this; ``None`` admits everything the queue can hold.
    cache:
        Enable the epoch-keyed result cache.
    cache_capacity:
        LRU bound of the cache.
    default_sink:
        Sink for submits that name none; the smallest alive id when
        ``None`` — serving needs a *deterministic* default, a random
        per-request sink would shatter result reuse.
    charge_energy:
        Forwarded to the executor: fresh executions transmit real
        (energy-charged, snoopable) radio messages.
    """

    def __init__(
        self,
        runtime: SnapshotRuntime,
        planner: Optional[QueryPlanner] = None,
        *,
        max_queue: int = 256,
        batch_max: int = 32,
        max_cost: Optional[float] = None,
        cache: bool = True,
        cache_capacity: int = 1024,
        default_sink: Optional[int] = None,
        charge_energy: bool = True,
    ) -> None:
        from repro.serving.cache import EpochResultCache

        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.runtime = runtime
        self.planner = planner if planner is not None else QueryPlanner(runtime)
        self.executor: QueryExecutor = self.planner.executor
        self.max_cost = max_cost
        self.batch_max = batch_max
        self.default_sink = default_sink
        self.charge_energy = charge_energy
        self.cache: Optional[EpochResultCache] = (
            EpochResultCache(cache_capacity) if cache else None
        )
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=max_queue)
        # Reentrant so a holder (the fleet runner, mid-slice) can rebind
        # the front end without releasing serving exclusion first.
        self._runtime_lock = threading.RLock()
        self._dispatcher: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._bind_metrics()

    def _bind_metrics(self) -> None:
        metrics = self.runtime.metrics
        self._admitted = metrics.counter("serving.admitted", labels=("outcome",))
        self._cache_served = metrics.counter("serving.cache", labels=("outcome",))
        self._queue_depth = metrics.gauge("serving.queue_depth")
        self._batch_hist = metrics.histogram("serving.batch_size", BATCH_BUCKETS)
        self._trees = metrics.counter("serving.trees")
        self._latency = metrics.histogram("serving.latency", LATENCY_BUCKETS)

    @property
    def runtime_lock(self) -> threading.RLock:
        """The lock serializing every runtime touch (queries, slices).

        External drivers that advance the simulation while the front
        end serves — the fleet runner — must hold this around any
        ``advance_to``/``run_slice`` so dispatch never interleaves with
        event processing.
        """
        return self._runtime_lock

    def rebind(self, runtime: SnapshotRuntime) -> None:
        """Point the front end at a replacement runtime.

        The rolling-reconfiguration hand-off: after a fleet
        checkpoint → mutate → restore swap, the restored runtime is a
        distinct object graph, so the planner, executor and metric
        handles are rebuilt against it.  Serving counters live in the
        runtime's own registry and were checkpointed with it, so their
        totals carry over.  The epoch result cache survives — it is
        keyed by ``structure_version()``, which the restored runtime
        continues, and entries are invalidated exactly when the version
        moves, same as before the swap.
        """
        with self._runtime_lock:
            self.runtime = runtime
            self.planner = QueryPlanner(runtime)
            self.executor = self.planner.executor
            self._bind_metrics()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "QueryFrontEnd":
        """Start the dispatcher thread (idempotent)."""
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._stopping.clear()
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
            )
            self._dispatcher.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop serving.

        ``drain`` finishes every admitted request first; otherwise the
        queue is flushed and pending futures are cancelled.
        """
        if not drain:
            while True:
                try:
                    request = self._queue.get_nowait()
                except queue.Empty:
                    break
                request.future.cancel()
        self._stopping.set()
        if self._dispatcher is not None:
            self._dispatcher.join()
            self._dispatcher = None

    def __enter__(self) -> "QueryFrontEnd":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # front door
    # ------------------------------------------------------------------

    def submit(self, query: Query, sink: Optional[int] = None) -> "Future[ServedResult]":
        """Admit one query; returns a future resolving to its result.

        Callable from any thread.  A cache hit resolves immediately in
        the caller's thread without touching the execution path; a miss
        is planned, admission-checked, and enqueued for the dispatcher.

        Raises
        ------
        AdmissionRejected
            When the admission queue is full (``reason="queue"``) or
            the planned cost exceeds ``max_cost`` (``reason="cost"``).
        """
        t0 = time.perf_counter()
        sink = self._resolve_sink(sink)
        future: "Future[ServedResult]" = Future()

        if self.cache is not None:
            version = self.runtime.structure_version()
            entry = self.cache.get(version, (query, sink))
            if entry is not None:
                self._admitted.inc("admitted")
                self._cache_served.inc("hit")
                self._finish(future, t0, entry, cached=True, version=version)
                return future

        with self._runtime_lock:
            plan = self.planner.plan(query)
            planned_query = self.planner.rewrite(query, plan)
            estimate = self.planner.estimate_cost(query, use_snapshot=plan.use_snapshot)
        if self.max_cost is not None and estimate.total_transmissions > self.max_cost:
            self._admitted.inc("rejected_cost")
            raise AdmissionRejected(
                "cost",
                f"estimated cost {estimate.total_transmissions:.1f} tx exceeds "
                f"the front-end budget {self.max_cost:g}",
            )
        request = _Request(
            query=query,
            planned_query=planned_query,
            sink=sink,
            plan=plan,
            estimate=estimate,
            future=future,
            t0=t0,
        )
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            self._admitted.inc("rejected_queue")
            raise AdmissionRejected(
                "queue",
                f"admission queue is full ({self._queue.maxsize} pending)",
            ) from None
        self._admitted.inc("admitted")
        self._queue_depth.set(self._queue.qsize())
        return future

    def run_workload(
        self,
        requests: Sequence[Union[Query, tuple[Query, Optional[int]]]],
        clients: int = 4,
    ) -> list[ServedResult]:
        """Fire ``requests`` from a pool of ``clients`` threads.

        The thread-pool front door in convenience form: each request is
        a query or a ``(query, sink)`` pair, submitted concurrently and
        awaited.  Admission rejections propagate.
        """
        def one(item) -> ServedResult:
            query, sink = item if isinstance(item, tuple) else (item, None)
            return self.submit(query, sink=sink).result()

        with ThreadPoolExecutor(max_workers=max(1, clients)) as pool:
            return list(pool.map(one, requests))

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=0.02)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                continue
            batch = [first]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            self._queue_depth.set(self._queue.qsize())
            self._batch_hist.observe(len(batch))
            groups: dict[int, list[_Request]] = {}
            for request in batch:
                groups.setdefault(request.sink, []).append(request)
            for sink in sorted(groups):
                self._execute_group(sink, groups[sink])

    def _execute_group(self, sink: int, requests: list[_Request]) -> None:
        """Serve one same-sink group, sharing a single aggregation tree."""
        with self._runtime_lock:
            alive = set(self.runtime.alive_ids())
            tree = None
            for request in requests:
                if not request.future.set_running_or_notify_cancel():
                    continue
                version = self.runtime.structure_version()
                key = (request.query, request.sink)
                if self.cache is not None:
                    entry = self.cache.get(version, key)
                    if entry is not None:
                        # A duplicate earlier in this batch (or a
                        # concurrent client) already executed it.
                        self._cache_served.inc("hit")
                        self._finish(
                            request.future, request.t0, entry,
                            cached=True, version=version,
                        )
                        continue
                self._cache_served.inc("miss")
                try:
                    if tree is None:
                        tree = self.executor.build_tree(
                            sink, alive,
                            use_snapshot=request.planned_query.use_snapshot,
                        )
                        self._trees.inc()
                    result = self.executor.execute(
                        request.planned_query,
                        sink=sink,
                        tree=tree,
                        charge_energy=self.charge_energy,
                    )
                except Exception as error:  # surface to the client
                    request.future.set_exception(error)
                    continue
                entry = _CacheEntry(result, request.plan, request.estimate)
                if self.cache is not None and result.query.use_snapshot:
                    self.cache.put(version, key, entry)
                self._finish(
                    request.future, request.t0, entry,
                    cached=False, version=version,
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _resolve_sink(self, sink: Optional[int]) -> int:
        if sink is None:
            sink = self.default_sink
        if sink is None:
            alive = self.runtime.alive_ids()
            if not alive:
                raise RuntimeError("no alive node can act as sink")
            sink = min(alive)
        return int(sink)

    def _finish(
        self,
        future: "Future[ServedResult]",
        t0: float,
        entry: _CacheEntry,
        cached: bool,
        version: tuple,
    ) -> None:
        latency = time.perf_counter() - t0
        self._latency.observe(latency)
        served = ServedResult(
            result=entry.result,
            plan=entry.plan,
            estimate=entry.estimate,
            cached=cached,
            version=version,
            latency=latency,
        )
        if not future.cancelled():
            future.set_result(served)

    def stats(self) -> dict:
        """A point-in-time summary of the serving counters.

        ``p50``/``p99`` are wall-clock latency estimates from the
        ``serving.latency`` histogram buckets.
        """
        cache = self.cache
        return {
            "admitted": self._admitted.value("admitted"),
            "rejected_queue": self._admitted.value("rejected_queue"),
            "rejected_cost": self._admitted.value("rejected_cost"),
            "cache_hits": self._cache_served.value("hit"),
            "cache_misses": self._cache_served.value("miss"),
            "cache_invalidations": 0 if cache is None else cache.invalidations,
            "cache_entries": 0 if cache is None else len(cache),
            "queue_depth": self._queue.qsize(),
            "trees_built": self._trees.value(),
            "served": self._latency.cell().count,
            "p50_seconds": self._latency.quantile(0.50),
            "p99_seconds": self._latency.quantile(0.99),
        }
