"""Query serving front-end (§3.1's shared-substrate promise).

The paper frames snapshots as infrastructure every running query
shares: "the data models ... will be shared among all running queries".
This package is the serving layer that makes the shared substrate
usable by many concurrent clients at once:

* :class:`~repro.serving.frontend.QueryFrontEnd` — a thread-pool front
  door with a bounded admission queue, cost-based admission through the
  extended :class:`~repro.query.planner.QueryPlanner` estimates, and
  batched execution that shares one aggregation tree across in-flight
  queries with the same sink;
* :class:`~repro.serving.cache.EpochResultCache` — an epoch-keyed
  snapshot-result cache: representatives change only when the protocol
  epoch bumps on re-election, so a cached
  :class:`~repro.query.executor.QueryResult` stays field-identical to
  fresh execution until the runtime's
  :meth:`~repro.core.runtime.SnapshotRuntime.structure_version` moves
  (proven by the differential suite in ``tests/serving/``).
"""

from repro.serving.cache import EpochResultCache
from repro.serving.frontend import (
    AdmissionRejected,
    LATENCY_BUCKETS,
    QueryFrontEnd,
    ServedResult,
)

__all__ = [
    "AdmissionRejected",
    "EpochResultCache",
    "LATENCY_BUCKETS",
    "QueryFrontEnd",
    "ServedResult",
]
