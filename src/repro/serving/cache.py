"""Epoch-keyed snapshot-result cache.

A snapshot answer is a function of three things only: the query, the
collection sink, and the representation structure.  The structure
changes exactly when an election reshapes the representative set —
globally when the protocol epoch bumps, locally when a §5.1 maintenance
re-election repairs one neighborhood.  Both movements are captured by
:meth:`~repro.core.runtime.SnapshotRuntime.structure_version`, so a
result cached under one version can be replayed verbatim until the
version moves (Islam's correlation-aware caching argument, applied to
whole query results instead of model lines).

The cache holds entries for a *single* version at a time: the first
access under a newer version flushes everything from the older one.
Versions are monotone, so a straggler carrying an older version (a
request planned just before an election landed) can neither read nor
write — it simply misses and re-executes against the new structure.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

__all__ = ["EpochResultCache"]


class EpochResultCache:
    """A bounded, thread-safe, version-scoped LRU of query results.

    Parameters
    ----------
    capacity:
        Maximum number of cached entries; least-recently-used entries
        are evicted beyond it.

    Notes
    -----
    Keys must be hashable — the serving layer uses
    ``(query, sink, rounds)``, all frozen value objects.  Values are
    opaque to the cache.  ``hits``/``misses``/``invalidations``/
    ``evictions`` are cumulative counters for the serving metrics.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._version: Optional[tuple] = None
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def version(self) -> Optional[tuple]:
        """The structure version the current entries were computed at."""
        return self._version

    def _sync_version(self, version: tuple) -> bool:
        """Advance to ``version``; returns whether the caller is current.

        A newer version flushes every entry (the epoch bumped / a
        re-election landed); an older one marks the caller stale.
        """
        if self._version is None or version == self._version:
            self._version = version
            return True
        if version > self._version:
            if self._entries:
                self._entries.clear()
            self.invalidations += 1
            self._version = version
            return True
        return False

    def get(self, version: tuple, key: Hashable) -> Optional[Any]:
        """The entry at ``key`` if cached under ``version``, else ``None``."""
        with self._lock:
            if not self._sync_version(version):
                self.misses += 1
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, version: tuple, key: Hashable, value: Any) -> None:
        """Store ``value`` under ``key`` for ``version``.

        A write carrying a version older than the cache's is dropped:
        its result was computed against a structure that no longer
        exists.
        """
        with self._lock:
            if not self._sync_version(version):
                return
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()
