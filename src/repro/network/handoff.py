"""Boundary-crossing radio deliveries between simulation shards.

When the topology is partitioned across shard workers (see
``simulation.sharded``), a broadcast whose unit-disk neighborhood spans
a shard boundary cannot schedule the remote receivers' delivery on the
sender's local event queue.  Instead the sending shard emits a
:class:`RadioHandoff` — the absolute arrival time, the sender-minted
lineage stamp, the message and the remote ``(receiver, overheard)``
pairs — and the controller routes it to each owning shard, which
re-inserts it verbatim via :meth:`~repro.network.radio.Radio.receive_handoff`.

Because loss is sampled entirely on the sender side (per-entity RNG
discipline) and the stamp is shared by every fragment of the same
transmission, the receiving shards' queue entries merge back into the
single delivery event a single-process run would hold — the property
the shard-conformance suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.messages import Message

__all__ = ["RadioHandoff", "split_by_owner"]


@dataclass(frozen=True)
class RadioHandoff:
    """One transmission's boundary-crossing fragment.

    Attributes
    ----------
    time:
        Absolute simulated arrival time (send time + radio latency).
    stamp:
        The sending shard's lineage stamp for the delivery event; the
        receiving shard inserts it unchanged so tie-breaking matches the
        single-process insertion order.
    message:
        The transmitted message (loss already applied by the sender).
    receivers:
        ``(receiver_id, overheard)`` pairs for receivers the sending
        shard does not own, in ascending receiver order.
    """

    time: float
    stamp: Optional[tuple]
    message: Message
    receivers: tuple[tuple[int, bool], ...]


def split_by_owner(
    handoff: RadioHandoff, owner_of: dict[int, int]
) -> dict[int, RadioHandoff]:
    """Split one handoff into per-destination-shard fragments.

    Receiver order within each fragment preserves the original
    (ascending-id) order, so concatenating fragments by receiver rank
    reconstructs the reference delivery's pending list exactly.
    """
    by_shard: dict[int, list[tuple[int, bool]]] = {}
    for receiver_id, overheard in handoff.receivers:
        by_shard.setdefault(owner_of[receiver_id], []).append(
            (receiver_id, overheard)
        )
    return {
        shard: RadioHandoff(
            time=handoff.time,
            stamp=handoff.stamp,
            message=handoff.message,
            receivers=tuple(pairs),
        )
        for shard, pairs in by_shard.items()
    }
