"""Network substrate: placement, radio, messages, link models, counters.

Models the paper's simulated sensor network: nodes on the unit square
with a unit-disk radio of configurable transmission range, a broadcast
medium with per-link Bernoulli message loss (``P_loss``), asymmetric
neighbor relations, and full per-node message accounting.
"""

from repro.network.links import (
    PERFECT_LINKS,
    DistanceLoss,
    GlobalLoss,
    LossModel,
    PerLinkLoss,
)
from repro.network.messages import (
    Accept,
    AckRepresenting,
    AggregateReport,
    CandidateList,
    DataReport,
    Heartbeat,
    HeartbeatReply,
    Invitation,
    Message,
    PROTOCOL_MESSAGE_TYPES,
    QueryRequest,
    Recall,
    Resign,
    StayActive,
)
from repro.network.mobility import (
    GaussianDrift,
    MobilityModel,
    RandomWaypoint,
    apply_mobility,
)
from repro.network.node import NetworkNode
from repro.network.radio import Radio
from repro.network.stats import MessageStats
from repro.network.topology import Topology, grid_topology, uniform_random_topology

__all__ = [
    "Accept",
    "AckRepresenting",
    "AggregateReport",
    "CandidateList",
    "DataReport",
    "DistanceLoss",
    "GaussianDrift",
    "GlobalLoss",
    "Heartbeat",
    "HeartbeatReply",
    "Invitation",
    "LossModel",
    "Message",
    "MessageStats",
    "MobilityModel",
    "NetworkNode",
    "PERFECT_LINKS",
    "PROTOCOL_MESSAGE_TYPES",
    "PerLinkLoss",
    "QueryRequest",
    "Radio",
    "RandomWaypoint",
    "Recall",
    "Resign",
    "StayActive",
    "Topology",
    "apply_mobility",
    "grid_topology",
    "uniform_random_topology",
]
