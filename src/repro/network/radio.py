"""The shared radio medium.

Transmissions are broadcasts over a unit-disk neighborhood: every alive
node within the sender's transmission range is a potential receiver, and
each receiver independently loses the message with the link's loss
probability (the paper's ``P_loss``).  A *unicast* is a broadcast with a
designated target — non-target receivers get the message flagged as
``overheard``, which is what feeds the snooping-based model building of
§3 ("snooping ... values broadcast by its neighbor node in response to
a query").

Energy: the sender pays the transmit cost once per transmission (not per
receiver), receivers pay the receive cost (zero in the paper's
accounting), and both are booked in the :class:`~repro.energy.EnergyLedger`.
Deliveries are scheduled ``latency`` time units after the send, so
same-instant protocol steps observe a consistent global order.
"""

from __future__ import annotations

from functools import partial
from typing import Optional

from repro.energy.accounting import EnergyLedger
from repro.energy.costs import PAPER_COST_MODEL, EnergyCostModel
from repro.network.links import PERFECT_LINKS, LossModel
from repro.network.messages import Message
from repro.network.node import NetworkNode
from repro.network.stats import MessageStats
from repro.network.topology import Topology
from repro.simulation.engine import Simulator

__all__ = ["Radio"]

#: Event priority for message deliveries — they fire before timers
#: scheduled at the same instant, so protocol timeouts observe all
#: traffic that "already happened".
DELIVERY_PRIORITY = -1

#: Buckets of the ``net.fanout`` histogram: alive receivers reached per
#: transmission (unit-disk neighborhoods rarely exceed a few dozen).
FANOUT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Radio:
    """Broadcast medium connecting :class:`NetworkNode` devices.

    Parameters
    ----------
    simulator:
        The discrete-event engine; deliveries are scheduled on it.
    topology:
        Placement and transmission ranges (decides who can hear whom).
    loss_model:
        Per-link Bernoulli loss; defaults to lossless.
    cost_model:
        Energy prices for transmit/receive.
    stats:
        Optional message counters (created if omitted).
    ledger:
        Optional energy ledger (created if omitted).
    latency:
        Propagation delay between send and delivery, in time units.
        Must be small relative to protocol phase spacing.
    batch_fanout:
        When true (the default), one transmission schedules a *single*
        delivery event carrying the precomputed receiver list instead of
        one event per receiver.  Loss outcomes are sampled at send time
        with :meth:`LossModel.loss_vector` in ``out_neighbors`` order,
        consuming the radio RNG stream draw-for-draw identically to the
        scalar path, and the per-receiver delivery events of one
        transmission are contiguous in the event queue — so collapsing
        them into one batch preserves the global firing order and the
        simulation trajectory bit-for-bit (pinned by a golden-trace
        test).  ``False`` keeps the legacy per-receiver event path.
    rng_discipline:
        ``"shared"`` (default) draws loss from the one ``radio`` stream
        with dead receivers filtered *before* sampling.  ``"per-entity"``
        draws from a ``radio.<sender>`` stream per sender and samples
        loss over the sender's *full* out-neighborhood — dead receivers
        are filtered (and booked as ``dropped_dead``) at delivery time
        instead.  That makes the draw count independent of remote node
        state, which is what lets a sharded sender transmit without
        knowing whether a receiver in another shard is alive.  Requires
        ``batch_fanout``.
    """

    def __init__(
        self,
        simulator: Simulator,
        topology: Topology,
        loss_model: LossModel = PERFECT_LINKS,
        cost_model: EnergyCostModel = PAPER_COST_MODEL,
        stats: Optional[MessageStats] = None,
        ledger: Optional[EnergyLedger] = None,
        latency: float = 0.001,
        batch_fanout: bool = True,
        rng_discipline: str = "shared",
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be non-negative, got {latency}")
        if rng_discipline not in ("shared", "per-entity"):
            raise ValueError(f"unknown rng_discipline {rng_discipline!r}")
        if rng_discipline == "per-entity" and not batch_fanout:
            raise ValueError("per-entity rng_discipline requires batch_fanout")
        self.simulator = simulator
        self.topology = topology
        self.loss_model = loss_model
        self.cost_model = cost_model
        # Default accounting lives in the engine's metrics registry so
        # run reports export the exact counters the protocol reads;
        # explicitly passed stats/ledgers stay standalone.
        registry = simulator.metrics
        self.stats = stats if stats is not None else MessageStats(registry)
        self.ledger = ledger if ledger is not None else EnergyLedger(registry)
        self._fanout = registry.histogram("net.fanout", FANOUT_BUCKETS)
        self.latency = latency
        self.batch_fanout = batch_fanout
        self._nodes: dict[int, NetworkNode] = {}
        self._rng = simulator.random.stream("radio")
        self.rng_discipline = rng_discipline
        self._per_entity = rng_discipline == "per-entity"
        self._entity_rngs: dict[int, object] = {}
        #: Sharded-engine hooks (see ``simulation.sharded``): when
        #: ``shard_local_ids`` is set, this radio owns only that subset
        #: of the topology's nodes; deliveries to remote receivers are
        #: emitted through ``handoff_sink`` as
        #: :class:`~repro.network.handoff.RadioHandoff` records instead
        #: of being scheduled locally.
        self.shard_local_ids = None
        self.handoff_sink = None
        #: Optional :class:`~repro.core.round_batch.BatchedObservationRouter`
        #: attached by the runtime when ``batched_rounds`` is on.
        #: Protocol handlers consult it to divert overheard measurement
        #: observations into the per-burst batch instead of applying
        #: them inline.
        self.observation_router = None

    # -- registration ------------------------------------------------------

    def register(self, node: NetworkNode) -> NetworkNode:
        """Attach a device to the medium (one per topology id)."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} already registered")
        if node.node_id not in self.topology.node_ids:
            raise ValueError(f"node {node.node_id} not present in topology")
        self._nodes[node.node_id] = node
        return node

    def populate(
        self,
        battery_capacity: Optional[float] = None,
        ids=None,
    ) -> list[NetworkNode]:
        """Create and register one device per topology node.

        Parameters
        ----------
        battery_capacity:
            Initial charge per node in transmission units, or ``None``
            for infinite batteries.
        ids:
            Subset of topology ids to register (sharded engines own only
            their partition's nodes); all of them by default.
        """
        from repro.energy.battery import Battery

        nodes = []
        for node_id in self.topology.node_ids if ids is None else ids:
            nodes.append(self.register(NetworkNode(node_id, Battery(battery_capacity))))
        return nodes

    def node(self, node_id: int) -> NetworkNode:
        """The registered device with ``node_id``."""
        return self._nodes[node_id]

    @property
    def nodes(self) -> dict[int, NetworkNode]:
        """All registered devices, by id."""
        return dict(self._nodes)

    def alive_ids(self) -> list[int]:
        """Ids of devices whose batteries still hold charge."""
        return [node_id for node_id, node in self._nodes.items() if node.alive]

    # -- transmission ------------------------------------------------------

    def broadcast(self, message: Message) -> bool:
        """Transmit ``message`` to every node in the sender's range.

        Returns ``False`` (and sends nothing) if the sender is dead.
        All in-range alive receivers get the message with
        ``overheard=False`` — a broadcast addresses everyone.
        """
        return self._transmit(message, target=None)

    def unicast(self, message: Message, target: int) -> bool:
        """Transmit ``message`` addressed to ``target``.

        The medium is still broadcast: in-range non-targets receive the
        message flagged ``overheard=True`` (subject to the same per-link
        loss), enabling snooping.
        """
        if target == message.sender:
            raise ValueError("a node does not unicast to itself")
        return self._transmit(message, target=target)

    def _transmit(self, message: Message, target: Optional[int]) -> bool:
        sender = self._nodes.get(message.sender)
        if sender is None:
            raise KeyError(f"unregistered sender {message.sender}")
        if not sender.alive:
            return False
        sender.battery.draw(self.cost_model.transmit)
        self.ledger.record(sender.node_id, "transmit", self.cost_model.transmit)
        self.stats.record_sent(message)
        self.simulator.trace.emit(
            self.simulator.now, "message.sent",
            sender=message.sender, message_kind=message.kind, target=target,
        )
        if self.batch_fanout:
            self._transmit_batched(message, target)
        else:
            self._transmit_scalar(message, target)
        return True

    def _transmit_scalar(self, message: Message, target: Optional[int]) -> None:
        """Legacy fan-out: one RNG draw and one delivery event per receiver."""
        dead = 0
        alive = 0
        for receiver_id in self.topology.out_neighbors(message.sender):
            receiver = self._nodes.get(receiver_id)
            if receiver is None or not receiver.alive:
                dead += 1
                continue
            alive += 1
            if not self.loss_model.delivered(message.sender, receiver_id, self._rng):
                self.stats.record_dropped(message)
                continue
            overheard = target is not None and receiver_id != target
            self._schedule_delivery(receiver, message, overheard)
        if dead:
            self.stats.record_dropped_dead(message, dead)
        self._fanout.observe(alive)

    def _sender_rng(self, sender: int):
        rng = self._entity_rngs.get(sender)
        if rng is None:
            rng = self._entity_rngs[sender] = self.simulator.random.stream(
                f"radio.{sender}"
            )
        return rng

    def _transmit_entity(self, message: Message, target: Optional[int]) -> None:
        """Per-entity fan-out: loss sampled over the full neighborhood.

        The draw comes from the sender's own ``radio.<sender>`` stream
        and covers every in-range receiver regardless of liveness, so
        neither interleaving with other senders nor remote node state
        changes the stream position.  Dead receivers among the loss
        survivors are filtered — and booked as ``dropped_dead`` — when
        the batch is delivered, in the receiver's own shard.
        """
        sender = message.sender
        receivers = self.topology.out_neighbors(sender)
        self._fanout.observe(len(receivers))
        if not receivers:
            return
        outcomes = self.loss_model.loss_vector(
            sender, receivers, self._sender_rng(sender)
        )
        if outcomes.all():
            survivors = receivers
        else:
            self.stats.record_dropped(message, len(receivers) - int(outcomes.sum()))
            survivors = [rid for rid, ok in zip(receivers, outcomes) if ok]
            if not survivors:
                return
        local_ids = self.shard_local_ids
        if local_ids is None:
            nodes = self._nodes
            pending = [
                (nodes[rid], target is not None and rid != target)
                for rid in survivors
            ]
            self._schedule_batch(message, pending)
            return
        nodes = self._nodes
        pending = []
        remote = []
        for rid in survivors:
            overheard = target is not None and rid != target
            if rid in local_ids:
                pending.append((nodes[rid], overheard))
            else:
                remote.append((rid, overheard))
        # One stamp per transmission, shared by the local batch and all
        # handoff copies: the receiving shards' entries then merge back
        # into the single delivery the reference run schedules.
        simulator = self.simulator
        lineage = simulator.lineage
        stamp = None if lineage is None else lineage.next_stamp(simulator.now)
        arrival = simulator.now + self.latency
        label = f"deliver:{message.kind}"
        if pending:
            simulator.inject_transient_at(
                arrival,
                partial(self._deliver_batch, message, pending),
                label=label,
                priority=DELIVERY_PRIORITY,
                sortkey=stamp,
            )
        if remote:
            from repro.network.handoff import RadioHandoff

            self.handoff_sink(
                RadioHandoff(
                    time=arrival,
                    stamp=stamp,
                    message=message,
                    receivers=tuple(remote),
                )
            )

    def receive_handoff(self, handoff) -> None:
        """Insert a boundary-crossing delivery minted by another shard."""
        nodes = self._nodes
        pending = [(nodes[rid], overheard) for rid, overheard in handoff.receivers]
        self.simulator.inject_transient_at(
            handoff.time,
            partial(self._deliver_batch, handoff.message, pending),
            label=f"deliver:{handoff.message.kind}",
            priority=DELIVERY_PRIORITY,
            sortkey=handoff.stamp,
        )

    def _transmit_batched(self, message: Message, target: Optional[int]) -> None:
        """Batched fan-out: one blocked loss draw and one delivery event.

        Dead or unregistered receivers are filtered *before* sampling —
        exactly where the scalar path skips them — so they consume no
        RNG draws and the two paths stay draw-for-draw identical.
        """
        if self._per_entity:
            self._transmit_entity(message, target)
            return
        nodes_get = self._nodes.get
        alive_ids: list[int] = []
        alive_nodes: list[NetworkNode] = []
        dead = 0
        for receiver_id in self.topology.out_neighbors(message.sender):
            receiver = nodes_get(receiver_id)
            if receiver is None or not receiver.alive:
                dead += 1
                continue
            alive_ids.append(receiver_id)
            alive_nodes.append(receiver)
        if dead:
            self.stats.record_dropped_dead(message, dead)
        self._fanout.observe(len(alive_ids))
        if not alive_ids:
            return
        outcomes = self.loss_model.loss_vector(message.sender, alive_ids, self._rng)
        if outcomes.all():
            pending = [
                (node, target is not None and receiver_id != target)
                for receiver_id, node in zip(alive_ids, alive_nodes)
            ]
        else:
            dropped = len(alive_ids) - int(outcomes.sum())
            self.stats.record_dropped(message, dropped)
            pending = [
                (node, target is not None and receiver_id != target)
                for receiver_id, node, ok in zip(alive_ids, alive_nodes, outcomes)
                if ok
            ]
        if not pending:
            return
        self._schedule_batch(message, pending)

    def _schedule_batch(
        self, message: Message, pending: list[tuple[NetworkNode, bool]]
    ) -> None:
        # Deliveries are never cancelled, so they ride the allocation-free
        # transient slab instead of carrying an Event handle.
        self.simulator.schedule_transient(
            self.latency,
            partial(self._deliver_batch, message, pending),
            label=f"deliver:{message.kind}",
            priority=DELIVERY_PRIORITY,
        )

    def _deliver_batch(
        self, message: Message, pending: list[tuple[NetworkNode, bool]]
    ) -> None:
        cost_receive = self.cost_model.receive
        record_delivered = self.stats.record_delivered
        per_entity = self._per_entity
        lineage = self.simulator.lineage
        if lineage is None:
            for receiver, overheard in pending:
                if not receiver.alive:
                    if per_entity:
                        self.stats.record_dropped_dead(message, 1)
                    continue
                receiver.battery.draw(cost_receive)
                if cost_receive > 0:
                    self.ledger.record(receiver.node_id, "receive", cost_receive)
                record_delivered(receiver.node_id, message)
                receiver.deliver(message, overheard)
            return
        # Lineage mode: each receiver's handler runs in a branch scope so
        # the events it schedules align on the receiver id across shards.
        fan_token = lineage.fan_begin()
        try:
            for receiver, overheard in pending:
                if not receiver.alive:
                    self.stats.record_dropped_dead(message, 1)
                    continue
                branch_token = lineage.branch_begin(receiver.node_id)
                try:
                    receiver.battery.draw(cost_receive)
                    if cost_receive > 0:
                        self.ledger.record(receiver.node_id, "receive", cost_receive)
                    record_delivered(receiver.node_id, message)
                    receiver.deliver(message, overheard)
                finally:
                    lineage.branch_end(branch_token)
        finally:
            lineage.fan_end(fan_token)

    def _schedule_delivery(
        self, receiver: NetworkNode, message: Message, overheard: bool
    ) -> None:
        self.simulator.schedule_transient(
            self.latency,
            partial(self._deliver, receiver, message, overheard),
            label=f"deliver:{message.kind}",
            priority=DELIVERY_PRIORITY,
        )

    def _deliver(
        self, receiver: NetworkNode, message: Message, overheard: bool
    ) -> None:
        if not receiver.alive:
            return
        receiver.battery.draw(self.cost_model.receive)
        if self.cost_model.receive > 0:
            self.ledger.record(receiver.node_id, "receive", self.cost_model.receive)
        self.stats.record_delivered(receiver.node_id, message)
        receiver.deliver(message, overheard)

    # -- misc --------------------------------------------------------------

    def charge_cpu(self, node_id: int, multiplier: float = 1.0) -> None:
        """Charge one cache-maintenance run's CPU cost to ``node_id``."""
        cost = self.cost_model.cpu_cache_update * multiplier
        if cost <= 0:
            return
        node = self._nodes[node_id]
        if not node.alive:
            return
        node.battery.draw(cost)
        self.ledger.record(node_id, "cpu", cost)
