"""The physical sensor node.

:class:`NetworkNode` is the *device*: an id, a battery, and a set of
attached message handlers.  All protocol intelligence (model management,
election, query processing) lives in higher layers that attach handlers;
the device merely hands every delivered message to them, flagging
whether the node was the intended target or merely *overheard* a
transmission on the shared medium — the paper's model-building snoops
on exactly such overheard traffic (§3).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.energy.battery import Battery
from repro.network.messages import Message

__all__ = ["NetworkNode", "MessageHandler"]

#: A message handler receives ``(message, overheard)``.
MessageHandler = Callable[[Message, bool], None]


class NetworkNode:
    """A sensor device: identity, battery, and message dispatch.

    Parameters
    ----------
    node_id:
        The node's unique id (the paper suggests the MAC address; we use
        the topology index).
    battery:
        Energy reserve; defaults to an infinite battery, which is what
        the sensitivity experiments (§6.1) assume.
    """

    def __init__(self, node_id: int, battery: Optional[Battery] = None) -> None:
        self.node_id = node_id
        self.battery = battery if battery is not None else Battery(None)
        self._handlers: tuple[MessageHandler, ...] = ()
        self._failed = False

    @property
    def alive(self) -> bool:
        """A node is alive while its battery holds charge and it has not
        been failed by the fault-injection layer."""
        return not self._failed and not self.battery.depleted

    @property
    def failed(self) -> bool:
        """Whether the device is currently crashed by fault injection."""
        return self._failed

    def fail(self) -> None:
        """Crash the device: it transmits and receives nothing while down.

        Unlike battery depletion — which is permanent ("replacing them
        is not an option", §1) — an injected failure models a transient
        outage (reboot, firmware hang, enclosure knocked over) and can
        be reversed with :meth:`restore`.
        """
        self._failed = True

    def restore(self) -> None:
        """Clear an injected failure; the device is alive again unless
        its battery also ran out in the meantime."""
        self._failed = False

    def attach(self, handler: MessageHandler) -> None:
        """Register a handler for every future delivery to this node."""
        self._handlers = self._handlers + (handler,)

    def detach(self, handler: MessageHandler) -> None:
        """Remove a previously attached handler."""
        handlers = list(self._handlers)
        handlers.remove(handler)
        self._handlers = tuple(handlers)

    def deliver(self, message: Message, overheard: bool = False) -> None:
        """Dispatch a delivered message to all attached handlers.

        Dead nodes receive nothing; the radio also filters, but the
        guard here keeps the invariant local.  Handlers are stored as
        an immutable tuple so dispatch iterates a stable snapshot
        without the per-delivery defensive copy the hot path used to
        pay; attach/detach during dispatch affect only later
        deliveries, exactly as before.
        """
        if not self.alive:
            return
        for handler in self._handlers:
            handler(message, overheard)

    def __repr__(self) -> str:
        state = "alive" if self.alive else ("failed" if self._failed else "dead")
        return f"NetworkNode(id={self.node_id}, {state}, {self.battery!r})"
