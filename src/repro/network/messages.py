"""Message taxonomy for the snapshot-query protocol and query engine.

Every radio transmission in the simulation is an instance of a
:class:`Message` subclass.  The election/maintenance messages mirror
Table 2 and Figure 5 of the paper:

=====================  =======================================================
message                paper role
=====================  =======================================================
Invitation             invitation phase — "looking for representatives",
                       carries the sender's current measurement ``x_j(t)``
CandidateList          model-evaluation phase — broadcast of ``Cand_nodes_i``
                       (plus the count of nodes already represented, used
                       during maintenance re-election, §5.1)
Accept                 initial-selection phase — ``N_j`` informs ``N_i`` that
                       it accepts it as representative; carries ``N_j``'s
                       location so representatives can evaluate spatial
                       predicates on behalf of the nodes they represent (§3.1)
Recall                 refinement Rule-2 — "you need not represent me"
StayActive             refinement Rule-3 — "stay ACTIVE for me"
AckRepresenting        Rule-3 acknowledgment — a single broadcast listing all
                       nodes the sender represents (footnote a of Fig. 5)
Heartbeat              maintenance — passive node asks its representative for
                       its estimate, carries the current measurement
HeartbeatReply         maintenance — representative's estimate ``x̂_j(t)``
Resign                 energy-aware hand-off (§5.1) — a drained or rotating
                       representative tells its members to re-elect
=====================  =======================================================

Query-plane messages (``QueryRequest``, ``DataReport``, ``AggregateReport``)
carry the TAG-style dissemination and collection traffic of §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "Message",
    "Invitation",
    "CandidateList",
    "Accept",
    "Recall",
    "StayActive",
    "AckRepresenting",
    "Heartbeat",
    "HeartbeatReply",
    "Resign",
    "QueryRequest",
    "DataReport",
    "AggregateReport",
    "PROTOCOL_MESSAGE_TYPES",
]


@dataclass(frozen=True)
class Message:
    """Base class for everything sent over the radio.

    Attributes
    ----------
    sender:
        Id of the transmitting node (filled in by the radio layer).
    kind:
        Class-level name used by counters and traces.  A plain class
        attribute (stamped by ``__init_subclass__``) rather than a
        property: the radio layer reads it once per delivery, which
        made property dispatch measurable in large simulations.
    """

    sender: int

    kind = "Message"

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        cls.kind = cls.__name__


@dataclass(frozen=True)
class Invitation(Message):
    """A node looking for a representative; carries its current value.

    ``epoch`` identifies the election round the invitation belongs to;
    stale-round replies are discarded.  ``measurement_id`` supports the
    multi-measurement extension of §3 (one model per measurement).
    """

    value: float
    epoch: int
    measurement_id: int = 0


@dataclass(frozen=True)
class CandidateList(Message):
    """Broadcast of the nodes the sender can represent.

    ``already_representing`` is the number of nodes the sender currently
    represents; during maintenance re-election the chooser ranks offers
    by ``len(candidates) + already_representing`` (§5.1).
    """

    candidates: tuple[int, ...]
    epoch: int
    already_representing: int = 0


@dataclass(frozen=True)
class Accept(Message):
    """``sender`` accepts ``representative`` as its representative."""

    representative: int
    epoch: int
    location: tuple[float, float] = (0.0, 0.0)
    timestamp: float = 0.0


@dataclass(frozen=True)
class Recall(Message):
    """Rule-2: ``sender`` tells the receiver to stop representing it."""

    target: int
    epoch: int


@dataclass(frozen=True)
class StayActive(Message):
    """Rule-3: ``sender`` requires ``target`` to stay ACTIVE."""

    target: int
    epoch: int


@dataclass(frozen=True)
class AckRepresenting(Message):
    """Rule-3 ack: a single broadcast listing everyone the sender represents."""

    represented: tuple[int, ...]
    epoch: int


@dataclass(frozen=True)
class Heartbeat(Message):
    """Maintenance: passive ``sender`` probes its representative ``target``."""

    target: int
    value: float
    measurement_id: int = 0


@dataclass(frozen=True)
class HeartbeatReply(Message):
    """Maintenance: the representative's estimate for ``target``'s value."""

    target: int
    estimate: Optional[float]


@dataclass(frozen=True)
class Resign(Message):
    """A representative stepping down (energy hand-off or LEACH rotation)."""

    members: tuple[int, ...]


@dataclass(frozen=True)
class QueryRequest(Message):
    """Query dissemination hop on the aggregation tree."""

    query_id: int
    payload: Any = None


@dataclass(frozen=True)
class DataReport(Message):
    """A node's measurement report for a drill-through query."""

    query_id: int
    origin: int
    value: float
    estimated: bool = False


@dataclass(frozen=True)
class AggregateReport(Message):
    """Partial aggregate flowing up the aggregation tree."""

    query_id: int
    count: int
    total: float
    minimum: float
    maximum: float


#: Message classes that belong to the snapshot election/maintenance protocol
#: (used when counting "messages per node" for Table 2 / Figure 15).
PROTOCOL_MESSAGE_TYPES = (
    Invitation,
    CandidateList,
    Accept,
    Recall,
    StayActive,
    AckRepresenting,
    Heartbeat,
    HeartbeatReply,
    Resign,
)
