"""Node placement and connectivity.

The paper deploys ``N`` sensors uniformly at random on the unit square
``[0,1) x [0,1)`` and uses a unit-disk radio: node ``i`` can transmit to
``j`` iff their Euclidean distance is at most ``i``'s transmission range.
Ranges may differ per node, which makes the "can transmit to" relation
asymmetric — exactly the loose, directional notion of *neighbor* the
paper adopts (footnote 2).

:class:`Topology` is a value object: placement and ranges are fixed at
construction; mobility experiments rebuild it.  Neighbor sets are
pre-computed once, because the election protocol queries them heavily.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

__all__ = ["Topology", "uniform_random_topology", "grid_topology"]


class Topology:
    """Immutable node placement + transmission ranges on the unit square.

    Parameters
    ----------
    positions:
        Sequence of ``(x, y)`` coordinates; node ids are ``0..N-1``.
    ranges:
        Per-node transmission range, or a single float applied to all.
    """

    def __init__(
        self,
        positions: Sequence[tuple[float, float]],
        ranges: float | Sequence[float],
    ) -> None:
        if not positions:
            raise ValueError("topology requires at least one node")
        self._positions = [(float(x), float(y)) for x, y in positions]
        n = len(self._positions)
        if isinstance(ranges, (int, float)):
            self._ranges = [float(ranges)] * n
        else:
            self._ranges = [float(r) for r in ranges]
            if len(self._ranges) != n:
                raise ValueError(
                    f"{len(self._ranges)} ranges given for {n} nodes"
                )
        if any(r <= 0 for r in self._ranges):
            raise ValueError("transmission ranges must be positive")
        self._out_neighbors = self._compute_out_neighbors()

    def _compute_out_neighbors(self) -> list[tuple[int, ...]]:
        """For each sender ``i``, the receivers within ``range(i)``."""
        coords = np.asarray(self._positions)
        deltas = coords[:, None, :] - coords[None, :, :]
        distances = np.sqrt((deltas**2).sum(axis=2))
        out: list[tuple[int, ...]] = []
        for i, reach in enumerate(self._ranges):
            hearers = np.nonzero(distances[i] <= reach)[0]
            out.append(tuple(int(j) for j in hearers if j != i))
        return out

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def node_ids(self) -> range:
        """All node ids, ``0..N-1``."""
        return range(len(self._positions))

    def position(self, node_id: int) -> tuple[float, float]:
        """Coordinates of ``node_id``."""
        return self._positions[node_id]

    def range_of(self, node_id: int) -> float:
        """Transmission range of ``node_id``."""
        return self._ranges[node_id]

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between nodes ``a`` and ``b``."""
        (xa, ya), (xb, yb) = self._positions[a], self._positions[b]
        return math.hypot(xa - xb, ya - yb)

    def out_neighbors(self, sender: int) -> tuple[int, ...]:
        """Nodes that can *hear* ``sender`` (within ``sender``'s range)."""
        return self._out_neighbors[sender]

    def in_neighbors(self, receiver: int) -> tuple[int, ...]:
        """Nodes whose transmissions reach ``receiver``."""
        return tuple(
            i for i in self.node_ids
            if i != receiver and receiver in self._out_neighbors[i]
        )

    def can_transmit(self, sender: int, receiver: int) -> bool:
        """Whether ``sender``'s radio reaches ``receiver``."""
        return sender != receiver and self.distance(sender, receiver) <= self._ranges[sender]

    def is_connected(self, alive: Optional[Iterable[int]] = None) -> bool:
        """Whether the (bidirectional-link) graph over ``alive`` is connected.

        A link exists when *either* endpoint can reach the other; this is
        the weakest useful notion and matches the paper's remark that
        ranges below 0.2 "often result in parts of the network being
        disconnected".
        """
        nodes = list(self.node_ids) if alive is None else sorted(set(alive))
        if not nodes:
            return True
        node_set = set(nodes)
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            current = frontier.pop()
            for other in self._out_neighbors[current]:
                if other in node_set and other not in seen:
                    seen.add(other)
                    frontier.append(other)
            # links where only the other endpoint can transmit to us
            for other in node_set - seen:
                if current in self._out_neighbors[other]:
                    seen.add(other)
                    frontier.append(other)
        return seen == node_set

    def nodes_in_rect(
        self, x_low: float, y_low: float, x_high: float, y_high: float
    ) -> list[int]:
        """Ids of nodes inside the axis-aligned rectangle (inclusive)."""
        return [
            i
            for i, (x, y) in enumerate(self._positions)
            if x_low <= x <= x_high and y_low <= y <= y_high
        ]

    def __iter__(self) -> Iterator[int]:
        return iter(self.node_ids)


def uniform_random_topology(
    n: int,
    transmission_range: float,
    rng: np.random.Generator,
) -> Topology:
    """The paper's deployment: ``n`` nodes uniform on ``[0,1) x [0,1)``."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    positions = [(float(x), float(y)) for x, y in rng.random((n, 2))]
    return Topology(positions, transmission_range)


def grid_topology(side: int, transmission_range: float) -> Topology:
    """A ``side x side`` regular grid on the unit square (deterministic).

    Useful in tests where exact neighbor sets must be known a priori.
    """
    if side <= 0:
        raise ValueError(f"need a positive grid side, got {side}")
    step = 1.0 / side
    positions = [
        (step / 2 + step * col, step / 2 + step * row)
        for row in range(side)
        for col in range(side)
    ]
    return Topology(positions, transmission_range)
