"""Node placement and connectivity.

The paper deploys ``N`` sensors uniformly at random on the unit square
``[0,1) x [0,1)`` and uses a unit-disk radio: node ``i`` can transmit to
``j`` iff their Euclidean distance is at most ``i``'s transmission range.
Ranges may differ per node, which makes the "can transmit to" relation
asymmetric — exactly the loose, directional notion of *neighbor* the
paper adopts (footnote 2).

:class:`Topology` is a value object: placement and ranges are fixed at
construction; mobility experiments rebuild it.  Neighbor sets are
pre-computed once, because the election protocol queries them heavily.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

__all__ = ["Topology", "uniform_random_topology", "grid_topology"]


class Topology:
    """Immutable node placement + transmission ranges on the unit square.

    Parameters
    ----------
    positions:
        Sequence of ``(x, y)`` coordinates; node ids are ``0..N-1``.
    ranges:
        Per-node transmission range, or a single float applied to all.
    """

    def __init__(
        self,
        positions: Sequence[tuple[float, float]],
        ranges: float | Sequence[float],
    ) -> None:
        if not positions:
            raise ValueError("topology requires at least one node")
        self._positions = [(float(x), float(y)) for x, y in positions]
        n = len(self._positions)
        if isinstance(ranges, (int, float)):
            self._ranges = [float(ranges)] * n
        else:
            self._ranges = [float(r) for r in ranges]
            if len(self._ranges) != n:
                raise ValueError(
                    f"{len(self._ranges)} ranges given for {n} nodes"
                )
        if any(r <= 0 for r in self._ranges):
            raise ValueError("transmission ranges must be positive")
        self._out_neighbors = self._compute_out_neighbors()
        self._out_sets = [frozenset(hearers) for hearers in self._out_neighbors]
        self._in_neighbors = self._compute_in_neighbors()

    def _compute_out_neighbors(self) -> list[tuple[int, ...]]:
        """For each sender ``i``, the receivers within ``range(i)``.

        Uses spatial-grid bucketing: nodes are hashed into square cells
        of side ``max(range)``, so any receiver of ``i`` lies in the
        3x3 cell block around ``i`` and only those candidates are
        distance-tested.  On the paper's uniform deployments this is
        O(N * expected neighborhood) in time and memory, replacing the
        O(N^2) pairwise-distance tensor that dominated construction for
        N in the thousands.  Distances are ``sqrt(dx*dx + dy*dy)`` on
        the same operands as the old tensor computation, so the
        resulting neighbor sets are bit-identical.
        """
        n = len(self._positions)
        cell = max(self._ranges)
        buckets: dict[tuple[int, int], list[int]] = {}
        cell_of: list[tuple[int, int]] = []
        for i, (x, y) in enumerate(self._positions):
            key = (int(math.floor(x / cell)), int(math.floor(y / cell)))
            cell_of.append(key)
            buckets.setdefault(key, []).append(i)

        # Per-cell cache of the candidate block (the 3x3 neighborhood),
        # as sorted id/coordinate arrays ready for one vectorized
        # distance test per sender in the cell.
        block_cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        coords = np.asarray(self._positions, dtype=np.float64)

        def block(key: tuple[int, int]) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            cached = block_cache.get(key)
            if cached is None:
                cx, cy = key
                ids: list[int] = []
                for gx in (cx - 1, cx, cx + 1):
                    for gy in (cy - 1, cy, cy + 1):
                        ids.extend(buckets.get((gx, gy), ()))
                ids.sort()
                id_arr = np.asarray(ids, dtype=np.intp)
                cached = (id_arr, coords[id_arr, 0], coords[id_arr, 1])
                block_cache[key] = cached
            return cached

        out: list[tuple[int, ...]] = []
        for i in range(n):
            cand_ids, cand_x, cand_y = block(cell_of[i])
            xi, yi = coords[i, 0], coords[i, 1]
            dx = xi - cand_x
            dy = yi - cand_y
            hearers = cand_ids[np.sqrt(dx * dx + dy * dy) <= self._ranges[i]]
            out.append(tuple(int(j) for j in hearers if j != i))
        return out

    def _compute_in_neighbors(self) -> list[tuple[int, ...]]:
        """Reverse adjacency: for each receiver, the senders reaching it."""
        incoming: list[list[int]] = [[] for _ in self._positions]
        for sender, hearers in enumerate(self._out_neighbors):
            for receiver in hearers:
                incoming[receiver].append(sender)
        # senders are visited in ascending id order, so each list is sorted
        return [tuple(senders) for senders in incoming]

    def __len__(self) -> int:
        return len(self._positions)

    @property
    def node_ids(self) -> range:
        """All node ids, ``0..N-1``."""
        return range(len(self._positions))

    def position(self, node_id: int) -> tuple[float, float]:
        """Coordinates of ``node_id``."""
        return self._positions[node_id]

    def range_of(self, node_id: int) -> float:
        """Transmission range of ``node_id``."""
        return self._ranges[node_id]

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between nodes ``a`` and ``b``."""
        (xa, ya), (xb, yb) = self._positions[a], self._positions[b]
        return math.hypot(xa - xb, ya - yb)

    def out_neighbors(self, sender: int) -> tuple[int, ...]:
        """Nodes that can *hear* ``sender`` (within ``sender``'s range)."""
        return self._out_neighbors[sender]

    def in_neighbors(self, receiver: int) -> tuple[int, ...]:
        """Nodes whose transmissions reach ``receiver`` (precomputed)."""
        return self._in_neighbors[receiver]

    def directed_links(self) -> Iterator[tuple[int, int]]:
        """All ``(sender, receiver)`` pairs the radio can traverse.

        Yielded in ascending ``(sender, receiver)`` order — the same
        enumeration the partitioner classifies into intra-shard and
        boundary links, so the two views tile the link set exactly.
        """
        for sender, hearers in enumerate(self._out_neighbors):
            for receiver in hearers:
                yield (sender, receiver)

    def can_transmit(self, sender: int, receiver: int) -> bool:
        """Whether ``sender``'s radio reaches ``receiver``.

        Answered from the precomputed forward set, so it agrees exactly
        with :meth:`out_neighbors` (the previous implementation
        recomputed the distance, which could in principle round
        differently at the range boundary).
        """
        return receiver in self._out_sets[sender]

    def is_connected(self, alive: Optional[Iterable[int]] = None) -> bool:
        """Whether the (bidirectional-link) graph over ``alive`` is connected.

        A link exists when *either* endpoint can reach the other; this is
        the weakest useful notion and matches the paper's remark that
        ranges below 0.2 "often result in parts of the network being
        disconnected".  BFS over the precomputed forward and reverse
        adjacency restricted to ``alive`` — O(V + E), where the previous
        implementation rescanned the unseen set on every visit.
        """
        nodes = list(self.node_ids) if alive is None else sorted(set(alive))
        if not nodes:
            return True
        node_set = set(nodes)
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            current = frontier.pop()
            for other in self._out_neighbors[current]:
                if other in node_set and other not in seen:
                    seen.add(other)
                    frontier.append(other)
            for other in self._in_neighbors[current]:
                if other in node_set and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(node_set)

    def nodes_in_rect(
        self, x_low: float, y_low: float, x_high: float, y_high: float
    ) -> list[int]:
        """Ids of nodes inside the axis-aligned rectangle (inclusive)."""
        return [
            i
            for i, (x, y) in enumerate(self._positions)
            if x_low <= x <= x_high and y_low <= y <= y_high
        ]

    def __iter__(self) -> Iterator[int]:
        return iter(self.node_ids)


def uniform_random_topology(
    n: int,
    transmission_range: float,
    rng: np.random.Generator,
) -> Topology:
    """The paper's deployment: ``n`` nodes uniform on ``[0,1) x [0,1)``."""
    if n <= 0:
        raise ValueError(f"need a positive node count, got {n}")
    positions = [(float(x), float(y)) for x, y in rng.random((n, 2))]
    return Topology(positions, transmission_range)


def grid_topology(side: int, transmission_range: float) -> Topology:
    """A ``side x side`` regular grid on the unit square (deterministic).

    Useful in tests where exact neighbor sets must be known a priori.
    """
    if side <= 0:
        raise ValueError(f"need a positive grid side, got {side}")
    step = 1.0 / side
    positions = [
        (step / 2 + step * col, step / 2 + step * row)
        for row in range(side)
        for col in range(side)
    ]
    return Topology(positions, transmission_range)
