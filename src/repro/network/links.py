"""Link-quality models.

The paper's simulator exposes "the probability of a link failure" as a
knob (§6) and sweeps a global message-loss probability ``P_loss`` in
Figures 7 and 13.  Loss models decide, per transmission and per
receiver, whether a message is delivered; the decision is independent
across receivers of the same broadcast, which is how collisions and
fading are abstracted.

Besides the global Bernoulli model the paper uses, we provide per-link
overrides (for modelling obstacles — the paper's §3 example of a node
never hearing another due to "an obstacle in their direct path") and a
distance-proportional model for softer degradation studies.

Loss models expose two equivalent sampling APIs: the scalar
``delivered(sender, receiver, rng)`` and the vectorized
``loss_vector(sender, receivers, rng)`` the radio's batched fan-out
uses — one blocked ``rng.random(k)`` draw per transmission instead of
``k`` scalar calls, consuming the stream draw-for-draw identically.
"""

from __future__ import annotations

import abc
from typing import Mapping, Sequence

import numpy as np

from repro.network.topology import Topology

__all__ = ["LossModel", "GlobalLoss", "PerLinkLoss", "DistanceLoss", "PERFECT_LINKS"]


def _sample_deliveries(
    probabilities: Sequence[float], rng: np.random.Generator
) -> np.ndarray:
    """Vectorized Bernoulli delivery outcomes, draw-for-draw scalar-equivalent.

    The scalar path (:meth:`LossModel.delivered`) consumes one uniform
    draw per link whose loss probability is strictly inside ``(0, 1)``
    and none for the degenerate ones, so this kernel draws a single
    ``rng.random(k)`` block over exactly those links, in receiver
    order.  ``numpy``'s ``Generator.random`` produces the identical
    double sequence whether called ``k`` times with size ``None`` or
    once with size ``k``, which makes the two paths reproduce the same
    outcomes from the same stream state (pinned by a property test).
    """
    ps = np.asarray(probabilities, dtype=np.float64)
    delivered = ps <= 0.0
    uncertain = ~delivered & (ps < 1.0)
    k = int(uncertain.sum())
    if k:
        delivered[uncertain] = rng.random(k) >= ps[uncertain]
    return delivered


class LossModel(abc.ABC):
    """Decides whether a transmission from ``sender`` reaches ``receiver``."""

    @abc.abstractmethod
    def loss_probability(self, sender: int, receiver: int) -> float:
        """Probability in ``[0, 1]`` that this directed link drops a message."""

    def delivered(self, sender: int, receiver: int, rng: np.random.Generator) -> bool:
        """Sample one delivery outcome for this directed link."""
        p = self.loss_probability(sender, receiver)
        if p <= 0.0:
            return True
        if p >= 1.0:
            return False
        return rng.random() >= p

    def loss_vector(
        self,
        sender: int,
        receivers: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Delivery outcomes for all ``receivers`` of one transmission.

        Returns a boolean array aligned with ``receivers``.  The base
        implementation is the scalar fallback — it literally calls
        :meth:`delivered` per receiver, so third-party models that
        override ``delivered`` (custom RNG usage included) stay
        correct without knowing about vectorization.  The bundled
        models override this with a single blocked draw that consumes
        the stream identically.
        """
        return np.fromiter(
            (self.delivered(sender, receiver, rng) for receiver in receivers),
            dtype=bool,
            count=len(receivers),
        )


class GlobalLoss(LossModel):
    """Uniform loss probability ``P_loss`` on every link (paper's model)."""

    def __init__(self, probability: float = 0.0) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1], got {probability}")
        self.probability = float(probability)

    def loss_probability(self, sender: int, receiver: int) -> float:
        return self.probability

    def loss_vector(
        self,
        sender: int,
        receivers: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        k = len(receivers)
        p = self.probability
        if p <= 0.0:
            return np.ones(k, dtype=bool)
        if p >= 1.0:
            return np.zeros(k, dtype=bool)
        return rng.random(k) >= p

    def __repr__(self) -> str:
        return f"GlobalLoss({self.probability})"


class PerLinkLoss(LossModel):
    """Per-directed-link overrides on top of a base probability.

    Setting a link's probability to 1.0 models a permanent obstacle on
    that directed path.
    """

    def __init__(
        self,
        base: float = 0.0,
        overrides: Mapping[tuple[int, int], float] | None = None,
    ) -> None:
        if not 0.0 <= base <= 1.0:
            raise ValueError(f"base loss probability must be in [0,1], got {base}")
        self.base = float(base)
        self.overrides: dict[tuple[int, int], float] = {}
        for link, p in (overrides or {}).items():
            self.set_link(link[0], link[1], p)

    def set_link(self, sender: int, receiver: int, probability: float) -> None:
        """Override the loss probability of the directed link."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"loss probability must be in [0,1], got {probability}")
        self.overrides[(sender, receiver)] = float(probability)

    def block_link(self, sender: int, receiver: int) -> None:
        """Model an obstacle: the directed link never delivers."""
        self.set_link(sender, receiver, 1.0)

    def loss_probability(self, sender: int, receiver: int) -> float:
        return self.overrides.get((sender, receiver), self.base)

    def loss_vector(
        self,
        sender: int,
        receivers: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        get, base = self.overrides.get, self.base
        return _sample_deliveries(
            [get((sender, receiver), base) for receiver in receivers], rng
        )


class DistanceLoss(LossModel):
    """Loss grows linearly with distance up to the sender's range.

    At distance 0 the loss is ``floor``; at the sender's full range it is
    ``ceiling``.  Links beyond range never deliver (the radio layer also
    enforces this, but the model is self-consistent).
    """

    def __init__(self, topology: Topology, floor: float = 0.0, ceiling: float = 0.9) -> None:
        if not 0.0 <= floor <= ceiling <= 1.0:
            raise ValueError(
                f"need 0 <= floor <= ceiling <= 1, got floor={floor} ceiling={ceiling}"
            )
        self._topology = topology
        self.floor = float(floor)
        self.ceiling = float(ceiling)

    def loss_probability(self, sender: int, receiver: int) -> float:
        reach = self._topology.range_of(sender)
        distance = self._topology.distance(sender, receiver)
        if distance > reach:
            return 1.0
        fraction = distance / reach if reach > 0 else 1.0
        return self.floor + (self.ceiling - self.floor) * fraction

    def loss_vector(
        self,
        sender: int,
        receivers: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        # Probabilities come from the scalar formula on purpose: reusing
        # ``loss_probability`` keeps boundary links (distance == reach)
        # bit-identical to the scalar path; only the draws are blocked.
        return _sample_deliveries(
            [self.loss_probability(sender, receiver) for receiver in receivers], rng
        )


#: Shared lossless model for the paper's ``P_loss = 0`` configurations.
PERFECT_LINKS = GlobalLoss(0.0)
