"""Message accounting.

Figure 15 of the paper reports the *average number of messages per node*
during a snapshot-maintenance update, and Table 2 bounds the election at
five messages per node (six including the maintenance heartbeat pair).
:class:`MessageStats` counts every transmission and delivery by node and
by message kind so those quantities — and the per-phase breakdowns the
tests assert on — fall out directly.

Counters can be *checkpointed*: ``window()`` returns the counts since
the previous checkpoint, which is how per-update message costs are
measured in long maintenance runs.

When constructed with a :class:`~repro.obs.registry.MetricsRegistry`,
the stats object becomes a *view* over registry counters: its public
``Counter`` attributes ARE the cells of ``net.messages.*`` metrics, so
the registry exports the exact storage this class reads.  The metrics
are *essential* — the maintenance manager reads the windowed counts
back to drive Figure 15 accounting, so disabling observability must not
stop them.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.network.messages import PROTOCOL_MESSAGE_TYPES, Message

__all__ = ["MessageStats", "PROTOCOL_KINDS"]

#: Class names of the election/maintenance protocol messages (the kinds
#: Figure 15 and Table 2 count); data reports and query traffic excluded.
PROTOCOL_KINDS = frozenset(cls.__name__ for cls in PROTOCOL_MESSAGE_TYPES)

_PROTOCOL_KINDS = PROTOCOL_KINDS


class MessageStats:
    """Per-node, per-kind counters of sent and delivered messages."""

    def __init__(self, registry=None) -> None:
        if registry is None:
            self.sent: Counter[tuple[int, str]] = Counter()
            self.delivered: Counter[tuple[int, str]] = Counter()
            self.dropped: Counter[str] = Counter()
            self.dropped_dead: Counter[str] = Counter()
        else:
            self.sent = registry.counter(
                "net.messages.sent", labels=("node", "kind"), essential=True
            ).cells
            self.delivered = registry.counter(
                "net.messages.delivered", labels=("node", "kind"), essential=True
            ).cells
            self.dropped = registry.counter(
                "net.messages.dropped", labels=("kind",), essential=True
            ).cells
            self.dropped_dead = registry.counter(
                "net.messages.dropped_dead", labels=("kind",), essential=True
            ).cells
        self._sent_checkpoint: Counter[tuple[int, str]] = Counter()

    def record_sent(self, message: Message) -> None:
        """Count one transmission of ``message`` by its sender."""
        self.sent[(message.sender, message.kind)] += 1

    def record_delivered(self, receiver: int, message: Message) -> None:
        """Count one successful delivery of ``message`` to ``receiver``."""
        self.delivered[(receiver, message.kind)] += 1

    def record_dropped(self, message: Message, count: int = 1) -> None:
        """Count ``count`` Bernoulli losses of ``message`` on some links."""
        self.dropped[message.kind] += count

    def record_dropped_dead(self, message: Message, count: int = 1) -> None:
        """Count ``count`` copies of ``message`` lost to dead receivers.

        Kept separate from :attr:`dropped` — which records only
        Bernoulli link loss — so loss-sweep accounting under node death
        does not conflate radio quality with population decline.
        """
        self.dropped_dead[message.kind] += count

    # -- read-side helpers -------------------------------------------------

    def total_sent(self) -> int:
        """Total transmissions across all nodes and kinds."""
        return sum(self.sent.values())

    def sent_by_node(self, node_id: int) -> int:
        """Transmissions performed by ``node_id`` (all kinds)."""
        return sum(
            count for (sender, _), count in self.sent.items() if sender == node_id
        )

    def sent_of_kind(self, kind: str) -> int:
        """Transmissions of message class name ``kind`` across all nodes."""
        return sum(count for (_, k), count in self.sent.items() if k == kind)

    def protocol_sent_by_node(self, node_id: int) -> int:
        """Election/maintenance-protocol transmissions by ``node_id``."""
        return sum(
            count
            for (sender, kind), count in self.sent.items()
            if sender == node_id and kind in _PROTOCOL_KINDS
        )

    def protocol_messages_per_node(self, n_nodes: int) -> float:
        """Average protocol transmissions per node (Figure 15's metric)."""
        if n_nodes <= 0:
            raise ValueError(f"need a positive node count, got {n_nodes}")
        total = sum(
            count for (_, kind), count in self.sent.items() if kind in _PROTOCOL_KINDS
        )
        return total / n_nodes

    def max_protocol_messages_any_node(
        self, since: Optional[Counter] = None
    ) -> int:
        """Largest protocol transmission count of any single node.

        Parameters
        ----------
        since:
            A mark previously taken with :meth:`mark`; when given, only
            transmissions *after* the mark count.  This is how the
            invariant checker verifies Table 2's per-node message bound
            over one election epoch's window without disturbing the
            maintenance manager's own :meth:`checkpoint`.
        """
        per_node: Counter[int] = Counter()
        for (sender, kind), count in self.sent.items():
            if kind in _PROTOCOL_KINDS:
                if since is not None:
                    count -= since.get((sender, kind), 0)
                if count > 0:
                    per_node[sender] += count
        return max(per_node.values(), default=0)

    def protocol_sent_per_node(
        self, since: Optional[Counter] = None
    ) -> Counter:
        """Per-node protocol transmission counts (optionally since a mark)."""
        per_node: Counter[int] = Counter()
        for (sender, kind), count in self.sent.items():
            if kind in _PROTOCOL_KINDS:
                if since is not None:
                    count -= since.get((sender, kind), 0)
                if count > 0:
                    per_node[sender] += count
        return per_node

    def mark(self) -> Counter:
        """An immutable copy of the sent counters, for windowed reads.

        Unlike :meth:`checkpoint` — a single slot owned by the
        maintenance manager's round accounting — marks are values the
        caller holds, so any number of observers can window the stream
        independently without clobbering each other.
        """
        return Counter(self.sent)

    # -- windowing ---------------------------------------------------------

    def checkpoint(self) -> None:
        """Mark the current counts; ``window()`` reports deltas from here."""
        self._sent_checkpoint = Counter(self.sent)

    def window(self) -> Counter[tuple[int, str]]:
        """Sent-message counts accumulated since the last checkpoint."""
        delta = Counter(self.sent)
        delta.subtract(self._sent_checkpoint)
        return Counter({key: count for key, count in delta.items() if count > 0})

    def window_protocol_total(self) -> int:
        """Protocol transmissions accumulated since the last checkpoint."""
        return sum(
            count
            for (_, kind), count in self.window().items()
            if kind in _PROTOCOL_KINDS
        )

    def window_protocol_per_node(self, n_nodes: int) -> float:
        """Average protocol messages per node since the last checkpoint."""
        if n_nodes <= 0:
            raise ValueError(f"need a positive node count, got {n_nodes}")
        total = sum(
            count
            for (_, kind), count in self.window().items()
            if kind in _PROTOCOL_KINDS
        )
        return total / n_nodes

    def clear(self) -> None:
        """Reset every counter and checkpoint."""
        self.sent.clear()
        self.delivered.clear()
        self.dropped.clear()
        self.dropped_dead.clear()
        self._sent_checkpoint.clear()
