"""Node mobility models.

The network snapshot is explicitly "a result of both data dynamics ...
as well as network dynamics (node failures, changes in connectivity
among nodes due to mobility, environmental conditions etc)" (§2).  This
module supplies the mobility half: models that evolve node positions
over time, and the glue that periodically rebuilds the topology so the
radio's neighbor sets track the motion.

:class:`RandomWaypoint` is the classic ad-hoc-network model: each node
picks a uniform random waypoint, travels toward it at its speed, pauses,
and repeats.  :class:`GaussianDrift` is a gentler alternative for
"environmental" connectivity jitter.  Both confine nodes to the unit
square.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.network.topology import Topology

__all__ = ["MobilityModel", "RandomWaypoint", "GaussianDrift", "apply_mobility"]


class MobilityModel(abc.ABC):
    """Evolves a set of positions over simulated time."""

    @abc.abstractmethod
    def step(
        self,
        positions: list[tuple[float, float]],
        dt: float,
        rng: np.random.Generator,
    ) -> list[tuple[float, float]]:
        """New positions after ``dt`` time units."""


class RandomWaypoint(MobilityModel):
    """The random-waypoint model on the unit square.

    Parameters
    ----------
    speed:
        Travel speed in distance units per time unit.
    pause:
        Pause duration at each waypoint, in time units.
    """

    def __init__(self, speed: float = 0.01, pause: float = 0.0) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        if pause < 0:
            raise ValueError(f"pause must be non-negative, got {pause}")
        self.speed = speed
        self.pause = pause
        self._waypoints: dict[int, tuple[float, float]] = {}
        self._pausing: dict[int, float] = {}

    def step(self, positions, dt, rng):
        new_positions = []
        for index, (x, y) in enumerate(positions):
            remaining = dt
            while remaining > 0:
                pause_left = self._pausing.get(index, 0.0)
                if pause_left > 0:
                    waited = min(pause_left, remaining)
                    self._pausing[index] = pause_left - waited
                    remaining -= waited
                    continue
                waypoint = self._waypoints.get(index)
                if waypoint is None:
                    waypoint = (float(rng.random()), float(rng.random()))
                    self._waypoints[index] = waypoint
                distance = math.hypot(waypoint[0] - x, waypoint[1] - y)
                travel = self.speed * remaining
                if travel >= distance:
                    # arrive, start pausing, pick a new waypoint next time
                    x, y = waypoint
                    consumed = distance / self.speed if self.speed > 0 else remaining
                    remaining -= consumed
                    del self._waypoints[index]
                    self._pausing[index] = self.pause
                else:
                    fraction = travel / distance if distance > 0 else 0.0
                    x += (waypoint[0] - x) * fraction
                    y += (waypoint[1] - y) * fraction
                    remaining = 0.0
            new_positions.append((x, y))
        return new_positions


class GaussianDrift(MobilityModel):
    """Independent Gaussian position jitter, reflected at the borders.

    Models slow environmental drift (vegetation, small displacements)
    rather than purposeful motion.
    """

    def __init__(self, sigma_per_unit_time: float = 0.005) -> None:
        if sigma_per_unit_time <= 0:
            raise ValueError(
                f"sigma must be positive, got {sigma_per_unit_time}"
            )
        self.sigma = sigma_per_unit_time

    def step(self, positions, dt, rng):
        scale = self.sigma * math.sqrt(dt)
        array = np.asarray(positions, dtype=float)
        array = array + rng.normal(0.0, scale, size=array.shape)
        # reflect into [0, 1)
        array = np.abs(array)
        array = np.where(array > 1.0, 2.0 - array, array)
        array = np.clip(array, 0.0, 0.999999)
        return [(float(x), float(y)) for x, y in array]


class _MobilityStepper:
    """One mobility tick: advance positions and rebuild the topology.

    A callable object rather than a closure so the armed periodic task
    (and any checkpoint taken while mobility runs) pickles cleanly.
    """

    __slots__ = ("runtime", "model", "period", "rng")

    def __init__(self, runtime, model: MobilityModel, period: float) -> None:
        self.runtime = runtime
        self.model = model
        self.period = period
        self.rng = runtime.simulator.random.stream("mobility")

    def __call__(self) -> None:
        runtime = self.runtime
        topology = runtime.radio.topology
        positions = [topology.position(node) for node in topology.node_ids]
        new_positions = self.model.step(positions, self.period, self.rng)
        ranges = [topology.range_of(node) for node in topology.node_ids]
        new_topology = Topology(new_positions, ranges)
        runtime.radio.topology = new_topology
        runtime.topology = new_topology
        for node_id, node in runtime.nodes.items():
            node.location = new_topology.position(node_id)
        runtime.simulator.trace.emit(
            runtime.simulator.now, "mobility.step", period=self.period
        )


def apply_mobility(runtime, model: MobilityModel, period: float = 10.0):
    """Arm periodic mobility on a :class:`~repro.core.SnapshotRuntime`.

    Every ``period`` time units the model advances all positions, a new
    :class:`Topology` replaces the radio's (recomputing neighbor sets),
    and each protocol node's own location is refreshed.  Locations a
    representative learned from old Accept messages intentionally stay
    stale — that is the paper's reality, and the maintenance protocol's
    job to repair.

    Returns the periodic task handle (``.stop()`` to freeze motion).
    """
    stepper = _MobilityStepper(runtime, model, period)
    return runtime.simulator.every(period, stepper, label="mobility")
