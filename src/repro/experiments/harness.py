"""Shared experiment machinery.

Every §6 experiment follows the same skeleton: build a network from a
handful of knobs, run the §6.1 warm-up (train for 10 time units, stay
silent until t=100), elect, measure, and average over ten repetitions
with fresh seeds.  :class:`NetworkSetup` captures the knobs,
:func:`run_discovery` executes the skeleton, and :class:`Series` /
:class:`SweepPoint` hold the averaged sweep results the figures plot.
"""

from __future__ import annotations

import json
import math
import os
import statistics
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence, TypeVar

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.snapshot import SnapshotView
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.data.series import Dataset
from repro.data.weather import WeatherConfig, generate_weather
from repro.models.cache_manager import ModelAwareCache
from repro.models.metrics import metric_by_name
from repro.models.policy import CachePolicy
from repro.models.round_robin import RoundRobinCache
from repro.network.links import GlobalLoss
from repro.network.topology import Topology, uniform_random_topology

__all__ = [
    "NetworkSetup",
    "SweepPoint",
    "Series",
    "build_runtime",
    "run_discovery",
    "make_cache_factory",
    "random_walk_dataset",
    "weather_dataset",
    "derive_seeds",
    "parallel_map",
    "repeat",
    "ReportRun",
    "run_report_experiment",
    "FULL_RANGE",
]

#: The paper's default transmission range: sqrt(2) lets every node hear
#: every message on the unit square (§6.1).
FULL_RANGE = math.sqrt(2.0)


@dataclass(frozen=True)
class NetworkSetup:
    """The knobs shared by all §6 experiments.

    Attributes mirror the paper's §6.1 base configuration; individual
    experiments override what they sweep.
    """

    n_nodes: int = 100
    transmission_range: float = FULL_RANGE
    loss_probability: float = 0.0
    cache_bytes: int = 2048
    cache_policy: str = "model-aware"  # or "round-robin"
    threshold: float = 1.0
    metric_name: str = "sse"
    train_duration: float = 10.0
    election_time: float = 100.0
    battery_capacity: Optional[float] = None
    heartbeat_period: float = 100.0
    snoop_probability: float = 1.0
    energy_resign_fraction: float = 0.0
    rotation_probability: float = 0.0

    def protocol_config(self, **overrides) -> ProtocolConfig:
        """The protocol configuration implied by this setup."""
        values = dict(
            threshold=self.threshold,
            metric=metric_by_name(self.metric_name),
            heartbeat_period=self.heartbeat_period,
            snoop_probability=self.snoop_probability,
            energy_resign_fraction=self.energy_resign_fraction,
            rotation_probability=self.rotation_probability,
        )
        values.update(overrides)
        return ProtocolConfig(**values)

    def with_(self, **changes) -> "NetworkSetup":
        """A modified copy (sweep helper)."""
        return replace(self, **changes)


class _CacheFactory:
    """Picklable cache-policy factory (lambdas would break checkpointing)."""

    __slots__ = ("policy_cls", "cache_bytes", "kwargs")

    def __init__(self, policy_cls: type, cache_bytes: int, **kwargs) -> None:
        self.policy_cls = policy_cls
        self.cache_bytes = cache_bytes
        self.kwargs = kwargs

    def __call__(self) -> CachePolicy:
        return self.policy_cls(self.cache_bytes, **self.kwargs)


def make_cache_factory(policy: str, cache_bytes: int) -> Callable[[], CachePolicy]:
    """Cache-policy factory from a registry name.

    ``model-aware`` uses the struct-of-arrays backing store (the
    default engine); ``model-aware-scalar`` pins the original per-line
    object graph — bit-identical in behavior, kept as the golden
    reference for equivalence tests and A/B benchmarking.
    """
    if policy == "model-aware":
        return _CacheFactory(ModelAwareCache, cache_bytes)
    if policy == "model-aware-scalar":
        return _CacheFactory(ModelAwareCache, cache_bytes, vectorized=False)
    if policy == "round-robin":
        return _CacheFactory(RoundRobinCache, cache_bytes)
    raise ValueError(
        f"unknown cache policy {policy!r}; expected 'model-aware', "
        f"'model-aware-scalar' or 'round-robin'"
    )


def build_runtime(
    setup: NetworkSetup,
    dataset: Dataset,
    seed: int,
    topology: Optional[Topology] = None,
    config: Optional[ProtocolConfig] = None,
    **runtime_kwargs,
) -> SnapshotRuntime:
    """Assemble a runtime for ``setup`` over ``dataset``.

    The topology is drawn from the run's own RNG unless supplied, so
    every repetition sees a fresh placement, as in the paper.  Extra
    keyword arguments (``keep_trace_records``, ``metrics_enabled``, ...)
    pass through to :class:`SnapshotRuntime`.
    """
    rng = np.random.default_rng(seed)
    if topology is None:
        topology = uniform_random_topology(
            setup.n_nodes, setup.transmission_range, rng
        )
    return SnapshotRuntime(
        topology=topology,
        dataset=dataset,
        config=config if config is not None else setup.protocol_config(),
        seed=seed,
        loss_model=GlobalLoss(setup.loss_probability),
        cache_factory=make_cache_factory(setup.cache_policy, setup.cache_bytes),
        battery_capacity=setup.battery_capacity,
        **runtime_kwargs,
    )


def run_discovery(
    setup: NetworkSetup, dataset: Dataset, seed: int
) -> tuple[SnapshotRuntime, SnapshotView]:
    """The §6.1 skeleton: train, idle until the election time, elect."""
    runtime = build_runtime(setup, dataset, seed)
    runtime.train(duration=setup.train_duration)
    if setup.election_time > runtime.now:
        runtime.advance_to(setup.election_time)
    view = runtime.run_election()
    return runtime, view


def random_walk_dataset(
    setup: NetworkSetup, n_classes: int, seed: int, length: int = 100
) -> Dataset:
    """The §6.1 synthetic workload for one repetition."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=setup.n_nodes, n_classes=n_classes, length=length),
        rng,
    )
    return dataset


def weather_dataset(setup: NetworkSetup, seed: int, length: int = 100) -> Dataset:
    """The §6.3 synthetic wind-speed workload for one repetition."""
    rng = np.random.default_rng(seed ^ 0xEA7)
    dataset, _ = generate_weather(
        WeatherConfig(n_series=setup.n_nodes, length=length), rng
    )
    return dataset


# ----------------------------------------------------------------------
# sweep result containers
# ----------------------------------------------------------------------


@dataclass
class SweepPoint:
    """One x-value of a sweep, with its per-repetition samples."""

    x: float
    samples: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        """Average over repetitions."""
        return statistics.fmean(self.samples) if self.samples else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single repetition)."""
        if len(self.samples) < 2:
            return 0.0
        return statistics.stdev(self.samples)


@dataclass
class Series:
    """A named sweep: the data behind one line of a paper figure."""

    label: str
    x_name: str
    y_name: str
    points: list[SweepPoint] = field(default_factory=list)

    def add(self, x: float, samples: Sequence[float]) -> SweepPoint:
        """Append a sweep point with its repetition samples."""
        point = SweepPoint(x=x, samples=list(samples))
        self.points.append(point)
        return point

    @property
    def xs(self) -> list[float]:
        """The sweep's x values, in insertion order."""
        return [point.x for point in self.points]

    @property
    def means(self) -> list[float]:
        """Per-point averages."""
        return [point.mean for point in self.points]

    def point_at(self, x: float) -> SweepPoint:
        """The point with x value ``x``."""
        for point in self.points:
            if point.x == x:
                return point
        raise KeyError(f"no sweep point at x={x}")


_T = TypeVar("_T")
_R = TypeVar("_R")


def derive_seeds(base_seed: int, count: int) -> list[int]:
    """``count`` independent per-repetition seeds derived from ``base_seed``.

    Seeds come from ``numpy.random.SeedSequence(base_seed).spawn``, so
    repetitions of different sweep points never share a seed.  The old
    ``base_seed * 1_000 + index`` scheme collided whenever two sweep
    points' bases were closer than the repetition count (e.g. Figure 6's
    K=1 and K=2 points at >1000 repetitions) and, worse, produced
    *correlated* nearby integer seeds.  The seed list depends only on
    ``(base_seed, count)``, never on how the work is scheduled, which is
    what makes parallel and serial sweeps sample-for-sample identical.
    """
    if count <= 0:
        raise ValueError(f"need a positive seed count, got {count}")
    root = np.random.SeedSequence(base_seed)
    return [
        int(child.generate_state(1, dtype=np.uint64)[0]) for child in root.spawn(count)
    ]


def _job_count() -> int:
    """Worker processes requested via ``REPRO_JOBS`` (default 1 = serial).

    ``REPRO_JOBS=0`` (or any non-positive value) means "all cores".
    """
    raw = os.environ.get("REPRO_JOBS", "1")
    try:
        jobs = int(raw)
    except ValueError as exc:
        raise ValueError(f"REPRO_JOBS must be an integer, got {raw!r}") from exc
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def parallel_map(fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
    """``[fn(item) for item in items]``, fanned out over ``REPRO_JOBS`` processes.

    With ``REPRO_JOBS`` unset or ``1`` this is a plain serial loop (and
    ``fn`` may be any callable).  With more jobs, items are distributed
    over a ``ProcessPoolExecutor`` — ``fn`` and the items must then be
    picklable, which is why the sweep drivers use module-level functions
    bound with :func:`functools.partial` rather than closures.  Results
    come back in input order either way, so a sweep's output is
    independent of the worker count.
    """
    work = list(items)
    jobs = _job_count()
    if jobs == 1 or len(work) <= 1:
        return [fn(item) for item in work]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as executor:
        return list(executor.map(fn, work))


#: On-disk format version of the ``repeat`` progress file.
_PROGRESS_FORMAT = 1


def _write_progress(path: str, payload: dict) -> None:
    """Atomically replace ``path`` with ``payload`` as compact JSON."""
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _load_progress(path: str, base_seed: int, repetitions: int) -> dict[int, float]:
    """Completed samples from a prior interrupted ``repeat`` call.

    The file must describe the *same* experiment — identical base seed
    and repetition count — otherwise resuming would silently mix samples
    from different seed sequences.
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _PROGRESS_FORMAT:
        raise ValueError(
            f"progress file {path!r} has format {payload.get('format')!r}; "
            f"this version reads format {_PROGRESS_FORMAT}"
        )
    if payload.get("base_seed") != base_seed or payload.get("repetitions") != repetitions:
        raise ValueError(
            f"progress file {path!r} belongs to repeat(base_seed="
            f"{payload.get('base_seed')}, repetitions={payload.get('repetitions')}); "
            f"refusing to resume repeat(base_seed={base_seed}, "
            f"repetitions={repetitions}) from it"
        )
    return {int(index): value for index, value in payload.get("results", {}).items()}


def repeat(
    fn: Callable[[int], float],
    repetitions: int,
    base_seed: int,
    *,
    checkpoint_path: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
) -> list[float]:
    """Run ``fn(seed)`` for ``repetitions`` derived seeds; collect results.

    Seeds come from :func:`derive_seeds` and the calls are fanned out
    over ``REPRO_JOBS`` worker processes (serial by default), so results
    are identical whatever the parallelism.

    With ``checkpoint_path`` set, completed samples are flushed to a JSON
    progress file every ``checkpoint_every`` repetitions (default: one
    worker-pool round), and a rerun with the same ``(base_seed,
    repetitions)`` resumes from the file, recomputing only the missing
    repetitions.  Because the seed list depends only on ``(base_seed,
    repetitions)``, the resumed sample list is element-for-element
    identical to an uninterrupted run's.  The file is removed on
    completion.
    """
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    seeds = derive_seeds(base_seed, repetitions)
    if checkpoint_path is None:
        return parallel_map(fn, seeds)

    if checkpoint_every is None:
        checkpoint_every = _job_count()
    if checkpoint_every <= 0:
        raise ValueError(
            f"checkpoint_every must be positive, got {checkpoint_every}"
        )
    path = os.fspath(checkpoint_path)
    results: dict[int, float] = {}
    if os.path.exists(path):
        results = _load_progress(path, base_seed, repetitions)
    pending = [index for index in range(repetitions) if index not in results]
    for start in range(0, len(pending), checkpoint_every):
        chunk = pending[start : start + checkpoint_every]
        for index, value in zip(chunk, parallel_map(fn, [seeds[i] for i in chunk])):
            results[index] = value
        _write_progress(
            path,
            {
                "format": _PROGRESS_FORMAT,
                "base_seed": base_seed,
                "repetitions": repetitions,
                "results": {str(index): results[index] for index in sorted(results)},
            },
        )
    samples = [results[index] for index in range(repetitions)]
    if os.path.exists(path):
        os.unlink(path)
    return samples


# ----------------------------------------------------------------------
# instrumented report runs
# ----------------------------------------------------------------------


@dataclass
class ReportRun:
    """A completed instrumented run: the report plus its live objects."""

    report: "RunReport"
    runtime: SnapshotRuntime
    coverage: "CoverageSeries"


def run_report_experiment(
    setup: NetworkSetup = NetworkSetup(),
    seed: int = 2005,
    rounds: int = 5,
    n_classes: int = 4,
    query_interval: float = 10.0,
    query_area: float = 0.25,
    profile: bool = False,
    metrics_enabled: bool = True,
    keep_trace_records: bool = False,
) -> ReportRun:
    """One fully observed maintenance run, captured as a :class:`RunReport`.

    The §6.1 skeleton (train, idle, elect) followed by ``rounds``
    maintenance periods during which random snapshot queries fire every
    ``query_interval`` time units and feed a
    :class:`~repro.query.coverage.CoverageSeries`.  The resulting report
    carries the Figure 15 messages/node and Figure 10 coverage
    quantities exactly as the runtime's own accounting computes them —
    this is what ``repro report`` and the differential tests consume.
    """
    from repro.obs.report import RunReport
    from repro.query.ast import Query
    from repro.query.coverage import CoverageSeries
    from repro.query.executor import QueryExecutor
    from repro.query.spatial import random_square

    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    period = setup.heartbeat_period
    length = int(setup.election_time + (rounds + 2) * period)
    dataset = random_walk_dataset(setup, n_classes, seed, length=length)
    runtime = build_runtime(
        setup,
        dataset,
        seed,
        keep_trace_records=keep_trace_records,
        metrics_enabled=metrics_enabled,
    )
    if profile:
        runtime.simulator.enable_profiling()
    runtime.train(duration=setup.train_duration)
    if setup.election_time > runtime.now:
        runtime.advance_to(setup.election_time)
    runtime.run_election()
    runtime.start_maintenance()

    executor = QueryExecutor(runtime)
    coverage = CoverageSeries()
    query_rng = np.random.default_rng(seed ^ 0x514)
    end = runtime.now + rounds * period
    clock = runtime.now
    while clock < end:
        clock = min(clock + query_interval, end)
        runtime.advance_to(clock)
        region = random_square(query_area, query_rng)
        try:
            result = executor.execute(Query(region=region, use_snapshot=True))
        except RuntimeError:
            # every node dead — close out what we have
            break
        coverage.record(result)
    runtime.maintenance.stop()

    report = RunReport.capture(
        runtime,
        coverage=coverage,
        meta={"rounds_requested": rounds, "query_interval": query_interval},
    )
    return ReportRun(report=report, runtime=runtime, coverage=coverage)
