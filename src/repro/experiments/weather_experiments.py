"""Weather-data experiments (§6.3): Figures 11–15.

The paper runs these on wind-speed measurements from the University of
Washington weather station (average value 5.8, average variance 2.8);
we substitute the calibrated synthetic generator of
:mod:`repro.data.weather` (see DESIGN.md).

* **Figure 11** — snapshot size vs error threshold T ∈ [0.1, 10]
  (full transmission range, 2 KB cache): ~14% of the network at the
  tightest threshold, falling to ~1.5% at T=10.
* **Figure 12** — average sse of the representatives' estimates vs T:
  the realized error stays well below the threshold.
* **Figure 13** — spurious representatives vs message loss
  (T=0.1, range 0.2): few overall, and *decreasing* at extreme loss
  because lost invitations mean fewer Rule-2 recalls to lose.
* **Figures 14/15** — long-run maintenance: 100 series of 5,000 values,
  snapshot updates every 100 time units, 5% snooping on query traffic
  between updates.  Snapshot size fluctuates around its per-range mean
  (~70 at range 0.2, ~25 at range 0.7) and the per-update message cost
  stays well below the six-message bound (~2 and ~4.5 messages/node).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from functools import partial
from typing import Sequence

import numpy as np

from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.experiments.harness import (
    NetworkSetup,
    Series,
    build_runtime,
    repeat,
    run_discovery,
    weather_dataset,
)
from repro.query.ast import Query
from repro.query.executor import QueryExecutor
from repro.query.spatial import random_square

__all__ = [
    "figure11_vary_threshold",
    "figure12_estimation_error",
    "figure13_spurious_representatives",
    "MaintenanceRun",
    "run_maintenance_experiment",
    "figure14_snapshot_size_over_time",
    "figure15_messages_per_update",
    "DEFAULT_THRESHOLD_SWEEP",
]

DEFAULT_THRESHOLD_SWEEP = (0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0)

#: §6.3 uses the same cache (2,048 B) and full range as §6.1; the
#: spurious-representative experiment narrows the range to 0.2.
WEATHER_SETUP = NetworkSetup()


def _discover_on_weather(
    setup: NetworkSetup, threshold: float, seed: int
) -> tuple[SnapshotRuntime, float]:
    configured = setup.with_(threshold=threshold)
    dataset = weather_dataset(configured, seed)
    runtime, view = run_discovery(configured, dataset, seed)
    return runtime, float(view.size)


# The per-repetition workers are module-level functions (bound with
# ``functools.partial`` at call sites) so ``REPRO_JOBS > 1`` can ship
# them to worker processes; they return plain floats/tuples because the
# runtime itself is not picklable.


def _threshold_size(setup: NetworkSetup, threshold: float, seed: int) -> float:
    return _discover_on_weather(setup, threshold, seed)[1]


def _threshold_error(setup: NetworkSetup, threshold: float, seed: int) -> float:
    runtime, __ = _discover_on_weather(setup, threshold, seed)
    return _average_estimate_sse(runtime)


def _spurious_run(
    setup: NetworkSetup, loss: float, seed: int
) -> tuple[float, float]:
    configured = setup.with_(loss_probability=loss)
    dataset = weather_dataset(configured, seed)
    __, view = run_discovery(configured, dataset, seed)
    return float(view.audit().n_spurious), float(view.size)


def figure11_vary_threshold(
    thresholds: Sequence[float] = DEFAULT_THRESHOLD_SWEEP,
    repetitions: int = 10,
    setup: NetworkSetup = WEATHER_SETUP,
    base_seed: int = 11,
) -> Series:
    """Snapshot size vs error threshold T on weather data (Figure 11)."""
    series = Series("snapshot size", "T (error threshold)", "n1 (representatives)")
    for threshold in thresholds:
        samples = repeat(
            partial(_threshold_size, setup, threshold),
            repetitions,
            base_seed * 1_000 + int(threshold * 100),
        )
        series.add(threshold, samples)
    return series


def _average_estimate_sse(runtime: SnapshotRuntime) -> float:
    """Mean squared error of representatives' estimates for their members."""
    errors: list[float] = []
    for node in runtime.nodes.values():
        if node.mode is not NodeMode.ACTIVE or not node.alive:
            continue
        for member_id in node.represented:
            estimate = node.estimate_for(member_id)
            if estimate is None:
                continue
            actual = runtime.value_of(member_id)
            errors.append((actual - estimate) ** 2)
    return statistics.fmean(errors) if errors else 0.0


def figure12_estimation_error(
    thresholds: Sequence[float] = DEFAULT_THRESHOLD_SWEEP,
    repetitions: int = 10,
    setup: NetworkSetup = WEATHER_SETUP,
    base_seed: int = 12,
) -> Series:
    """Average sse of the snapshot's estimates vs T (Figure 12).

    Paper shape: the measured error is consistently far below the
    threshold used for the election.
    """
    series = Series("estimate sse", "T (error threshold)", "average sse")
    for threshold in thresholds:
        samples = repeat(
            partial(_threshold_error, setup, threshold),
            repetitions,
            base_seed * 1_000 + int(threshold * 100),
        )
        series.add(threshold, samples)
    return series


def figure13_spurious_representatives(
    losses: Sequence[float] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95),
    repetitions: int = 10,
    setup: NetworkSetup = WEATHER_SETUP.with_(transmission_range=0.2, threshold=0.1),
    base_seed: int = 13,
) -> dict[str, Series]:
    """Spurious and total representatives vs ``P_loss`` (Figure 13).

    Paper shape: the spurious count is very small throughout, and
    actually *decreases* at very high loss because most invitations
    never arrive and Rule-2 rarely executes at all.
    """
    spurious = Series("spurious", "P_loss", "representatives")
    total = Series("total", "P_loss", "representatives")
    for loss in losses:
        pairs = repeat(
            partial(_spurious_run, setup, loss),
            repetitions,
            base_seed * 1_000 + int(loss * 100),
        )
        spurious.add(loss, [pair[0] for pair in pairs])
        total.add(loss, [pair[1] for pair in pairs])
    return {"spurious": spurious, "total": total}


# ----------------------------------------------------------------------
# Figures 14 & 15: long-run maintenance
# ----------------------------------------------------------------------


@dataclass
class MaintenanceRun:
    """Output of one long maintenance run (Figures 14 and 15)."""

    transmission_range: float
    times: list[float]
    snapshot_sizes: list[int]
    messages_per_node: list[float]

    @property
    def mean_size(self) -> float:
        """Average snapshot size over the run (Figure 14's level)."""
        return statistics.fmean(self.snapshot_sizes) if self.snapshot_sizes else 0.0

    @property
    def mean_messages(self) -> float:
        """Average per-update messages per node (Figure 15's level)."""
        return (
            statistics.fmean(self.messages_per_node) if self.messages_per_node else 0.0
        )


def run_maintenance_experiment(
    transmission_range: float,
    series_length: int = 1000,
    update_period: float = 100.0,
    query_interval: float = 10.0,
    query_area: float = 0.1,
    setup: NetworkSetup = WEATHER_SETUP.with_(threshold=0.1, snoop_probability=0.05),
    seed: int = 14,
) -> MaintenanceRun:
    """One §6.3 long run: periodic updates, 5% snooping on query traffic.

    The snapshot is updated (heartbeats, invitations, re-elections)
    every ``update_period`` time units; between updates random
    drill-through queries run and neighbors snoop their reports with
    probability 5% to keep models fresh.  Snapshot size is sampled
    after each update (Figure 14); per-update protocol messages per
    node come from the maintenance manager (Figure 15).
    """
    configured = setup.with_(
        transmission_range=transmission_range, heartbeat_period=update_period
    )
    dataset = weather_dataset(configured, seed, length=series_length)
    runtime = build_runtime(configured, dataset, seed)
    runtime.train(duration=configured.train_duration)
    runtime.advance_to(configured.election_time)
    runtime.run_election()
    runtime.start_maintenance()
    executor = QueryExecutor(runtime)
    query_rng = np.random.default_rng(seed ^ 0x514)

    times: list[float] = []
    sizes: list[int] = []
    start = runtime.now
    end = float(series_length)
    clock = start
    next_sample = start + update_period
    while clock < end:
        clock = min(clock + query_interval, end)
        runtime.advance_to(clock)
        if clock >= next_sample:
            view = runtime.snapshot()
            times.append(clock)
            sizes.append(view.size)
            next_sample += update_period
        else:
            region = random_square(query_area, query_rng)
            try:
                executor.execute(Query(region=region, use_snapshot=True))
            except RuntimeError:
                break
    runtime.maintenance.stop()
    return MaintenanceRun(
        transmission_range=transmission_range,
        times=times,
        snapshot_sizes=sizes,
        messages_per_node=runtime.maintenance.round_message_costs(),
    )


def figure14_snapshot_size_over_time(
    ranges: Sequence[float] = (0.2, 0.7),
    series_length: int = 1000,
    seed: int = 14,
) -> dict[float, MaintenanceRun]:
    """Snapshot size over time for two transmission ranges (Figure 14).

    Paper shape: the size fluctuates mildly around a per-range mean —
    larger for the short range (fewer candidates per node) than for the
    long one.
    """
    return {
        transmission_range: run_maintenance_experiment(
            transmission_range, series_length=series_length, seed=seed
        )
        for transmission_range in ranges
    }


def figure15_messages_per_update(
    ranges: Sequence[float] = (0.2, 0.7),
    series_length: int = 1000,
    seed: int = 15,
) -> dict[float, MaintenanceRun]:
    """Messages per node per maintenance update (Figure 15).

    Paper shape: more messages at the longer range (more nodes answer
    each invitation), both averages well below the six-message bound.
    """
    return {
        transmission_range: run_maintenance_experiment(
            transmission_range, series_length=series_length, seed=seed
        )
        for transmission_range in ranges
    }
