"""Savings during snapshot queries (§6.2): Table 3 and Figure 10.

**Table 3** measures, for 200 random spatial aggregate queries, the
average reduction ``(N_regular - N_snapshot) / N_regular`` in the
number of participating nodes (responders + routing nodes on the TAG
tree), across query areas W² ∈ {0.01, 0.1, 0.5}, transmission ranges
{0.2, 0.7} and class counts K ∈ {1, 100}.

**Figure 10** compares network *coverage over time* between a network
answering regular queries and one answering snapshot queries, with
batteries worth 500 transmissions and the cache-maintenance CPU charge
of one tenth of a transmission: regular execution drains all nodes
roughly uniformly and collapses abruptly near mid-run; snapshot
execution drains representatives faster but degrades gradually and
yields a much larger area under the coverage curve.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from functools import partial
from typing import Optional, Sequence

import numpy as np

from repro.experiments.harness import (
    NetworkSetup,
    build_runtime,
    parallel_map,
    random_walk_dataset,
    run_discovery,
)
from repro.query.ast import Aggregate, Query
from repro.query.coverage import CoverageSeries
from repro.query.executor import QueryExecutor
from repro.query.spatial import random_square

__all__ = [
    "Table3Cell",
    "Table3Result",
    "table3_savings",
    "LifetimeResult",
    "figure10_lifetime",
]


# ----------------------------------------------------------------------
# Table 3
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Table3Cell:
    """One configuration cell of Table 3."""

    query_area: float
    transmission_range: float
    n_classes: int
    savings: float
    n_queries: int
    snapshot_size: int

    @property
    def percent(self) -> float:
        """Savings in percent, the unit Table 3 reports."""
        return 100.0 * self.savings


@dataclass
class Table3Result:
    """All cells, addressable by ``(area, range, classes)``."""

    cells: dict[tuple[float, float, int], Table3Cell] = field(default_factory=dict)

    def cell(
        self, query_area: float, transmission_range: float, n_classes: int
    ) -> Table3Cell:
        """The cell for one configuration."""
        return self.cells[(query_area, transmission_range, n_classes)]


def _table3_config_cells(
    areas: Sequence[float],
    n_queries: int,
    setup: NetworkSetup,
    base_seed: int,
    prefer_representative_routing: bool,
    config: tuple[float, int],
) -> list[Table3Cell]:
    """All area cells of one (range, K) configuration.

    Module-level and returning plain dataclasses so ``REPRO_JOBS > 1``
    can run each configuration in its own worker process — the network
    build, training and election dominate the cost and are independent
    across configurations.
    """
    transmission_range, n_classes = config
    seed = base_seed * 10_000 + int(transmission_range * 100) * 100 + n_classes
    configured = setup.with_(transmission_range=transmission_range)
    dataset = random_walk_dataset(
        configured, n_classes, seed, length=int(configured.election_time) + 10
    )
    runtime, view = run_discovery(configured, dataset, seed)
    executor = QueryExecutor(
        runtime,
        prefer_representative_routing=prefer_representative_routing,
    )
    query_rng = np.random.default_rng(seed ^ 0xC0FFEE)
    cells: list[Table3Cell] = []
    for query_area in areas:
        savings: list[float] = []
        for _ in range(n_queries):
            region = random_square(query_area, query_rng)
            regular = executor.execute(
                Query(aggregate=Aggregate.SUM, region=region),
                charge_energy=False,
            )
            snapshot = executor.execute(
                Query(aggregate=Aggregate.SUM, region=region, use_snapshot=True),
                sink=regular.sink,
                charge_energy=False,
            )
            if regular.n_participants == 0:
                continue
            savings.append(
                (regular.n_participants - snapshot.n_participants)
                / regular.n_participants
            )
        cells.append(
            Table3Cell(
                query_area=query_area,
                transmission_range=transmission_range,
                n_classes=n_classes,
                savings=statistics.fmean(savings) if savings else 0.0,
                n_queries=len(savings),
                snapshot_size=view.size,
            )
        )
    return cells


def table3_savings(
    areas: Sequence[float] = (0.01, 0.1, 0.5),
    ranges: Sequence[float] = (0.2, 0.7),
    classes: Sequence[int] = (1, 100),
    n_queries: int = 200,
    setup: NetworkSetup = NetworkSetup(),
    base_seed: int = 3,
    prefer_representative_routing: bool = False,
) -> Table3Result:
    """Reproduce Table 3.

    For each (range, K) a network is trained and a snapshot elected at
    ``T = 1``; then ``n_queries`` random square aggregate queries per
    area are executed once regularly and once as snapshot queries, and
    the per-query participant reduction is averaged.  Queries that no
    node matches or reaches are skipped, as they have no participants
    to save.  Each (range, K) configuration is seeded independently of
    scheduling, so the table is identical under any ``REPRO_JOBS``.
    """
    configs = [
        (transmission_range, n_classes)
        for transmission_range in ranges
        for n_classes in classes
    ]
    per_config = parallel_map(
        partial(
            _table3_config_cells,
            tuple(areas),
            n_queries,
            setup,
            base_seed,
            prefer_representative_routing,
        ),
        configs,
    )
    result = Table3Result()
    for cells in per_config:
        for cell in cells:
            result.cells[
                (cell.query_area, cell.transmission_range, cell.n_classes)
            ] = cell
    return result


# ----------------------------------------------------------------------
# Figure 10
# ----------------------------------------------------------------------


@dataclass
class LifetimeResult:
    """Coverage-over-time curves of the two execution modes."""

    regular: CoverageSeries
    snapshot: CoverageSeries

    @property
    def area_gain(self) -> float:
        """Snapshot AUC over regular AUC (the paper's headline claim)."""
        if self.regular.area == 0:
            return float("inf") if self.snapshot.area > 0 else 1.0
        return self.snapshot.area / self.regular.area


def _run_lifetime(
    setup: NetworkSetup,
    use_snapshot: bool,
    n_queries: int,
    query_area: float,
    seed: int,
) -> CoverageSeries:
    dataset = random_walk_dataset(
        setup, 1, seed, length=int(setup.election_time) + n_queries + 10
    )
    # Snooping on query traffic costs the §6.2 CPU charge per overheard
    # report.  The paper's lifetime run does not snoop (its models are
    # already trained and the class-correlated walks never invalidate
    # them); heartbeats alone keep the models tuned.
    setup = setup.with_(snoop_probability=0.0)
    runtime = build_runtime(setup, dataset, seed)
    if use_snapshot:
        # Only the snapshot run pays the background costs: training,
        # election and maintenance (§6.2: "We executed our algorithms
        # for electing and maintaining the representatives only during
        # the second run").
        runtime.train(duration=setup.train_duration)
        runtime.advance_to(setup.election_time)
        runtime.run_election()
        runtime.start_maintenance()
    else:
        runtime.advance_to(setup.election_time)
    executor = QueryExecutor(runtime)
    query_rng = np.random.default_rng(seed ^ 0xF16)
    series = CoverageSeries()
    start = runtime.now
    for step in range(n_queries):
        runtime.advance_to(start + step + 1)
        region = random_square(query_area, query_rng)
        # Drill-through queries: individual reports travel hop-by-hop
        # to the sink, which is what makes regular execution expensive
        # and the snapshot's couple of representative bundles cheap.
        query = Query(region=region, use_snapshot=use_snapshot)
        try:
            result = executor.execute(query)
        except RuntimeError:
            # The whole network is dead: coverage is zero from here on.
            series.samples.extend([0.0] * (n_queries - step))
            break
        series.record(result)
    return series


def figure10_lifetime(
    n_queries: int = 6000,
    query_area: float = 0.1,
    battery_capacity: float = 500.0,
    setup: Optional[NetworkSetup] = None,
    seed: int = 10,
) -> LifetimeResult:
    """Reproduce Figure 10 (coverage over time, K=T=1, range 0.7).

    Paper shape: regular queries hold 100% coverage until roughly the
    middle of the run, then collapse below 20% as the uniformly drained
    network dies en masse; snapshot queries decline gradually (their
    representatives drain faster but are replaced) and accumulate a far
    larger area under the curve.

    The snapshot run enables the §5.1 energy-aware hand-off (a
    representative below 15% battery resigns and hands its members
    back) — the remedy the paper prescribes for representative drain.
    The ``bench_ablation_rotation`` benchmark compares this against the
    paper's bare replace-on-death protocol and LEACH-style rotation.
    """
    if setup is None:
        setup = NetworkSetup(
            transmission_range=0.7,
            threshold=1.0,
            battery_capacity=battery_capacity,
            heartbeat_period=100.0,
            energy_resign_fraction=0.1,
        )
    else:
        setup = setup.with_(battery_capacity=battery_capacity)
    regular = _run_lifetime(setup, False, n_queries, query_area, seed)
    snapshot = _run_lifetime(setup, True, n_queries, query_area, seed)
    return LifetimeResult(regular=regular, snapshot=snapshot)
