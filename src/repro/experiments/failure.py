"""Coverage under failure: the §5.1 robustness claim as a sweep.

The paper argues the maintenance protocol keeps the snapshot usable
while nodes die (§5.1, Figures 13–14), but never quantifies *query
coverage* against the death rate directly.  This experiment does: every
node draws a geometric death time with per-maintenance-period
probability ``death_rate`` (permanent crashes injected through the
:mod:`repro.faults` subsystem), maintenance runs for a fixed horizon,
and after every completed round the surviving network's snapshot
coverage is sampled.  The sweep reports, per death rate:

* **coverage** — mean fraction of *alive* nodes covered by some alive
  representative, averaged over rounds and repetitions (how much of
  the living network a snapshot query can still answer for);
* **reelections** — mean §5.1 re-elections per maintenance round (the
  repair work the churn forces).

Run it from the CLI with ``python -m repro.cli experiment failure``.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

import numpy as np

from repro.experiments.harness import Series, derive_seeds, parallel_map
from repro.faults.chaos import ChaosConfig, build_chaos_runtime
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NodeCrash

__all__ = ["coverage_under_failure", "DEFAULT_DEATH_RATES"]

DEFAULT_DEATH_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)

#: Maintenance rounds each repetition runs after arming the crash plan.
_HORIZON_PERIODS = 12
#: Network size per repetition (small enough for a dense sweep).
_N_NODES = 12


def _death_plan(
    death_rate: float, n_nodes: int, period: float, rng: np.random.Generator
) -> FaultPlan:
    """Permanent crashes at geometric per-period death times.

    A node whose geometric draw lands beyond the horizon never dies —
    at rate 0 the plan is empty and the sweep's baseline is fault-free.
    """
    if death_rate <= 0.0:
        return FaultPlan()
    crashes = []
    for node_id in range(n_nodes):
        periods_survived = rng.geometric(death_rate)
        if periods_survived <= _HORIZON_PERIODS:
            # Spread deaths inside their period so they interleave with
            # the staggered heartbeats rather than landing on boundaries.
            offset = float(rng.uniform(0.0, period))
            crashes.append(
                NodeCrash(
                    time=(periods_survived - 1) * period + offset, node_id=node_id
                )
            )
    return FaultPlan(tuple(crashes))


def _coverage_and_repairs(death_rate: float, seed: int) -> tuple[float, float]:
    """One repetition: (mean per-round coverage, re-elections per round)."""
    config = ChaosConfig(
        seed=seed,
        n_nodes=_N_NODES,
        n_faults=0,
        rotation_probability=0.0,
        battery_capacity=None,
    )
    runtime = build_chaos_runtime(config)
    injector = FaultInjector(runtime)
    runtime.train(duration=6.0)
    runtime.run_election()

    coverages: list[float] = []

    def sample_coverage(_record) -> None:
        alive = [node for node in runtime.nodes.values() if node.alive]
        if not alive:
            return
        covered: set[int] = set()
        for node in alive:
            covered |= node.covered_nodes()
        alive_ids = {node.node_id for node in alive}
        coverages.append(len(covered & alive_ids) / len(alive_ids))

    subscription = runtime.simulator.trace.subscribe(
        "maintenance.round", sample_coverage
    )
    try:
        runtime.start_maintenance()
        period = config.heartbeat_period
        plan_rng = np.random.default_rng(np.random.SeedSequence([seed, 0xDEAD]))
        plan = _death_plan(death_rate, _N_NODES, period, plan_rng)
        injector.apply(plan, at=runtime.now)
        runtime.advance_to(runtime.now + _HORIZON_PERIODS * period)
        runtime.maintenance.stop()
    finally:
        subscription.cancel()

    rounds = max(1, runtime.maintenance.rounds_completed)
    reelections = sum(node.reelections for node in runtime.nodes.values())
    mean_coverage = float(np.mean(coverages)) if coverages else 0.0
    return mean_coverage, reelections / rounds


def coverage_under_failure(
    death_rates: Sequence[float] = DEFAULT_DEATH_RATES,
    repetitions: int = 5,
    base_seed: int = 51,
) -> dict[str, Series]:
    """Sweep the per-period death rate; report coverage and repair cost.

    Expected shape: coverage of the *alive* population stays near 1.0
    well past death rates that halve the network — the §5.1 heartbeat
    timeout re-elects around every dead representative within one
    period — while re-elections per round grow with the death rate.
    """
    coverage = Series("coverage", "death rate / period", "mean alive coverage")
    reelections = Series(
        "reelections", "death rate / period", "re-elections per round"
    )
    if repetitions <= 0:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    for rate in death_rates:
        rate_seed = base_seed * 1_000 + int(rate * 1_000)
        seeds = derive_seeds(rate_seed, repetitions)
        samples = parallel_map(partial(_coverage_and_repairs, rate), seeds)
        coverage.add(rate, [covered for covered, __ in samples])
        reelections.add(rate, [repairs for __, repairs in samples])
    return {"coverage": coverage, "reelections": reelections}
