"""Experiment harness: one runner per table/figure of the paper's §6.

Sensitivity analysis (Figures 6–9), query savings (Table 3, Figure 10)
the weather-data experiments (Figures 11–15) and the coverage-under-
failure sweep built on the fault-injection subsystem, each returning
the series the paper plots, averaged over repetitions with fresh seeds.
"""

from repro.experiments.failure import (
    DEFAULT_DEATH_RATES,
    coverage_under_failure,
)
from repro.experiments.harness import (
    FULL_RANGE,
    NetworkSetup,
    Series,
    SweepPoint,
    build_runtime,
    make_cache_factory,
    random_walk_dataset,
    repeat,
    run_discovery,
    weather_dataset,
)
from repro.experiments.reporting import (
    format_multi_series,
    format_rows,
    format_series,
    format_table3,
)
from repro.experiments.savings import (
    LifetimeResult,
    Table3Cell,
    Table3Result,
    figure10_lifetime,
    table3_savings,
)
from repro.experiments.sensitivity import (
    figure6_vary_classes,
    figure7_vary_message_loss,
    figure8_vary_cache_size,
    figure9_vary_transmission_range,
)
from repro.experiments.weather_experiments import (
    MaintenanceRun,
    figure11_vary_threshold,
    figure12_estimation_error,
    figure13_spurious_representatives,
    figure14_snapshot_size_over_time,
    figure15_messages_per_update,
    run_maintenance_experiment,
)

__all__ = [
    "DEFAULT_DEATH_RATES",
    "FULL_RANGE",
    "LifetimeResult",
    "MaintenanceRun",
    "NetworkSetup",
    "Series",
    "SweepPoint",
    "Table3Cell",
    "Table3Result",
    "build_runtime",
    "coverage_under_failure",
    "figure10_lifetime",
    "figure11_vary_threshold",
    "figure12_estimation_error",
    "figure13_spurious_representatives",
    "figure14_snapshot_size_over_time",
    "figure15_messages_per_update",
    "figure6_vary_classes",
    "figure7_vary_message_loss",
    "figure8_vary_cache_size",
    "figure9_vary_transmission_range",
    "format_multi_series",
    "format_rows",
    "format_series",
    "format_table3",
    "make_cache_factory",
    "random_walk_dataset",
    "repeat",
    "run_discovery",
    "run_maintenance_experiment",
    "table3_savings",
    "weather_dataset",
]
