"""Sensitivity analysis (§6.1): Figures 6, 7, 8 and 9.

All four experiments share the §6.1 skeleton — N=100 nodes on the unit
square, random-walk data with K correlation classes, train for the
first 10 time units, stay silent for 90, then run the representative
discovery and record the snapshot size ``n1``, averaged over ten
repetitions:

* **Figure 6** sweeps the number of classes K (full range, no loss);
* **Figure 7** sweeps the message-loss probability ``P_loss`` at K=1;
* **Figure 8** sweeps the cache size for the model-aware manager vs the
  round-robin baseline at K=10;
* **Figure 9** sweeps the transmission range for several K.
"""

from __future__ import annotations

from functools import partial
from typing import Sequence

from repro.experiments.harness import (
    NetworkSetup,
    Series,
    random_walk_dataset,
    repeat,
    run_discovery,
)

__all__ = [
    "figure6_vary_classes",
    "figure7_vary_message_loss",
    "figure8_vary_cache_size",
    "figure9_vary_transmission_range",
    "DEFAULT_CLASS_SWEEP",
    "DEFAULT_LOSS_SWEEP",
    "DEFAULT_CACHE_SWEEP",
    "DEFAULT_RANGE_SWEEP",
]

DEFAULT_CLASS_SWEEP = (1, 2, 5, 10, 15, 20, 30, 50, 75, 100)
DEFAULT_LOSS_SWEEP = (0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95)
DEFAULT_CACHE_SWEEP = (200, 400, 600, 800, 1100, 1600, 2048, 2560, 3072, 4096)
DEFAULT_RANGE_SWEEP = (0.2, 0.3, 0.5, 0.7, 0.9, 1.1, 1.4)


def _snapshot_size(setup: NetworkSetup, n_classes: int, seed: int) -> float:
    """One repetition's snapshot size (module-level: picklable for REPRO_JOBS)."""
    dataset = random_walk_dataset(setup, n_classes, seed)
    __, view = run_discovery(setup, dataset, seed)
    return float(view.size)


def figure6_vary_classes(
    classes: Sequence[int] = DEFAULT_CLASS_SWEEP,
    repetitions: int = 10,
    setup: NetworkSetup = NetworkSetup(),
    base_seed: int = 6,
) -> Series:
    """Snapshot size vs number of classes K (Figure 6).

    Paper shape: K=1 elects a single representative for all 100 nodes;
    beyond K≈15 the size plateaus in the 17–25 range instead of growing
    proportionally.
    """
    series = Series("snapshot size", "K (classes)", "n1 (representatives)")
    for n_classes in classes:
        samples = repeat(
            partial(_snapshot_size, setup, n_classes),
            repetitions,
            base_seed * 1_000 + n_classes,
        )
        series.add(n_classes, samples)
    return series


def figure7_vary_message_loss(
    losses: Sequence[float] = DEFAULT_LOSS_SWEEP,
    repetitions: int = 10,
    setup: NetworkSetup = NetworkSetup(),
    base_seed: int = 7,
) -> Series:
    """Snapshot size vs message loss ``P_loss`` at K=1 (Figure 7).

    Paper shape: ~1 representative without loss, ~4 at 30% loss, still
    effective up to ~80%, then a sharp rise as nearly all messages die.
    """
    series = Series("snapshot size", "P_loss", "n1 (representatives)")
    for loss in losses:
        lossy = setup.with_(loss_probability=loss)
        samples = repeat(
            partial(_snapshot_size, lossy, 1),
            repetitions,
            base_seed * 1_000 + int(loss * 100),
        )
        series.add(loss, samples)
    return series


def figure8_vary_cache_size(
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SWEEP,
    repetitions: int = 10,
    setup: NetworkSetup = NetworkSetup(),
    n_classes: int = 10,
    base_seed: int = 8,
) -> dict[str, Series]:
    """Snapshot size vs cache budget, model-aware vs round-robin (Figure 8).

    Paper shape: indistinguishable below ~500 bytes (one pair per line
    either way), the model-aware manager roughly halves the snapshot
    around 1,100 bytes, and the gap closes again past ~2.5 KB where 2–3
    pairs per line fit regardless of policy.  K=10.
    """
    results: dict[str, Series] = {}
    for policy in ("model-aware", "round-robin"):
        series = Series(policy, "cache bytes", "n1 (representatives)")
        for cache_bytes in cache_sizes:
            configured = setup.with_(cache_policy=policy, cache_bytes=cache_bytes)
            samples = repeat(
                partial(_snapshot_size, configured, n_classes),
                repetitions,
                base_seed * 100_000 + cache_bytes,
            )
            series.add(cache_bytes, samples)
        results[policy] = series
    return results


def figure9_vary_transmission_range(
    ranges: Sequence[float] = DEFAULT_RANGE_SWEEP,
    classes: Sequence[int] = (1, 5, 10, 20),
    repetitions: int = 10,
    setup: NetworkSetup = NetworkSetup(),
    base_seed: int = 9,
) -> dict[int, Series]:
    """Snapshot size vs transmission range for several K (Figure 9).

    Paper shape: all lines flatten once the range exceeds ~0.7
    (= sqrt(0.5), enough for a centrally located node to hear the whole
    unit square); short ranges force more representatives because each
    node hears fewer candidates.
    """
    results: dict[int, Series] = {}
    for n_classes in classes:
        series = Series(f"K={n_classes}", "transmission range", "n1 (representatives)")
        for transmission_range in ranges:
            configured = setup.with_(transmission_range=transmission_range)
            samples = repeat(
                partial(_snapshot_size, configured, n_classes),
                repetitions,
                base_seed * 1_000_000 + n_classes * 1_000 + int(transmission_range * 100),
            )
            series.add(transmission_range, samples)
        results[n_classes] = series
    return results
