"""Textual reporting in the paper's format.

The benchmark harness prints, for every reproduced table and figure,
the same rows/series the paper reports.  These helpers render
:class:`~repro.experiments.harness.Series` sweeps and the Table 3 grid
as aligned plain-text tables suitable for terminals and logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.experiments.harness import Series
from repro.experiments.savings import Table3Result

__all__ = ["format_series", "format_multi_series", "format_table3", "format_rows"]


def format_rows(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Series, title: str = "") -> str:
    """Render one sweep as ``x  mean ± std`` rows."""
    rows = [
        (f"{point.x:g}", f"{point.mean:.2f}", f"± {point.std:.2f}")
        for point in series.points
    ]
    return format_rows(
        (series.x_name, series.y_name, "spread"),
        rows,
        title=title or series.label,
    )


def format_multi_series(
    series_by_label: dict, x_name: str, title: str = ""
) -> str:
    """Render several same-x sweeps side by side (one column per label)."""
    labels = list(series_by_label)
    first = series_by_label[labels[0]]
    headers = [x_name] + [str(label) for label in labels]
    rows = []
    for index, x in enumerate(first.xs):
        row = [f"{x:g}"]
        for label in labels:
            point = series_by_label[label].points[index]
            row.append(f"{point.mean:.2f}")
        rows.append(row)
    return format_rows(headers, rows, title=title)


def format_table3(result: Table3Result, title: str = "Table 3") -> str:
    """Render Table 3 in the paper's layout (percent savings)."""
    ranges = sorted({key[1] for key in result.cells})
    classes = sorted({key[2] for key in result.cells})
    areas = sorted({key[0] for key in result.cells})
    headers = ["Query Range"] + [
        f"K={k} r={r:g}" for k in classes for r in ranges
    ]
    rows = []
    for area in areas:
        row = [f"W^2 = {area:g}"]
        for k in classes:
            for r in ranges:
                cell = result.cell(area, r, k)
                row.append(f"{cell.percent:.0f}%")
        rows.append(row)
    return format_rows(headers, rows, title=title)
