"""Error metrics ``d(x, x̂)`` (§3 of the paper).

A node ``N_i`` can *represent* ``N_j`` when ``d(x_j, x̂_j) <= T`` for the
application-supplied metric ``d`` and threshold ``T``.  The paper lists
three common choices, all implemented here:

* relative error ``|x - x̂| / max(s, |x|)`` with sanity bound ``s > 0``
  for the ``x = 0`` case;
* absolute error ``|x - x̂|``;
* sum-squared error ``(x - x̂)^2`` — the metric all experiments use.

Metrics are small frozen callables so they can be handed to the
election protocol, the cache manager and the query layer alike.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = [
    "ErrorMetric",
    "SumSquaredError",
    "AbsoluteError",
    "RelativeError",
    "metric_by_name",
]


class ErrorMetric(abc.ABC):
    """A distance between an actual value and its estimate."""

    @abc.abstractmethod
    def __call__(self, actual: float, estimate: float) -> float:
        """The error of ``estimate`` with respect to ``actual`` (>= 0)."""

    def within(self, actual: float, estimate: float, threshold: float) -> bool:
        """The representability test ``d(x, x̂) <= T``."""
        return self(actual, estimate) <= threshold

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Registry name of the metric."""


@dataclass(frozen=True)
class SumSquaredError(ErrorMetric):
    """``d(x, x̂) = (x - x̂)^2`` — the paper's default metric."""

    def __call__(self, actual: float, estimate: float) -> float:
        diff = actual - estimate
        return diff * diff

    @property
    def name(self) -> str:
        return "sse"


@dataclass(frozen=True)
class AbsoluteError(ErrorMetric):
    """``d(x, x̂) = |x - x̂|``."""

    def __call__(self, actual: float, estimate: float) -> float:
        return abs(actual - estimate)

    @property
    def name(self) -> str:
        return "absolute"


@dataclass(frozen=True)
class RelativeError(ErrorMetric):
    """``d(x, x̂) = |x - x̂| / max(s, |x|)`` with sanity bound ``s``.

    The sanity bound keeps the metric finite when the actual value is
    zero (paper §3, choice (i)).
    """

    sanity_bound: float = 1.0

    def __post_init__(self) -> None:
        if self.sanity_bound <= 0:
            raise ValueError(
                f"sanity bound must be positive, got {self.sanity_bound}"
            )

    def __call__(self, actual: float, estimate: float) -> float:
        return abs(actual - estimate) / max(self.sanity_bound, abs(actual))

    @property
    def name(self) -> str:
        return "relative"


_REGISTRY = {
    "sse": SumSquaredError,
    "absolute": AbsoluteError,
    "relative": RelativeError,
}


def metric_by_name(name: str, **kwargs: float) -> ErrorMetric:
    """Construct a metric from its registry name.

    >>> metric_by_name("sse")(3.0, 1.0)
    4.0
    >>> metric_by_name("relative", sanity_bound=0.5)(0.0, 1.0)
    2.0
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown metric {name!r}; expected one of {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
