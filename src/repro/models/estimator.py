"""Per-node model store: the bridge between caching and the protocol.

:class:`NeighborModelStore` wraps a cache policy and answers the two
questions the election protocol asks (§3, §5):

* *record* — a neighbor's value was heard (snooped or via heartbeat)
  together with our own current measurement; feed the cache;
* *can I represent the neighbor?* — estimate ``x̂_j`` from our current
  value and test ``d(x_j, x̂_j) <= T``.

It also carries the multi-measurement extension the paper sketches in
§3: with more than one sensing element per node, cache lines are keyed
by ``(neighbor, measurement_id)`` while still sharing the single byte
budget — "the only necessary modification is the addition of a
measurement_id during model computation".
"""

from __future__ import annotations

from typing import Optional

from repro.models.metrics import ErrorMetric
from repro.models.policy import CachePolicy
from repro.models.regression import LinearModel

__all__ = ["NeighborModelStore"]


class NeighborModelStore:
    """Models of all neighbors, backed by one byte-budgeted cache policy.

    Parameters
    ----------
    policy:
        The cache policy holding the observation history.
    n_measurements:
        Number of sensing elements per node (1 in all paper experiments).
    """

    def __init__(self, policy: CachePolicy, n_measurements: int = 1) -> None:
        if n_measurements < 1:
            raise ValueError(f"n_measurements must be >= 1, got {n_measurements}")
        self.policy = policy
        self.n_measurements = n_measurements

    def _key(self, neighbor_id: int, measurement_id: int) -> int:
        if not 0 <= measurement_id < self.n_measurements:
            raise ValueError(
                f"measurement_id {measurement_id} out of range "
                f"[0, {self.n_measurements})"
            )
        return neighbor_id * self.n_measurements + measurement_id

    def record(
        self,
        neighbor_id: int,
        own_value: float,
        neighbor_value: float,
        measurement_id: int = 0,
    ) -> str:
        """Feed a synchronized observation to the cache; returns the action."""
        return self.policy.observe(
            self._key(neighbor_id, measurement_id), own_value, neighbor_value
        )

    def model(
        self, neighbor_id: int, measurement_id: int = 0
    ) -> Optional[LinearModel]:
        """Current model of the neighbor's measurement, or ``None``."""
        return self.policy.model(self._key(neighbor_id, measurement_id))

    def estimate(
        self, neighbor_id: int, own_value: float, measurement_id: int = 0
    ) -> Optional[float]:
        """``x̂_j`` from our measurement, or ``None`` without a model."""
        return self.policy.estimate(self._key(neighbor_id, measurement_id), own_value)

    def can_represent(
        self,
        neighbor_id: int,
        neighbor_value: float,
        own_value: float,
        metric: ErrorMetric,
        threshold: float,
        measurement_id: int = 0,
    ) -> bool:
        """The §3 representability test ``d(x_j, x̂_j) <= T``.

        Returns ``False`` when no model exists — a node cannot offer to
        represent a neighbor it has never modeled.
        """
        estimate = self.estimate(neighbor_id, own_value, measurement_id)
        if estimate is None:
            return False
        return metric.within(neighbor_value, estimate, threshold)

    def known_neighbors(self, measurement_id: int = 0) -> list[int]:
        """Neighbors with history for ``measurement_id``, ascending id."""
        return sorted(
            key // self.n_measurements
            for key in self.policy.known_neighbors()
            if key % self.n_measurements == measurement_id
        )

    def forget(self, neighbor_id: int) -> None:
        """Drop all measurements' history for ``neighbor_id``."""
        for measurement_id in range(self.n_measurements):
            self.policy.forget(self._key(neighbor_id, measurement_id))
