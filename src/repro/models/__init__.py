"""Model management (§4 of the paper).

Linear correlation models between neighboring nodes' measurements
(Lemma 1), pluggable error metrics, and the model-aware cache manager
that allocates a node's few hundred bytes of memory to the models that
yield the highest accuracy — plus the round-robin baseline of Figure 8.
"""

from repro.models.cache import (
    BYTES_PER_PAIR,
    BYTES_PER_VALUE,
    STATS_SYNC_INTERVAL,
    CacheLine,
    pairs_for_budget,
)
from repro.models.cache_manager import ModelAwareCache
from repro.models.estimator import NeighborModelStore
from repro.models.metrics import (
    AbsoluteError,
    ErrorMetric,
    RelativeError,
    SumSquaredError,
    metric_by_name,
)
from repro.models.policy import Action, CachePolicy
from repro.models.regression import (
    LinearModel,
    RegressionStats,
    fit_line,
    mean_sse_of_model,
    no_answer_sse,
    sse_of_model,
)
from repro.models.robust import fit_for_metric, fit_line_lad, theil_sen
from repro.models.round_robin import RoundRobinCache

__all__ = [
    "AbsoluteError",
    "Action",
    "BYTES_PER_PAIR",
    "BYTES_PER_VALUE",
    "CacheLine",
    "CachePolicy",
    "ErrorMetric",
    "LinearModel",
    "ModelAwareCache",
    "NeighborModelStore",
    "RegressionStats",
    "RelativeError",
    "RoundRobinCache",
    "STATS_SYNC_INTERVAL",
    "SumSquaredError",
    "fit_for_metric",
    "fit_line",
    "fit_line_lad",
    "mean_sse_of_model",
    "metric_by_name",
    "theil_sen",
    "no_answer_sse",
    "pairs_for_budget",
    "sse_of_model",
]
