"""Cache lines: the per-neighbor observation history (§4).

A node's cache is a set of *cache lines*, one per neighbor it has heard
from.  The cache line for neighbor ``N_j`` is a time-ordered list of
pairs ``(x_i(t_k), x_j(t_k))`` — the node's own measurement and the
neighbor's, sampled together.  Victims are always the *oldest* pair of
some line: this shifts the cache toward fresh observations.

Each line additionally maintains the running sufficient statistics
``(n, Σx, Σy, Σx², Σxy, Σy²)`` of its pairs
(:class:`~repro.models.regression.RegressionStats`), updated in O(1)
on ``append``/``evict_oldest``.  The fitted model, the benefit over the
no-answer policy and the §4 eviction penalty are all closed forms over
those statistics, so every quantity the cache manager scores is O(1) —
no pass over the pairs, no list copies.  Because ``evict_oldest``
*subtracts* from the sums, floating-point drift can accumulate; the
line re-derives its statistics exactly from the stored pairs every
:data:`STATS_SYNC_INTERVAL` evictions to keep the drift bounded.

Budget accounting follows the paper exactly: values are 4-byte floats,
so a pair occupies 8 bytes; a cache of 2,048 bytes holds 256 pairs.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from itertools import islice
from typing import Iterator, Optional

from repro.models.regression import (
    LinearModel,
    RegressionStats,
    batch_fit_coefficients,
    fit_coefficients,
    model_sse,
)

__all__ = [
    "CacheLine",
    "PairsView",
    "BYTES_PER_VALUE",
    "BYTES_PER_PAIR",
    "STATS_SYNC_INTERVAL",
    "pairs_for_budget",
]

#: Relative margin under which a closed-form quantity is re-computed
#: batch-style before it feeds a decision comparison.  The incremental
#: forms reproduce the batch values only to ~1e-11 relative, so exact
#: floating-point ties — which §4's strict comparisons resolve
#: deterministically — must be re-scored the original way.  Scaled by
#: the relevant no-answer baseline; genuine margins are many orders of
#: magnitude wider, so the O(line length) fallback is rare.
_NEAR_TIE_RTOL = 1e-9

#: The paper represents measurements as 4-byte floats (§6.1).
BYTES_PER_VALUE = 4
#: A cached observation is a pair of values.
BYTES_PER_PAIR = 2 * BYTES_PER_VALUE

#: Evictions between exact recomputations of a line's running sums.
#: Each eviction subtracts from the sums and can leave ~1 ulp of the
#: running magnitude behind; re-deriving the sums from the stored pairs
#: every K evictions bounds the accumulated drift at ~K ulps, far below
#: anything the §4 decision comparisons can resolve.
STATS_SYNC_INTERVAL = 64


def pairs_for_budget(cache_bytes: int) -> int:
    """How many pairs fit in a ``cache_bytes`` budget.

    >>> pairs_for_budget(2048)
    256
    """
    if cache_bytes < BYTES_PER_PAIR:
        raise ValueError(
            f"cache of {cache_bytes} bytes cannot hold even one "
            f"{BYTES_PER_PAIR}-byte pair"
        )
    return cache_bytes // BYTES_PER_PAIR


class PairsView(Sequence):
    """Read-only, lazy view of a line's stored pairs, oldest first.

    Wraps the live container without copying: ``len``, indexing
    (negative indices and slices included), iteration and equality
    against any sequence of pairs all work, but the view follows
    subsequent mutations of the line.  Snapshot with ``list(view)``
    when a frozen copy is needed.
    """

    __slots__ = ("_pairs",)

    def __init__(self, pairs: Sequence[tuple[float, float]]) -> None:
        self._pairs = pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self._pairs)[index]
        return self._pairs[index]

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self._pairs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PairsView):
            other = other._pairs
        if isinstance(other, (list, tuple, deque)):
            if len(self._pairs) != len(other):
                return False
            return all(a == b for a, b in zip(self._pairs, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"PairsView({list(self._pairs)!r})"


class CacheLine:
    """Time-ordered ``(x_i, x_j)`` observations for one neighbor.

    The fitted model, benefit and eviction penalty are derived from the
    line's running :class:`RegressionStats` in O(1), cached, and
    invalidated on mutation — the constant-time updates §4 calls for.
    """

    __slots__ = (
        "neighbor_id",
        "_pairs",
        "_stats",
        "_model",
        "_model_ab",
        "_benefit",
        "_penalty",
        "_evictions_since_sync",
        "_exact_sums",
    )

    def __init__(self, neighbor_id: int) -> None:
        self.neighbor_id = neighbor_id
        self._pairs: deque[tuple[float, float]] = deque()
        self._stats = RegressionStats()
        self._model: Optional[LinearModel] = None
        self._model_ab: Optional[tuple[float, float]] = None
        self._benefit: Optional[float] = None
        self._penalty: Optional[float] = None
        self._evictions_since_sync = 0
        self._exact_sums: Optional[tuple] = None

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self._pairs)

    @property
    def pairs(self) -> PairsView:
        """The stored pairs, oldest first (a lazy, read-only view).

        The view wraps the live container — no copy — so it tracks
        later mutations; snapshot with ``list(line.pairs)`` when a
        frozen copy is needed.
        """
        return PairsView(self._pairs)

    @property
    def evictions_since_sync(self) -> int:
        """Evictions since the last exact resync of the running sums."""
        return self._evictions_since_sync

    @property
    def oldest(self) -> tuple[float, float]:
        """The oldest stored pair (the §4 eviction victim), no copy.

        Raises
        ------
        IndexError
            If the line is empty.
        """
        return self._pairs[0]

    @property
    def stats(self) -> RegressionStats:
        """The line's live sufficient statistics.

        Treat as read-only; use :meth:`RegressionStats.with_pair` /
        :meth:`RegressionStats.without_pair` to score hypothetical
        mutations without touching the line.
        """
        return self._stats

    def append(self, own_value: float, neighbor_value: float) -> None:
        """Store a new observation (newest position); O(1)."""
        pair = (float(own_value), float(neighbor_value))
        self._pairs.append(pair)
        self._stats.add(*pair)
        self._invalidate()

    def evict_oldest(self) -> tuple[float, float]:
        """Remove and return the oldest observation; O(1) amortized.

        Raises
        ------
        IndexError
            If the line is empty.
        """
        if not self._pairs:
            raise IndexError(f"cache line for neighbor {self.neighbor_id} is empty")
        pair = self._pairs.popleft()
        x, y = pair
        stats = self._stats
        # If the departing pair dominates a sum, the subtraction cancels
        # catastrophically and the tiny residual would be mostly noise
        # (e.g. removing x=91 from a line of x≈1 values).  Rebuild
        # exactly instead of subtracting — rare, and O(n) only when a
        # dominant value actually leaves the window.
        dominant = x * x > 0.5 * stats.sum_xx or y * y > 0.5 * stats.sum_yy
        stats.remove(x, y)
        self._evictions_since_sync += 1
        if dominant or self._evictions_since_sync >= STATS_SYNC_INTERVAL:
            self._resync_stats()
        self._invalidate()
        return pair

    def model_coefficients(self) -> tuple[float, float]:
        """The sse-optimal ``(slope, intercept)`` (cached, O(1)).

        The allocation-free accessor the decision hot path uses;
        :meth:`model` wraps the same cached fit in a :class:`LinearModel`.

        Raises
        ------
        ValueError
            If the line is empty.
        """
        if self._model_ab is None:
            st = self._stats
            if st.n == 0:
                raise ValueError("cannot fit a model to an empty cache line")
            self._model_ab = fit_coefficients(
                st.n, st.sum_x, st.sum_y, st.sum_xx, st.sum_xy
            )
        return self._model_ab

    def model(self) -> LinearModel:
        """The sse-optimal model for the stored pairs (cached, O(1))."""
        if self._model is None:
            self._model = LinearModel(*self.model_coefficients())
        return self._model

    def benefit(self) -> float:
        """``no_answer_sse(c) - sse(c, a*, b*)`` over the stored pairs (§4)."""
        if not self._pairs:
            return 0.0
        if self._benefit is None:
            st = self._stats
            a, b = self.model_coefficients()
            sse = model_sse(
                st.n, st.sum_x, st.sum_y, st.sum_xx, st.sum_xy, st.sum_yy, a, b
            )
            syy = st.sum_yy
            self._benefit = ((syy if syy > 0.0 else 0.0) - sse) / st.n
        return self._benefit

    def eviction_penalty(self) -> float:
        """§4's ``Penalty_Evict``: degradation from losing the oldest pair.

        ``benefit(c', a*(c'), b*(c')) - benefit(c', a*(c''), b*(c''))``
        where ``c''`` is the line minus its oldest pair.  Both models
        are *evaluated over the full line* ``c'`` — the penalty measures
        how much worse all known observations would be served.  A line
        with a single pair has penalty equal to its full benefit (the
        model disappears entirely).  O(1) via the sufficient statistics.
        """
        if not self._pairs:
            return 0.0
        if self._penalty is None:
            full_benefit = self.benefit()
            if len(self._pairs) == 1:
                self._penalty = full_benefit
            else:
                st = self._stats
                n = st.n
                sx = st.sum_x
                sy = st.sum_y
                sxx = st.sum_xx
                sxy = st.sum_xy
                syy = st.sum_yy
                ox, oy = self._pairs[0]
                # Reduced line c'' = c' minus its oldest pair, as raw sums.
                if ox * ox > 0.5 * sxx or oy * oy > 0.5 * syy:
                    # The oldest pair dominates a sum: subtracting would
                    # cancel catastrophically.  Rare exact O(n) fallback.
                    reduced = RegressionStats.from_pairs(
                        islice(self._pairs, 1, None)
                    )
                    slope, intercept = fit_coefficients(
                        reduced.n,
                        reduced.sum_x,
                        reduced.sum_y,
                        reduced.sum_xx,
                        reduced.sum_xy,
                    )
                else:
                    slope, intercept = fit_coefficients(
                        n - 1, sx - ox, sy - oy, sxx - ox * ox, sxy - ox * oy
                    )
                # The reduced model, evaluated over the *full* line c'.
                reduced_sse = model_sse(n, sx, sy, sxx, sxy, syy, slope, intercept)
                reduced_benefit = ((syy if syy > 0.0 else 0.0) - reduced_sse) / n
                penalty = full_benefit - reduced_benefit
                # Exact floating-point zeros are the common penalty tie
                # (collinear lines: the reduced fit equals the full one
                # bit-for-bit) and victim selection breaks those ties by
                # neighbor id.  The closed form leaves ~1e-11·scale of
                # noise around zero, which would order the tied lines
                # arbitrarily — re-score batch-style when that close.
                scale = syy / n
                if penalty < _NEAR_TIE_RTOL * (scale if scale > 1.0 else 1.0):
                    penalty = self._exact_penalty()
                self._penalty = penalty
        return self._penalty

    def _exact_penalty(self) -> float:
        """Batch re-computation of :meth:`eviction_penalty`, bit-for-bit.

        Operation-for-operation the pre-incremental implementation:
        fits from in-order sums, residuals summed term by term over the
        full line, the same two-benefit subtraction.  O(line length);
        reached only when the closed-form penalty is within
        :data:`_NEAR_TIE_RTOL` of zero.
        """
        pairs = self._pairs
        n, sx, sy, sxx, sxy, sx_r, sy_r, sxx_r, sxy_r = self._exact_first_pass()
        a_f, b_f = batch_fit_coefficients(n, sx, sy, sxx, sxy)
        a_r, b_r = batch_fit_coefficients(n - 1, sx_r, sy_r, sxx_r, sxy_r)
        base = 0.0
        sse_f = 0.0
        sse_r = 0.0
        for px, py in pairs:
            base += py * py
            r = py - (a_f * px + b_f)
            sse_f += r * r
            r = py - (a_r * px + b_r)
            sse_r += r * r
        base /= n
        return (base - sse_f / n) - (base - sse_r / n)

    def _exact_first_pass(self) -> tuple:
        """Memoized in-order batch sums over the stored pairs.

        ``(n, Σx, Σy, Σx², Σxy, Σx_r, Σy_r, Σx²_r, Σxy_r)`` where the
        ``_r`` sums exclude the oldest pair — the shared first pass of
        every exact near-tie fallback (:meth:`_exact_penalty` here and
        the manager's exact benefit re-scoring).  A full cache can hit
        several fallbacks between mutations of the same line; the memo
        collapses them to one O(n) pass, invalidated on mutation.
        """
        if self._exact_sums is None:
            sx = sy = sxx = sxy = 0.0
            sx_r = sy_r = sxx_r = sxy_r = 0.0
            first = True
            for px, py in self._pairs:
                sx += px
                sy += py
                sxx += px * px
                sxy += px * py
                if first:
                    first = False
                else:
                    sx_r += px
                    sy_r += py
                    sxx_r += px * px
                    sxy_r += px * py
            self._exact_sums = (
                len(self._pairs), sx, sy, sxx, sxy, sx_r, sy_r, sxx_r, sxy_r
            )
        return self._exact_sums

    def resync_stats(self) -> None:
        """Re-derive the running sums exactly from the stored pairs.

        Normally triggered automatically every
        :data:`STATS_SYNC_INTERVAL` evictions; exposed for tests and
        long-lived diagnostics.
        """
        self._resync_stats()
        self._invalidate()

    def _resync_stats(self) -> None:
        self._stats = RegressionStats.from_pairs(self._pairs)
        self._evictions_since_sync = 0

    def _invalidate(self) -> None:
        self._model = None
        self._model_ab = None
        self._benefit = None
        self._penalty = None
        self._exact_sums = None

    def __repr__(self) -> str:
        return f"CacheLine(neighbor={self.neighbor_id}, pairs={len(self._pairs)})"
