"""Cache lines: the per-neighbor observation history (§4).

A node's cache is a set of *cache lines*, one per neighbor it has heard
from.  The cache line for neighbor ``N_j`` is a time-ordered list of
pairs ``(x_i(t_k), x_j(t_k))`` — the node's own measurement and the
neighbor's, sampled together.  Victims are always the *oldest* pair of
some line: this both shifts the cache toward fresh observations and
keeps every update linear in the line length.

Budget accounting follows the paper exactly: values are 4-byte floats,
so a pair occupies 8 bytes; a cache of 2,048 bytes holds 256 pairs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.models.regression import (
    LinearModel,
    fit_line,
    mean_sse_of_model,
    no_answer_sse,
)

__all__ = ["CacheLine", "BYTES_PER_VALUE", "BYTES_PER_PAIR", "pairs_for_budget"]

#: The paper represents measurements as 4-byte floats (§6.1).
BYTES_PER_VALUE = 4
#: A cached observation is a pair of values.
BYTES_PER_PAIR = 2 * BYTES_PER_VALUE


def pairs_for_budget(cache_bytes: int) -> int:
    """How many pairs fit in a ``cache_bytes`` budget.

    >>> pairs_for_budget(2048)
    256
    """
    if cache_bytes < BYTES_PER_PAIR:
        raise ValueError(
            f"cache of {cache_bytes} bytes cannot hold even one "
            f"{BYTES_PER_PAIR}-byte pair"
        )
    return cache_bytes // BYTES_PER_PAIR


class CacheLine:
    """Time-ordered ``(x_i, x_j)`` observations for one neighbor.

    The fitted model and its benefit are cached and invalidated on
    mutation, giving the amortized linear-time updates §4 calls for.
    """

    def __init__(self, neighbor_id: int) -> None:
        self.neighbor_id = neighbor_id
        self._pairs: deque[tuple[float, float]] = deque()
        self._model: Optional[LinearModel] = None

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(self._pairs)

    @property
    def pairs(self) -> list[tuple[float, float]]:
        """The stored pairs, oldest first (a copy)."""
        return list(self._pairs)

    def append(self, own_value: float, neighbor_value: float) -> None:
        """Store a new observation (newest position)."""
        self._pairs.append((float(own_value), float(neighbor_value)))
        self._model = None

    def evict_oldest(self) -> tuple[float, float]:
        """Remove and return the oldest observation.

        Raises
        ------
        IndexError
            If the line is empty.
        """
        if not self._pairs:
            raise IndexError(f"cache line for neighbor {self.neighbor_id} is empty")
        pair = self._pairs.popleft()
        self._model = None
        return pair

    def model(self) -> LinearModel:
        """The sse-optimal model for the stored pairs (cached)."""
        if self._model is None:
            self._model = fit_line(self.pairs)
        return self._model

    def benefit(self) -> float:
        """``no_answer_sse(c) - sse(c, a*, b*)`` over the stored pairs (§4)."""
        if not self._pairs:
            return 0.0
        pairs = self.pairs
        return no_answer_sse(pairs) - mean_sse_of_model(pairs, self.model())

    def eviction_penalty(self) -> float:
        """§4's ``Penalty_Evict``: degradation from losing the oldest pair.

        ``benefit(c', a*(c'), b*(c')) - benefit(c', a*(c''), b*(c''))``
        where ``c''`` is the line minus its oldest pair.  Both models
        are *evaluated over the full line* ``c'`` — the penalty measures
        how much worse all known observations would be served.  A line
        with a single pair has penalty equal to its full benefit (the
        model disappears entirely).
        """
        pairs = self.pairs
        if not pairs:
            return 0.0
        full_benefit = self.benefit()
        remaining = pairs[1:]
        if not remaining:
            return full_benefit
        reduced_model = fit_line(remaining)
        reduced_benefit = no_answer_sse(pairs) - mean_sse_of_model(pairs, reduced_model)
        return full_benefit - reduced_benefit

    def __repr__(self) -> str:
        return f"CacheLine(neighbor={self.neighbor_id}, pairs={len(self._pairs)})"
