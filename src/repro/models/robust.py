"""Robust alternatives to the least-squares fit (§4's closing remark).

Lemma 1's closed form is sse-optimal, but the paper notes that "there
is a vast literature on linear regression that can be of use for
optimizing other error metrics such as relative or absolute error".
This module supplies two such fits:

* :func:`theil_sen` — the Theil–Sen estimator: the median of pairwise
  slopes, intercept the median residual.  It tolerates up to ~29%
  arbitrarily corrupted observations, which matters when a sensor
  occasionally reports garbage (a real WSN failure mode the sse fit is
  defenseless against).
* :func:`fit_line_lad` — least absolute deviations via iteratively
  reweighted least squares, the optimizer matching the absolute-error
  metric of §3.

Both return the same :class:`~repro.models.regression.LinearModel`, so
they slot anywhere the Lemma 1 fit does.  :func:`fit_for_metric` picks
the natural fit for a metric by name.
"""

from __future__ import annotations

import statistics
from typing import Sequence

from repro.models.metrics import ErrorMetric
from repro.models.regression import LinearModel, fit_line

__all__ = ["theil_sen", "fit_line_lad", "fit_for_metric"]

#: IRLS iterations for the LAD fit; convergence is geometric.
_LAD_ITERATIONS = 25
#: Residual floor preventing infinite IRLS weights.
_LAD_EPSILON = 1e-9


def theil_sen(pairs: Sequence[tuple[float, float]]) -> LinearModel:
    """The Theil–Sen line: median pairwise slope, median-residual intercept.

    Degenerate inputs (fewer than two distinct x values) fall back to
    the constant model, matching Lemma 1's special case.

    Raises
    ------
    ValueError
        If ``pairs`` is empty.
    """
    n = len(pairs)
    if n == 0:
        raise ValueError("cannot fit a model to an empty cache line")
    slopes = []
    for i in range(n):
        xi, yi = pairs[i]
        for j in range(i + 1, n):
            xj, yj = pairs[j]
            if xi != xj:
                slopes.append((yj - yi) / (xj - xi))
    if not slopes:
        return LinearModel(slope=0.0, intercept=statistics.median(y for _, y in pairs))
    slope = statistics.median(slopes)
    intercept = statistics.median(y - slope * x for x, y in pairs)
    return LinearModel(slope=slope, intercept=intercept)


def fit_line_lad(
    pairs: Sequence[tuple[float, float]], iterations: int = _LAD_ITERATIONS
) -> LinearModel:
    """Least-absolute-deviations fit via iteratively reweighted LSQ.

    Starts from the Lemma 1 solution and reweights each observation by
    the reciprocal of its current absolute residual; fixed points of
    this iteration are LAD-optimal lines.

    Raises
    ------
    ValueError
        If ``pairs`` is empty or ``iterations`` is not positive.
    """
    if not pairs:
        raise ValueError("cannot fit a model to an empty cache line")
    if iterations <= 0:
        raise ValueError(f"iterations must be positive, got {iterations}")
    model = fit_line(pairs)
    for _ in range(iterations):
        weights = [
            1.0 / max(_LAD_EPSILON, abs(y - model.predict(x))) for x, y in pairs
        ]
        total = sum(weights)
        sum_x = sum(w * x for w, (x, _) in zip(weights, pairs))
        sum_y = sum(w * y for w, (_, y) in zip(weights, pairs))
        sum_xx = sum(w * x * x for w, (x, _) in zip(weights, pairs))
        sum_xy = sum(w * x * y for w, (x, y) in zip(weights, pairs))
        denominator = total * sum_xx - sum_x * sum_x
        if abs(denominator) <= 1e-12 * max(1.0, total * sum_xx):
            return LinearModel(slope=0.0, intercept=sum_y / total)
        slope = (total * sum_xy - sum_x * sum_y) / denominator
        intercept = (sum_y - slope * sum_x) / total
        new_model = LinearModel(slope=slope, intercept=intercept)
        if (
            abs(new_model.slope - model.slope) < 1e-12
            and abs(new_model.intercept - model.intercept) < 1e-12
        ):
            return new_model
        model = new_model
    return model


def fit_for_metric(
    pairs: Sequence[tuple[float, float]], metric: ErrorMetric
) -> LinearModel:
    """The natural line fit for ``metric``: sse → Lemma 1, absolute →
    LAD, relative → Theil–Sen (robust to the small-|x| blow-ups the
    relative metric amplifies)."""
    name = metric.name
    if name == "absolute":
        return fit_line_lad(pairs)
    if name == "relative":
        return theil_sen(pairs)
    return fit_line(pairs)
