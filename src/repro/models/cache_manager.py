"""The model-aware cache manager (§4 of the paper).

When a new synchronized observation ``(x_i(t), x_j(t))`` arrives and
the cache is full, the manager weighs three actions for ``N_j``'s line
``c``:

* **reject** — keep the cache as is;
* **time-shift** — drop ``c``'s oldest pair and append the new one;
* **augment** — append the new pair to ``c`` and evict the oldest pair
  of some *other* line.

All three are scored by the *benefit* their resulting model provides
over the no-answer policy, where — crucially — every candidate model is
evaluated over ``c_aug`` (all known observations of ``x_j``, including
the new one):

    benefit(c_aug, a, b) = no_answer_sse(c_aug) - sse(c_aug, a, b)

The decision procedure, in the paper's order:

1. if ``benefit(c_aug, a*(c), b*(c))`` dominates both the shift and the
   augment models, the current model is already the most accurate on
   everything we know → **reject**;
2. else if the shift model dominates the augment model → **time-shift**;
3. else augmenting is best; find the other line with the smallest
   eviction penalty ``Penalty_Evict_k < Gain_Augment_j`` and evict its
   oldest pair → **augment**;
4. if no such victim exists, **time-shift** if the shift model still
   beats the current one, otherwise **reject**.

*Newcomers* (first observation for a neighbor) bypass the benefit test:
their gain would be ``x_j(t)²``, which can evict a good small-amplitude
model; instead the victim is chosen round-robin among all lines.

Every candidate is scored from the line's running sufficient statistics
(:class:`~repro.models.regression.RegressionStats`): ``c_aug`` is the
stats plus the new pair, the shifted line is ``c_aug`` minus the oldest
pair, and each fit/sse is a closed form over six sums — the whole
decision is O(1) with zero list copies.  Victim selection keeps a lazy
min-heap of ``(penalty, neighbor_id)`` over memoized eviction
penalties: mutated lines are marked dirty, re-scored in O(1) at the
next decision, and stale heap entries are discarded on pop.  Ties break
toward the smaller neighbor id, exactly as the old full scan did.

The batch procedure hit *exact* floating-point ties (identical
shift/augment residual sums, zero penalties on collinear lines) that
its strict comparisons resolved deterministically; whenever the
closed-form scores land within :data:`~repro.models.cache._NEAR_TIE_RTOL`
of such a tie, the candidates are re-scored batch-style
(:meth:`ModelAwareCache._exact_benefits`) so every decision — and hence
every simulation trajectory — is bit-identical to the batch
implementation's.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from repro.models.cache import CacheLine, PairsView, _NEAR_TIE_RTOL
from repro.models.policy import Action, CachePolicy
from repro.models.regression import (
    LinearModel,
    RegressionStats,
    batch_fit_coefficients,
    fit_coefficients,
    model_sse,
)
from repro.models.soa import ModelAwareCacheFleet, NeighborBlock

__all__ = ["ModelAwareCache", "CacheLineView", "FleetLineView"]


class CacheLineView:
    """Read-only :class:`CacheLine` facade over a :class:`NeighborBlock` row.

    Resolves its row by neighbor id at every access, so the view stays
    valid across evictions that move or free rows; it exposes the exact
    read surface consumers of ``policy.line(j)`` use — ``len``,
    iteration, ``pairs``, ``oldest``, ``stats``, the fitted model,
    benefit and eviction penalty — all answered from the block's
    columns and memos.
    """

    __slots__ = ("_block", "neighbor_id")

    def __init__(self, block: NeighborBlock, neighbor_id: int) -> None:
        self._block = block
        self.neighbor_id = neighbor_id

    def _row(self) -> Optional[int]:
        return self._block.row_of(self.neighbor_id)

    def __len__(self) -> int:
        r = self._row()
        return 0 if r is None else self._block.pair_count(r)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        r = self._row()
        return iter(()) if r is None else iter(self._block.pairs(r))

    @property
    def pairs(self) -> PairsView:
        """The stored pairs, oldest first (a lazy, read-only view)."""
        r = self._row()
        return PairsView(() if r is None else self._block.pairs(r))

    @property
    def oldest(self) -> tuple[float, float]:
        r = self._row()
        if r is None:
            raise IndexError(f"cache line for neighbor {self.neighbor_id} is empty")
        return self._block.pairs(r)[0]

    @property
    def stats(self) -> RegressionStats:
        """A fresh :class:`RegressionStats` snapshot of the row's sums."""
        r = self._row()
        if r is None:
            return RegressionStats()
        return RegressionStats(*self._block.sums(r))

    @property
    def evictions_since_sync(self) -> int:
        r = self._row()
        return 0 if r is None else self._block.evictions_since_sync(r)

    def model_coefficients(self) -> tuple[float, float]:
        r = self._row()
        if r is None:
            raise ValueError("cannot fit a model to an empty cache line")
        return self._block.fit(r)

    def model(self) -> LinearModel:
        return LinearModel(*self.model_coefficients())

    def benefit(self) -> float:
        r = self._row()
        return 0.0 if r is None else self._block.benefit(r)

    def eviction_penalty(self) -> float:
        r = self._row()
        return 0.0 if r is None else self._block.penalty(r)

    def __repr__(self) -> str:
        return f"CacheLineView(neighbor={self.neighbor_id}, pairs={len(self)})"


class FleetLineView:
    """Read-only line facade over one lane of a :class:`ModelAwareCacheFleet`.

    The fleet-backed twin of :class:`CacheLineView`: resolves its row by
    ``(lane, neighbor_id)`` on every access and answers the same read
    surface from the fleet's columns and memos.  Memo reads
    (fit/benefit/penalty) refresh the fleet's memo columns exactly as
    the per-node engine's lazy accessors do — memoized values are pure
    functions of the sums, so reads never perturb future decisions.
    """

    __slots__ = ("_fleet", "_lane", "neighbor_id")

    def __init__(self, fleet: ModelAwareCacheFleet, lane: int, neighbor_id: int) -> None:
        self._fleet = fleet
        self._lane = lane
        self.neighbor_id = neighbor_id

    def _row(self) -> Optional[int]:
        return self._fleet._row(self._lane, self.neighbor_id)

    def __len__(self) -> int:
        r = self._row()
        return 0 if r is None else int(self._fleet.n[r])

    def __iter__(self) -> Iterator[tuple[float, float]]:
        r = self._row()
        return iter(()) if r is None else iter(self._fleet._pairs(r))

    @property
    def pairs(self) -> PairsView:
        """The stored pairs, oldest first (a lazy, read-only view)."""
        r = self._row()
        return PairsView(() if r is None else self._fleet._pairs(r))

    @property
    def oldest(self) -> tuple[float, float]:
        r = self._row()
        if r is None:
            raise IndexError(f"cache line for neighbor {self.neighbor_id} is empty")
        return self._fleet._pairs(r)[0]

    @property
    def stats(self) -> RegressionStats:
        """A fresh :class:`RegressionStats` snapshot of the row's sums."""
        r = self._row()
        if r is None:
            return RegressionStats()
        f = self._fleet
        return RegressionStats(
            int(f.n[r]), float(f.sx[r]), float(f.sy[r]),
            float(f.sxx[r]), float(f.sxy[r]), float(f.syy[r]),
        )

    @property
    def evictions_since_sync(self) -> int:
        r = self._row()
        return 0 if r is None else int(self._fleet.esync[r])

    def model_coefficients(self) -> tuple[float, float]:
        r = self._row()
        if r is None:
            raise ValueError("cannot fit a model to an empty cache line")
        return self._fleet._current_fit(r)

    def model(self) -> LinearModel:
        return LinearModel(*self.model_coefficients())

    def benefit(self) -> float:
        r = self._row()
        return 0.0 if r is None else self._fleet._benefit_scalar(r)

    def eviction_penalty(self) -> float:
        r = self._row()
        return 0.0 if r is None else self._fleet._penalty_scalar(r)

    def __repr__(self) -> str:
        return (
            f"FleetLineView(lane={self._lane}, neighbor={self.neighbor_id}, "
            f"pairs={len(self)})"
        )


class ModelAwareCache(CachePolicy):
    """Benefit-driven cache admission and replacement (§4).

    Parameters
    ----------
    cache_bytes:
        Total budget (Figure 8 sweeps 200 B – 4 KB; 2,048 B default).
    vectorized:
        ``True`` (default) stores all lines in one struct-of-arrays
        :class:`~repro.models.soa.NeighborBlock` and answers the line
        API through :class:`CacheLineView` facades; ``False`` keeps the
        original per-line object graph.  The two backing stores are
        decision-for-decision bit-identical (pinned by the golden-trace
        and property suites) — the flag only trades representation.
    """

    def __init__(self, cache_bytes: int, vectorized: bool = True) -> None:
        super().__init__(cache_bytes)
        self.vectorized = bool(vectorized)
        self._block: Optional[NeighborBlock] = (
            NeighborBlock(cache_bytes) if self.vectorized else None
        )
        #: Fleet backing (see :meth:`bind_fleet`): when set, this cache
        #: is lane ``_lane`` of a shared :class:`ModelAwareCacheFleet`
        #: and ``_block`` is dropped.
        self._fleet: Optional[ModelAwareCacheFleet] = None
        self._lane = -1
        #: Memoized Penalty_Evict per line; absent while a line is dirty.
        self._penalties: dict[int, float] = {}
        #: Lazy min-heap of (penalty, neighbor_id); entries whose penalty
        #: no longer matches the memo are stale and dropped on pop.
        self._victim_heap: list[tuple[float, int]] = []
        #: Lines mutated since their penalty was last scored.
        self._dirty: set[int] = set()
        self._rr_cursor = -1

    def bind_fleet(self, fleet: ModelAwareCacheFleet, lane: int) -> None:
        """Back this cache by lane ``lane`` of a shared fleet.

        Only an *empty* vectorized cache can be rebound (the fleet lane
        starts empty too, so no state migration is needed — binding
        happens at network construction time).  After binding, every
        read and write dispatches to the fleet's columns; the cache
        keeps its class and digest shape, so checkpoints and
        equivalence digests are indistinguishable from the per-node
        engine's.
        """
        if not self.vectorized:
            raise ValueError("only a vectorized ModelAwareCache can join a fleet")
        if self.total_pairs:
            raise ValueError("cannot rebind a non-empty cache to a fleet")
        if fleet.cache_bytes != self.cache_bytes:
            raise ValueError(
                f"fleet budget {fleet.cache_bytes} != cache budget {self.cache_bytes}"
            )
        self._fleet = fleet
        self._lane = int(lane)
        self._block = None

    def observe(self, neighbor_id: int, own_value: float, neighbor_value: float) -> str:
        """Offer a fresh pair for ``neighbor_id``; returns the action taken."""
        if self._fleet is not None:
            return self._fleet.observe(self._lane, neighbor_id, own_value, neighbor_value)
        if self._block is not None:
            return self._block.observe(neighbor_id, own_value, neighbor_value)

        new_pair = (float(own_value), float(neighbor_value))

        if self._total_pairs < self.capacity_pairs:
            line = self._line_or_new(neighbor_id)
            self._append_pair(line, *new_pair)
            self._mark_dirty(neighbor_id)
            self._check_capacity_invariant()
            return Action.APPEND

        line = self._lines.get(neighbor_id)
        if line is None or len(line) == 0:
            action = self._admit_newcomer(neighbor_id, new_pair)
            self._check_capacity_invariant()
            return action

        action = self._decide_full_cache(line, new_pair)
        self._check_capacity_invariant()
        return action

    def forget(self, neighbor_id: int) -> None:
        """Drop all history for ``neighbor_id`` (e.g. a departed node)."""
        if self._fleet is not None:
            self._fleet.forget(self._lane, neighbor_id)
            return
        if self._block is not None:
            self._block.forget(neighbor_id)
            return
        super().forget(neighbor_id)
        self._penalties.pop(neighbor_id, None)
        self._dirty.discard(neighbor_id)

    # -- block-backed read surface -------------------------------------------

    @property
    def total_pairs(self) -> int:
        """Pairs currently stored across all lines (O(1) running count)."""
        if self._fleet is not None:
            return int(self._fleet.total[self._lane])
        if self._block is not None:
            return self._block.total
        return self._total_pairs

    def known_neighbors(self) -> list[int]:
        """Neighbors with at least one stored pair, ascending id."""
        if self._fleet is not None:
            return self._fleet.known_neighbors(self._lane)
        if self._block is not None:
            return self._block.neighbor_ids()
        return super().known_neighbors()

    def line(self, neighbor_id: int) -> Optional[CacheLine | CacheLineView | FleetLineView]:
        """The cache line for ``neighbor_id``, or ``None``."""
        if self._fleet is not None:
            if self._fleet._row(self._lane, neighbor_id) is None:
                return None
            return FleetLineView(self._fleet, self._lane, neighbor_id)
        if self._block is not None:
            if self._block.row_of(neighbor_id) is None:
                return None
            return CacheLineView(self._block, neighbor_id)
        return super().line(neighbor_id)

    def digest_state(self) -> tuple:
        """Canonical state: the shared line state plus the newcomer cursor."""
        if self._fleet is not None:
            cursor = int(self._fleet.rr[self._lane])
        elif self._block is not None:
            cursor = self._block.rr_cursor
        else:
            cursor = self._rr_cursor
        return super().digest_state() + (cursor,)

    def _check_capacity_invariant(self) -> None:
        assert self.total_pairs <= self.capacity_pairs, (
            f"cache over budget: {self.total_pairs} > {self.capacity_pairs}"
        )

    # -- the §4 decision procedure ------------------------------------------

    def _decide_full_cache(self, line: CacheLine, new_pair: tuple[float, float]) -> str:
        neighbor_id = line.neighbor_id
        x, y = new_pair
        st = line.stats

        # c_aug = current stats + new pair; shifted = c_aug - oldest pair.
        # Two O(1) stat deltas (on local floats) replace the old list
        # copies and full refits.
        n_aug = st.n + 1
        sx_aug = st.sum_x + x
        sy_aug = st.sum_y + y
        sxx_aug = st.sum_xx + x * x
        sxy_aug = st.sum_xy + x * y
        syy_aug = st.sum_yy + y * y

        ox, oy = line.oldest
        n_shift = st.n
        sx_shift = sx_aug - ox
        sy_shift = sy_aug - oy
        sxx_shift = sxx_aug - ox * ox
        sxy_shift = sxy_aug - ox * oy

        baseline = (syy_aug if syy_aug > 0.0 else 0.0) / n_aug
        a_cur, b_cur = line.model_coefficients()
        a_shift, b_shift = fit_coefficients(
            n_shift, sx_shift, sy_shift, sxx_shift, sxy_shift
        )
        a_aug, b_aug = fit_coefficients(n_aug, sx_aug, sy_aug, sxx_aug, sxy_aug)

        benefit_current = baseline - (
            model_sse(n_aug, sx_aug, sy_aug, sxx_aug, sxy_aug, syy_aug, a_cur, b_cur)
            / n_aug
        )
        benefit_shift = baseline - (
            model_sse(n_aug, sx_aug, sy_aug, sxx_aug, sxy_aug, syy_aug, a_shift, b_shift)
            / n_aug
        )
        benefit_augment = baseline - (
            model_sse(n_aug, sx_aug, sy_aug, sxx_aug, sxy_aug, syy_aug, a_aug, b_aug)
            / n_aug
        )

        # Near-tie guard: if any two candidates are within the closed
        # form's rounding noise, re-score them exactly so the strict
        # comparisons below resolve the tie the same way batch did.
        near = _NEAR_TIE_RTOL * (baseline if baseline > 1.0 else 1.0)
        d_cs = benefit_current - benefit_shift
        d_ca = benefit_current - benefit_augment
        d_sa = benefit_shift - benefit_augment
        if (
            (-near < d_cs < near)
            or (-near < d_ca < near)
            or (-near < d_sa < near)
        ):
            benefit_current, benefit_shift, benefit_augment = self._exact_benefits(
                line, x, y
            )

        # Test 1: the existing model serves all known observations best.
        if benefit_current >= benefit_shift and benefit_current >= benefit_augment:
            return Action.REJECT

        # Test 2: replacing our own oldest observation is at least as good
        # as growing the line.
        if benefit_shift >= benefit_augment:
            self._apply_shift(line, new_pair)
            return Action.SHIFT

        # Growing the line reduces the error; look for the cheapest victim
        # elsewhere whose penalty is under our gain.
        gain_augment = benefit_augment - benefit_shift
        victim = self._cheapest_victim(exclude=neighbor_id, below=gain_augment)
        if victim is not None:
            self._evict_from(victim)
            self._append_pair(line, *new_pair)
            self._mark_dirty(neighbor_id)
            return Action.AUGMENT

        # No affordable victim: time-shifting is still better than
        # rejecting if its model beats the current one.
        if benefit_shift > benefit_current:
            self._apply_shift(line, new_pair)
            return Action.SHIFT
        return Action.REJECT

    def _exact_benefits(
        self, line: CacheLine, x: float, y: float
    ) -> tuple[float, float, float]:
        """Batch re-scoring of the three candidates, bit-for-bit.

        Reproduces the pre-incremental implementation exactly — sums
        accumulated in storage order, residuals summed term by term over
        ``c_aug`` — so an exact floating-point tie lands on the same side
        of the strict comparisons it always did.  O(line length); reached
        only when the closed-form benefits are within :data:`_NEAR_TIE_RTOL`.
        """
        # Fits from single-pass sums (same accumulation order as batch),
        # shared — via the line's memo — with _exact_penalty's first pass.
        n, sx, sy, sxx, sxy, sx_sh, sy_sh, sxx_sh, sxy_sh = line._exact_first_pass()
        a_cur, b_cur = batch_fit_coefficients(n, sx, sy, sxx, sxy)
        a_sh, b_sh = batch_fit_coefficients(n, sx_sh + x, sy_sh + y, sxx_sh + x * x, sxy_sh + x * y)
        n_aug = n + 1
        a_aug, b_aug = batch_fit_coefficients(n_aug, sx + x, sy + y, sxx + x * x, sxy + x * y)

        # Residual sums over c_aug, term by term as sse_of_model does.
        syy = 0.0
        sse_cur = sse_sh = sse_aug = 0.0
        for px, py in line:
            syy += py * py
            r = py - (a_cur * px + b_cur)
            sse_cur += r * r
            r = py - (a_sh * px + b_sh)
            sse_sh += r * r
            r = py - (a_aug * px + b_aug)
            sse_aug += r * r
        syy += y * y
        r = y - (a_cur * x + b_cur)
        sse_cur += r * r
        r = y - (a_sh * x + b_sh)
        sse_sh += r * r
        r = y - (a_aug * x + b_aug)
        sse_aug += r * r

        baseline = syy / n_aug
        return (
            baseline - sse_cur / n_aug,
            baseline - sse_sh / n_aug,
            baseline - sse_aug / n_aug,
        )

    def _apply_shift(self, line: CacheLine, new_pair: tuple[float, float]) -> None:
        # Evict + append on the same line: the total pair count is
        # unchanged, so the line is mutated directly.
        line.evict_oldest()
        line.append(*new_pair)
        self._mark_dirty(line.neighbor_id)

    # -- victim selection -----------------------------------------------------

    def _mark_dirty(self, neighbor_id: int) -> None:
        """Invalidate the memoized penalty after a line mutation."""
        self._penalties.pop(neighbor_id, None)
        self._dirty.add(neighbor_id)

    def _refresh_dirty(self) -> None:
        """Re-score every dirty line (O(1) each) and push fresh heap entries."""
        if self._dirty:
            # Sorted so heap layout is independent of set iteration order,
            # which changes across pickle round-trips (checkpoint/restore).
            for neighbor_id in sorted(self._dirty):
                line = self._lines.get(neighbor_id)
                if line is None or len(line) == 0:
                    continue
                penalty = line.eviction_penalty()
                self._penalties[neighbor_id] = penalty
                heapq.heappush(self._victim_heap, (penalty, neighbor_id))
            self._dirty.clear()
        # Deep stale entries never reach the top on their own; rebuild the
        # heap from the live memo once they dominate, keeping the heap
        # O(#lines) and the amortized cost O(1) per mutation.
        if len(self._victim_heap) > 16 + 4 * len(self._penalties):
            self._victim_heap = [(p, k) for k, p in self._penalties.items()]
            heapq.heapify(self._victim_heap)

    def _cheapest_victim(self, exclude: int, below: float) -> Optional[int]:
        """The line with the smallest penalty strictly under ``below``.

        Ties break toward the smaller neighbor id for determinism —
        guaranteed by the ``(penalty, neighbor_id)`` heap order.
        """
        self._refresh_dirty()
        heap = self._victim_heap
        excluded_entries: list[tuple[float, int]] = []
        victim: Optional[int] = None
        while heap:
            penalty, neighbor_id = heap[0]
            if self._penalties.get(neighbor_id) != penalty:
                heapq.heappop(heap)  # stale: line mutated or forgotten
                continue
            if neighbor_id == exclude:
                excluded_entries.append(heapq.heappop(heap))
                continue
            if penalty < below:
                victim = neighbor_id
            break
        for entry in excluded_entries:
            heapq.heappush(heap, entry)
        return victim

    def _evict_from(self, neighbor_id: int) -> None:
        self._evict_oldest_of(neighbor_id)
        self._mark_dirty(neighbor_id)

    # -- newcomer handling ------------------------------------------------------

    def _admit_newcomer(self, neighbor_id: int, new_pair: tuple[float, float]) -> str:
        """First observation for a neighbor with the cache full.

        The gain formula would value the newcomer at ``x_j²`` — enough
        to destroy good models of small-amplitude measurements — so the
        victim is instead chosen round-robin among all existing lines
        (§4's "for newcomers we pick the victim in a round-robin
        fashion").
        """
        victim = self._next_round_robin_victim(exclude=neighbor_id)
        if victim is None:
            # Degenerate budget: nothing to evict (no other line holds a
            # pair).  Reject; the invariant wins over admission.
            return Action.REJECT
        self._evict_from(victim)
        line = self._line_or_new(neighbor_id)
        self._append_pair(line, *new_pair)
        self._mark_dirty(neighbor_id)
        return Action.NEWCOMER

    def _next_round_robin_victim(self, exclude: int) -> Optional[int]:
        candidates = sorted(
            k for k, line in self._lines.items() if k != exclude and len(line) > 0
        )
        if not candidates:
            return None
        for k in candidates:
            if k > self._rr_cursor:
                self._rr_cursor = k
                return k
        # wrap around
        self._rr_cursor = candidates[0]
        return candidates[0]
