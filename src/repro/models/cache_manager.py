"""The model-aware cache manager (§4 of the paper).

When a new synchronized observation ``(x_i(t), x_j(t))`` arrives and
the cache is full, the manager weighs three actions for ``N_j``'s line
``c``:

* **reject** — keep the cache as is;
* **time-shift** — drop ``c``'s oldest pair and append the new one;
* **augment** — append the new pair to ``c`` and evict the oldest pair
  of some *other* line.

All three are scored by the *benefit* their resulting model provides
over the no-answer policy, where — crucially — every candidate model is
evaluated over ``c_aug`` (all known observations of ``x_j``, including
the new one):

    benefit(c_aug, a, b) = no_answer_sse(c_aug) - sse(c_aug, a, b)

The decision procedure, in the paper's order:

1. if ``benefit(c_aug, a*(c), b*(c))`` dominates both the shift and the
   augment models, the current model is already the most accurate on
   everything we know → **reject**;
2. else if the shift model dominates the augment model → **time-shift**;
3. else augmenting is best; find the other line with the smallest
   eviction penalty ``Penalty_Evict_k < Gain_Augment_j`` and evict its
   oldest pair → **augment**;
4. if no such victim exists, **time-shift** if the shift model still
   beats the current one, otherwise **reject**.

*Newcomers* (first observation for a neighbor) bypass the benefit test:
their gain would be ``x_j(t)²``, which can evict a good small-amplitude
model; instead the victim is chosen round-robin among all lines.

Eviction penalties are memoized per line and invalidated only when the
line changes, keeping each observation linear in the affected line's
length (the speed-up §4 describes).
"""

from __future__ import annotations

from typing import Optional

from repro.models.cache import CacheLine
from repro.models.policy import Action, CachePolicy
from repro.models.regression import fit_line, mean_sse_of_model, no_answer_sse

__all__ = ["ModelAwareCache"]


class ModelAwareCache(CachePolicy):
    """Benefit-driven cache admission and replacement (§4)."""

    def __init__(self, cache_bytes: int) -> None:
        super().__init__(cache_bytes)
        self._penalties: dict[int, float] = {}
        self._rr_cursor = -1

    def observe(self, neighbor_id: int, own_value: float, neighbor_value: float) -> str:
        """Offer a fresh pair for ``neighbor_id``; returns the action taken."""
        new_pair = (float(own_value), float(neighbor_value))

        if not self.is_full:
            line = self._line_or_new(neighbor_id)
            line.append(*new_pair)
            self._penalties.pop(neighbor_id, None)
            self._check_capacity_invariant()
            return Action.APPEND

        line = self._lines.get(neighbor_id)
        if line is None or len(line) == 0:
            action = self._admit_newcomer(neighbor_id, new_pair)
            self._check_capacity_invariant()
            return action

        action = self._decide_full_cache(line, new_pair)
        self._check_capacity_invariant()
        return action

    # -- the §4 decision procedure ------------------------------------------

    def _decide_full_cache(self, line: CacheLine, new_pair: tuple[float, float]) -> str:
        neighbor_id = line.neighbor_id
        current_pairs = line.pairs
        augmented = current_pairs + [new_pair]
        shifted = current_pairs[1:] + [new_pair]

        baseline = no_answer_sse(augmented)
        model_current = line.model()
        model_shift = fit_line(shifted)
        model_augment = fit_line(augmented)

        benefit_current = baseline - mean_sse_of_model(augmented, model_current)
        benefit_shift = baseline - mean_sse_of_model(augmented, model_shift)
        benefit_augment = baseline - mean_sse_of_model(augmented, model_augment)

        # Test 1: the existing model serves all known observations best.
        if benefit_current >= benefit_shift and benefit_current >= benefit_augment:
            return Action.REJECT

        # Test 2: replacing our own oldest observation is at least as good
        # as growing the line.
        if benefit_shift >= benefit_augment:
            self._apply_shift(line, new_pair)
            return Action.SHIFT

        # Growing the line reduces the error; look for the cheapest victim
        # elsewhere whose penalty is under our gain.
        gain_augment = benefit_augment - benefit_shift
        victim = self._cheapest_victim(exclude=neighbor_id, below=gain_augment)
        if victim is not None:
            self._evict_from(victim)
            line.append(*new_pair)
            self._penalties.pop(neighbor_id, None)
            return Action.AUGMENT

        # No affordable victim: time-shifting is still better than
        # rejecting if its model beats the current one.
        if benefit_shift > benefit_current:
            self._apply_shift(line, new_pair)
            return Action.SHIFT
        return Action.REJECT

    def _apply_shift(self, line: CacheLine, new_pair: tuple[float, float]) -> None:
        line.evict_oldest()
        line.append(*new_pair)
        self._penalties.pop(line.neighbor_id, None)

    # -- victim selection -----------------------------------------------------

    def _eviction_penalty(self, neighbor_id: int) -> float:
        """Memoized ``Penalty_Evict`` for ``neighbor_id``'s line."""
        if neighbor_id not in self._penalties:
            self._penalties[neighbor_id] = self._lines[neighbor_id].eviction_penalty()
        return self._penalties[neighbor_id]

    def _cheapest_victim(self, exclude: int, below: float) -> Optional[int]:
        """The line with the smallest penalty strictly under ``below``.

        Ties break toward the smaller neighbor id for determinism.
        """
        best_id: Optional[int] = None
        best_penalty = below
        for k in sorted(self._lines):
            if k == exclude or len(self._lines[k]) == 0:
                continue
            penalty = self._eviction_penalty(k)
            if penalty < best_penalty:
                best_penalty = penalty
                best_id = k
        return best_id

    def _evict_from(self, neighbor_id: int) -> None:
        self._evict_oldest_of(neighbor_id)
        self._penalties.pop(neighbor_id, None)

    # -- newcomer handling ------------------------------------------------------

    def _admit_newcomer(self, neighbor_id: int, new_pair: tuple[float, float]) -> str:
        """First observation for a neighbor with the cache full.

        The gain formula would value the newcomer at ``x_j²`` — enough
        to destroy good models of small-amplitude measurements — so the
        victim is instead chosen round-robin among all existing lines
        (§4's "for newcomers we pick the victim in a round-robin
        fashion").
        """
        victim = self._next_round_robin_victim(exclude=neighbor_id)
        if victim is None:
            # Degenerate budget: nothing to evict (no other line holds a
            # pair).  Reject; the invariant wins over admission.
            return Action.REJECT
        self._evict_from(victim)
        line = self._line_or_new(neighbor_id)
        line.append(*new_pair)
        self._penalties.pop(neighbor_id, None)
        return Action.NEWCOMER

    def _next_round_robin_victim(self, exclude: int) -> Optional[int]:
        candidates = sorted(
            k for k, line in self._lines.items() if k != exclude and len(line) > 0
        )
        if not candidates:
            return None
        for k in candidates:
            if k > self._rr_cursor:
                self._rr_cursor = k
                return k
        # wrap around
        self._rr_cursor = candidates[0]
        return candidates[0]
