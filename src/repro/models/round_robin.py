"""The round-robin / FIFO baseline cache (Figure 8's comparator).

The paper notes that for the write-mostly access pattern of model
building — a stream of observations ending in a single "read" at
discovery time — round-robin, FIFO and LRU coincide.  This baseline
admits every observation and, when full, evicts the globally oldest
stored pair, implemented exactly by keeping the insertion order of
pairs across lines.
"""

from __future__ import annotations

from collections import deque

from repro.models.policy import Action, CachePolicy

__all__ = ["RoundRobinCache"]


class RoundRobinCache(CachePolicy):
    """Admit always; evict the globally oldest pair when full."""

    def __init__(self, cache_bytes: int) -> None:
        super().__init__(cache_bytes)
        # Per-pair insertion order: the neighbor id whose line received
        # each stored pair, oldest first.  Evicting the front id's
        # oldest pair is exact global FIFO.
        self._insertion_order: deque[int] = deque()

    def observe(self, neighbor_id: int, own_value: float, neighbor_value: float) -> str:
        """Store the pair, evicting the globally oldest one if needed."""
        evicted = False
        if self.is_full:
            victim = self._insertion_order.popleft()
            self._evict_oldest_of(victim)
            evicted = True
        line = self._line_or_new(neighbor_id)
        self._append_pair(line, float(own_value), float(neighbor_value))
        self._insertion_order.append(neighbor_id)
        self._check_capacity_invariant()
        return Action.SHIFT if evicted else Action.APPEND

    def forget(self, neighbor_id: int) -> None:
        """Drop all history for ``neighbor_id`` and purge its order entries."""
        super().forget(neighbor_id)
        self._insertion_order = deque(
            j for j in self._insertion_order if j != neighbor_id
        )

    def digest_state(self) -> tuple:
        """Canonical state: the shared line state plus the global FIFO order."""
        return super().digest_state() + (tuple(self._insertion_order),)
