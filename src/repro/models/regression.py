"""Least-squares line fitting (Lemma 1 of the paper).

A node models its neighbor's measurement as a linear projection of its
own: ``x̂_j(t) = a_ij * x_i(t) + b_ij``.  Given ``n`` cached pairs
``(x_i(t_k), x_j(t_k))`` the sse-optimal parameters are the classic
least-squares regression line:

    a* = (n * Σ x y - Σ x * Σ y) / (n * Σ x² - (Σ x)²)
    b* = (Σ y - a* Σ x) / n

with the degenerate case — constant ``x_i`` (which subsumes ``n = 1``)
— handled as ``a* = 0``, ``b* = mean(x_j)`` exactly as the paper
specifies.

The batch helpers operate on plain pair sequences in a single pass.
:class:`RegressionStats` is the incremental counterpart: the sufficient
statistics ``(n, Σx, Σy, Σx², Σxy, Σy²)`` updated in O(1) per
``add``/``remove``, from which the fit and the sse of *any* model
follow in closed form:

    Σ (y - a x - b)² = Σy² - 2aΣxy - 2bΣy + a²Σx² + 2abΣx + nb²

This is what makes the cache manager's per-observation decision O(1)
instead of O(line length).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "LinearModel",
    "RegressionStats",
    "batch_fit_coefficients",
    "fit_coefficients",
    "fit_line",
    "model_sse",
    "sse_of_model",
    "mean_sse_of_model",
    "no_answer_sse",
]

#: Relative tolerance for declaring the regression denominator degenerate.
_DEGENERATE_RTOL = 1e-12


@dataclass(frozen=True)
class LinearModel:
    """The fitted projection ``x̂_j = slope * x_i + intercept``."""

    slope: float
    intercept: float

    def predict(self, x: float) -> float:
        """Estimate the neighbor's value from our own measurement ``x``."""
        return self.slope * x + self.intercept

    def __iter__(self):
        """Unpacking support: ``a, b = model``."""
        yield self.slope
        yield self.intercept


def fit_coefficients(
    n: int, sum_x: float, sum_y: float, sum_xx: float, sum_xy: float
) -> tuple[float, float]:
    """The Lemma 1 ``(slope, intercept)`` from raw sums.

    The allocation-free kernel behind :meth:`RegressionStats.fit` and
    :func:`fit_line`; the cache manager's hot path calls it directly on
    locally-adjusted sums to avoid constructing intermediate objects.
    ``n`` must be positive.
    """
    nsxx = n * sum_xx
    sxsx = sum_x * sum_x
    denominator = nsxx - sxsx
    # Constant x (includes n == 1): slope 0, intercept = mean of x_j.
    # The scale is max(1.0, n·Σx², (Σx)²), spelled out to stay call-free.
    # Cauchy–Schwarz makes the true denominator non-negative, so a
    # non-positive value is pure rounding — degenerate as well (the
    # condition below subsumes it, since the threshold is positive).
    scale = nsxx if nsxx > sxsx else sxsx
    if scale < 1.0:
        scale = 1.0
    if denominator <= _DEGENERATE_RTOL * scale:
        return 0.0, sum_y / n
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    return slope, (sum_y - slope * sum_x) / n


def batch_fit_coefficients(
    n: int, sum_x: float, sum_y: float, sum_xx: float, sum_xy: float
) -> tuple[float, float]:
    """The Lemma 1 fit with the *original batch* degeneracy rule.

    Kept operation-for-operation identical to the pre-incremental
    ``fit_line`` (``abs``/``max`` spelled as before, large negative
    denominators fitted rather than flagged degenerate) so the exact
    tie-resolution fallbacks in the cache layer reproduce the batch
    coefficients bit-for-bit.
    """
    denominator = n * sum_xx - sum_x * sum_x
    if abs(denominator) <= _DEGENERATE_RTOL * max(1.0, n * sum_xx, sum_x * sum_x):
        return 0.0, sum_y / n
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    return slope, (sum_y - slope * sum_x) / n


def model_sse(
    n: int,
    sum_x: float,
    sum_y: float,
    sum_xx: float,
    sum_xy: float,
    sum_yy: float,
    slope: float,
    intercept: float,
) -> float:
    """Total squared error of ``(slope, intercept)`` from raw sums.

        Σ (y - a x - b)² = C_yy - 2a·C_xy + a²·C_xx + n·r̄²

    where ``C_**`` are the *centered* second moments and
    ``r̄ = ȳ - a·x̄ - b`` is the mean residual.  Mathematically this
    equals the raw-sum expansion ``Σy² - 2aΣxy - ... + nb²``, but the
    centered form cancels at the scale of the residuals instead of the
    scale of ``a²Σx²`` — for a near-exact fit the raw expansion's error
    is ~eps·a²Σx², which is what used to leak out as a spuriously
    positive sse on two-point lines.  Clamped at zero: even the
    centered form can dip a few ulps negative.
    """
    if n <= 0:
        return 0.0
    mean_x = sum_x / n
    mean_y = sum_y / n
    c_xx = sum_xx - sum_x * mean_x
    c_xy = sum_xy - sum_x * mean_y
    c_yy = sum_yy - sum_y * mean_y
    mean_residual = mean_y - slope * mean_x - intercept
    total = (
        c_yy
        - 2.0 * slope * c_xy
        + slope * slope * c_xx
        + n * mean_residual * mean_residual
    )
    return total if total > 0.0 else 0.0


class RegressionStats:
    """Sufficient statistics of a pair multiset, updatable in O(1).

    Carries ``(n, Σx, Σy, Σx², Σxy, Σy²)``; everything the cache
    manager needs — the Lemma 1 fit, the sse of an arbitrary model, the
    no-answer sse — is a closed form over these six numbers, so a cache
    line can score admission candidates without touching its pairs.

    ``remove`` subtracts a previously-added pair; repeated removals
    accumulate floating-point drift, which callers bound by periodically
    rebuilding via :meth:`from_pairs` (see ``CacheLine``).
    """

    __slots__ = ("n", "sum_x", "sum_y", "sum_xx", "sum_xy", "sum_yy")

    def __init__(
        self,
        n: int = 0,
        sum_x: float = 0.0,
        sum_y: float = 0.0,
        sum_xx: float = 0.0,
        sum_xy: float = 0.0,
        sum_yy: float = 0.0,
    ) -> None:
        self.n = n
        self.sum_x = sum_x
        self.sum_y = sum_y
        self.sum_xx = sum_xx
        self.sum_xy = sum_xy
        self.sum_yy = sum_yy

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[float, float]]) -> "RegressionStats":
        """Exact statistics of ``pairs``, summed in iteration order."""
        stats = cls()
        for x, y in pairs:
            stats.add(x, y)
        return stats

    def add(self, x: float, y: float) -> None:
        """Fold one observation in."""
        self.n += 1
        self.sum_x += x
        self.sum_y += y
        self.sum_xx += x * x
        self.sum_xy += x * y
        self.sum_yy += y * y

    def remove(self, x: float, y: float) -> None:
        """Subtract a previously-added observation.

        Raises
        ------
        ValueError
            If the statistics are already empty.
        """
        if self.n == 0:
            raise ValueError("cannot remove a pair from empty statistics")
        self.n -= 1
        if self.n == 0:
            # Snap to exact zero: nothing is left, so no drift survives.
            self.sum_x = self.sum_y = 0.0
            self.sum_xx = self.sum_xy = self.sum_yy = 0.0
            return
        self.sum_x -= x
        self.sum_y -= y
        self.sum_xx -= x * x
        self.sum_xy -= x * y
        self.sum_yy -= y * y

    def copy(self) -> "RegressionStats":
        """An independent copy (six floats; O(1))."""
        return RegressionStats(
            self.n, self.sum_x, self.sum_y, self.sum_xx, self.sum_xy, self.sum_yy
        )

    def with_pair(self, x: float, y: float) -> "RegressionStats":
        """A copy with ``(x, y)`` added — the hypothetical augmented line."""
        stats = self.copy()
        stats.add(x, y)
        return stats

    def without_pair(self, x: float, y: float) -> "RegressionStats":
        """A copy with ``(x, y)`` subtracted — a hypothetical eviction."""
        stats = self.copy()
        stats.remove(x, y)
        return stats

    def fit(self) -> LinearModel:
        """The sse-optimal line for these statistics (Lemma 1).

        Uses the same degenerate-denominator rule as :func:`fit_line`.

        Raises
        ------
        ValueError
            If the statistics are empty.
        """
        if self.n == 0:
            raise ValueError("cannot fit a model to an empty cache line")
        slope, intercept = fit_coefficients(
            self.n, self.sum_x, self.sum_y, self.sum_xx, self.sum_xy
        )
        return LinearModel(slope=slope, intercept=intercept)

    def sse(self, model: LinearModel) -> float:
        """Total squared error of ``model``, in closed form (clamped at 0)."""
        return model_sse(
            self.n,
            self.sum_x,
            self.sum_y,
            self.sum_xx,
            self.sum_xy,
            self.sum_yy,
            model.slope,
            model.intercept,
        )

    def mean_sse(self, model: LinearModel) -> float:
        """Average squared error of ``model`` (§4's ``sse(c, a, b)``).

        Raises
        ------
        ValueError
            If the statistics are empty.
        """
        if self.n == 0:
            raise ValueError("average sse over an empty cache line is undefined")
        return self.sse(model) / self.n

    def no_answer_sse(self) -> float:
        """Average squared error of refusing to answer: ``Σy² / n``.

        Raises
        ------
        ValueError
            If the statistics are empty.
        """
        if self.n == 0:
            raise ValueError("no-answer sse over an empty cache line is undefined")
        return max(self.sum_yy, 0.0) / self.n

    def __repr__(self) -> str:
        return (
            f"RegressionStats(n={self.n}, sum_x={self.sum_x}, sum_y={self.sum_y}, "
            f"sum_xx={self.sum_xx}, sum_xy={self.sum_xy}, sum_yy={self.sum_yy})"
        )


def fit_line(pairs: Sequence[tuple[float, float]]) -> LinearModel:
    """Fit the sse-optimal line through ``pairs`` (Lemma 1).

    Delegates to :meth:`RegressionStats.fit` so the batch and
    incremental paths share one closed form (and one degeneracy rule).

    Parameters
    ----------
    pairs:
        Non-empty sequence of ``(x_i, x_j)`` observations.

    Raises
    ------
    ValueError
        If ``pairs`` is empty — an empty cache line has no model.
    """
    if len(pairs) == 0:
        raise ValueError("cannot fit a model to an empty cache line")
    return RegressionStats.from_pairs(pairs).fit()


def sse_of_model(
    pairs: Iterable[tuple[float, float]], model: LinearModel
) -> float:
    """Total squared error of ``model`` over ``pairs``."""
    total = 0.0
    for x, y in pairs:
        residual = y - model.predict(x)
        total += residual * residual
    return total


def mean_sse_of_model(
    pairs: Sequence[tuple[float, float]], model: LinearModel
) -> float:
    """Average squared error of ``model`` over ``pairs`` (§4's ``sse(c,a,b)``).

    Raises
    ------
    ValueError
        If ``pairs`` is empty.
    """
    n = len(pairs)
    if n == 0:
        raise ValueError("average sse over an empty cache line is undefined")
    return sse_of_model(pairs, model) / n


def no_answer_sse(pairs: Sequence[tuple[float, float]]) -> float:
    """Average squared error of refusing to answer (§4's ``no_answer_sse``).

    If no model were available the node could not estimate ``x_j`` at
    all; the paper charges ``x_j²`` per observation for that — i.e. the
    implicit estimate is zero.
    """
    n = len(pairs)
    if n == 0:
        raise ValueError("no-answer sse over an empty cache line is undefined")
    return sum(y * y for _, y in pairs) / n
