"""Least-squares line fitting (Lemma 1 of the paper).

A node models its neighbor's measurement as a linear projection of its
own: ``x̂_j(t) = a_ij * x_i(t) + b_ij``.  Given ``n`` cached pairs
``(x_i(t_k), x_j(t_k))`` the sse-optimal parameters are the classic
least-squares regression line:

    a* = (n * Σ x y - Σ x * Σ y) / (n * Σ x² - (Σ x)²)
    b* = (Σ y - a* Σ x) / n

with the degenerate case — constant ``x_i`` (which subsumes ``n = 1``)
— handled as ``a* = 0``, ``b* = mean(x_j)`` exactly as the paper
specifies.

Everything operates on plain pair sequences; the functions are the
computational kernel of the cache manager's benefit bookkeeping, so
they are written to run in a single pass (linear time, as §4 requires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["LinearModel", "fit_line", "sse_of_model", "mean_sse_of_model", "no_answer_sse"]

#: Relative tolerance for declaring the regression denominator degenerate.
_DEGENERATE_RTOL = 1e-12


@dataclass(frozen=True)
class LinearModel:
    """The fitted projection ``x̂_j = slope * x_i + intercept``."""

    slope: float
    intercept: float

    def predict(self, x: float) -> float:
        """Estimate the neighbor's value from our own measurement ``x``."""
        return self.slope * x + self.intercept

    def __iter__(self):
        """Unpacking support: ``a, b = model``."""
        yield self.slope
        yield self.intercept


def fit_line(pairs: Sequence[tuple[float, float]]) -> LinearModel:
    """Fit the sse-optimal line through ``pairs`` (Lemma 1).

    Parameters
    ----------
    pairs:
        Non-empty sequence of ``(x_i, x_j)`` observations.

    Raises
    ------
    ValueError
        If ``pairs`` is empty — an empty cache line has no model.
    """
    n = len(pairs)
    if n == 0:
        raise ValueError("cannot fit a model to an empty cache line")
    sum_x = sum_y = sum_xx = sum_xy = 0.0
    for x, y in pairs:
        sum_x += x
        sum_y += y
        sum_xx += x * x
        sum_xy += x * y
    denominator = n * sum_xx - sum_x * sum_x
    # Constant x (includes n == 1): slope 0, intercept = mean of x_j.
    if abs(denominator) <= _DEGENERATE_RTOL * max(1.0, n * sum_xx, sum_x * sum_x):
        return LinearModel(slope=0.0, intercept=sum_y / n)
    slope = (n * sum_xy - sum_x * sum_y) / denominator
    intercept = (sum_y - slope * sum_x) / n
    return LinearModel(slope=slope, intercept=intercept)


def sse_of_model(
    pairs: Iterable[tuple[float, float]], model: LinearModel
) -> float:
    """Total squared error of ``model`` over ``pairs``."""
    total = 0.0
    for x, y in pairs:
        residual = y - model.predict(x)
        total += residual * residual
    return total


def mean_sse_of_model(
    pairs: Sequence[tuple[float, float]], model: LinearModel
) -> float:
    """Average squared error of ``model`` over ``pairs`` (§4's ``sse(c,a,b)``).

    Raises
    ------
    ValueError
        If ``pairs`` is empty.
    """
    n = len(pairs)
    if n == 0:
        raise ValueError("average sse over an empty cache line is undefined")
    return sse_of_model(pairs, model) / n


def no_answer_sse(pairs: Sequence[tuple[float, float]]) -> float:
    """Average squared error of refusing to answer (§4's ``no_answer_sse``).

    If no model were available the node could not estimate ``x_j`` at
    all; the paper charges ``x_j²`` per observation for that — i.e. the
    implicit estimate is zero.
    """
    n = len(pairs)
    if n == 0:
        raise ValueError("no-answer sse over an empty cache line is undefined")
    return sum(y * y for _, y in pairs) / n
