"""Common interface of cache-management policies.

Two policies implement it: the paper's model-aware manager
(:class:`~repro.models.cache_manager.ModelAwareCache`) and the
round-robin/FIFO baseline it is compared against in Figure 8
(:class:`~repro.models.round_robin.RoundRobinCache`).

A policy owns the whole per-node cache — all cache lines — under a
fixed byte budget, and exposes:

* ``observe(j, x_i, x_j)`` — offer a fresh synchronized observation;
  the policy decides admission/eviction and reports the action taken;
* ``model(j)`` / ``estimate(j, x_i)`` — the current model for neighbor
  ``j`` and the estimate ``x̂_j`` it yields.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.models.cache import CacheLine, pairs_for_budget
from repro.models.regression import LinearModel

__all__ = ["CachePolicy", "Action"]


class Action:
    """Outcomes of :meth:`CachePolicy.observe` (for tests and traces)."""

    APPEND = "append"       #: cache not full; stored directly
    SHIFT = "shift"         #: replaced the line's own oldest pair
    AUGMENT = "augment"     #: grew the line, evicting from another line
    REJECT = "reject"       #: new observation discarded
    NEWCOMER = "newcomer"   #: first pair for this neighbor; round-robin victim

    ALL = (APPEND, SHIFT, AUGMENT, REJECT, NEWCOMER)


class CachePolicy(abc.ABC):
    """A byte-budgeted collection of per-neighbor cache lines.

    Parameters
    ----------
    cache_bytes:
        Total budget; the paper sweeps 200 bytes – 4 KB (Figure 8) and
        defaults to 2,048 bytes elsewhere.
    """

    def __init__(self, cache_bytes: int) -> None:
        self.cache_bytes = int(cache_bytes)
        self.capacity_pairs = pairs_for_budget(self.cache_bytes)
        self._lines: dict[int, CacheLine] = {}
        self._total_pairs = 0

    # -- shared read side ----------------------------------------------------

    @property
    def total_pairs(self) -> int:
        """Pairs currently stored across all lines (O(1) running count).

        Maintained by the shared mutation helpers (``_append_pair``,
        ``_evict_oldest_of``, ``forget``); subclasses must mutate lines
        through them so ``is_full`` stays a constant-time check on the
        observe hot path.
        """
        return self._total_pairs

    @property
    def is_full(self) -> bool:
        """Whether the budget is exhausted."""
        return self.total_pairs >= self.capacity_pairs

    def known_neighbors(self) -> list[int]:
        """Neighbors with at least one stored pair, ascending id."""
        return sorted(j for j, line in self._lines.items() if len(line) > 0)

    def line(self, neighbor_id: int) -> Optional[CacheLine]:
        """The cache line for ``neighbor_id``, or ``None``."""
        return self._lines.get(neighbor_id)

    def model(self, neighbor_id: int) -> Optional[LinearModel]:
        """Current model for ``neighbor_id``, or ``None`` if no history."""
        line = self.line(neighbor_id)
        if line is None or len(line) == 0:
            return None
        return line.model()

    def estimate(self, neighbor_id: int, own_value: float) -> Optional[float]:
        """Estimate ``x̂_j`` from our measurement, or ``None`` if unmodeled."""
        model = self.model(neighbor_id)
        if model is None:
            return None
        return model.predict(own_value)

    def forget(self, neighbor_id: int) -> None:
        """Drop all history for ``neighbor_id`` (e.g. a departed node)."""
        line = self._lines.pop(neighbor_id, None)
        if line is not None:
            self._total_pairs -= len(line)

    def digest_state(self) -> tuple:
        """The policy's canonical state for digests and equivalence tests.

        Covers exactly what determines future decisions: the budget,
        the stored pairs and the live sufficient sums (including any
        subtraction drift — two caches only behave identically if their
        *sums* match bit-for-bit, not just their pairs) plus each
        line's resync countdown.  Derived memo caches (fit / benefit /
        penalty values and their bookkeeping) are deliberately omitted:
        they are pure functions of this state, so backing-store
        representations that memoize differently digest equal when —
        and only when — they will behave identically.

        Subclasses with extra decision state (round-robin cursors,
        insertion orders) must append it via their override.
        """
        lines = {}
        for j in self.known_neighbors():
            line = self.line(j)
            st = line.stats
            lines[j] = (
                j,
                tuple(line.pairs),
                (st.n, st.sum_x, st.sum_y, st.sum_xx, st.sum_xy, st.sum_yy),
                line.evictions_since_sync,
            )
        return (
            type(self).__qualname__,
            self.cache_bytes,
            self.total_pairs,
            lines,
        )

    # -- write side ------------------------------------------------------------

    @abc.abstractmethod
    def observe(self, neighbor_id: int, own_value: float, neighbor_value: float) -> str:
        """Offer a synchronized observation; returns the :class:`Action` taken."""

    def observe_batch(self, neighbor_ids, own_values, neighbor_values) -> list[str]:
        """Offer one synchronized observation per neighbor; actions in order.

        The base implementation is a plain :meth:`observe` loop —
        observations within one cache are order-dependent (§4's augment
        moves pairs across lines), so a single cache cannot fan them
        out.  Cross-cache batching is where vectorization pays; see
        :class:`~repro.models.soa.ModelAwareCacheFleet`.
        """
        return [
            self.observe(j, x, y)
            for j, x, y in zip(neighbor_ids, own_values, neighbor_values)
        ]

    # -- internal helpers ------------------------------------------------------

    def _line_or_new(self, neighbor_id: int) -> CacheLine:
        line = self._lines.get(neighbor_id)
        if line is None:
            line = CacheLine(neighbor_id)
            self._lines[neighbor_id] = line
        return line

    def _append_pair(self, line: CacheLine, own_value: float, neighbor_value: float) -> None:
        """Append to ``line`` while keeping the running pair count exact."""
        line.append(own_value, neighbor_value)
        self._total_pairs += 1

    def _evict_oldest_of(self, neighbor_id: int) -> None:
        """Evict the oldest pair of ``neighbor_id``'s line, dropping it if emptied."""
        line = self._lines[neighbor_id]
        line.evict_oldest()
        self._total_pairs -= 1
        if len(line) == 0:
            del self._lines[neighbor_id]

    def _check_capacity_invariant(self) -> None:
        assert self.total_pairs <= self.capacity_pairs, (
            f"cache over budget: {self.total_pairs} > {self.capacity_pairs}"
        )
