"""Struct-of-arrays backing stores for the model-aware cache (§4).

Two granularities of the same layout live here, both bit-identical to
the scalar :class:`~repro.models.cache.CacheLine` object graph (pinned
by the golden-trace and hypothesis suites):

* :class:`NeighborBlock` — *one block per node*.  All cache lines of a
  node live in parallel columns indexed by row: the six RegressionStats
  sufficient sums ``(n, Σx, Σy, Σx², Σxy, Σy²)``, the ring-buffered
  sample pairs, and the memoized fit/benefit/penalty columns with their
  validity flags.  ``ModelAwareCache(vectorized=True)`` delegates to it
  and exposes the old line API as thin views
  (:class:`~repro.models.cache_manager.CacheLineView`).

* :class:`ModelAwareCacheFleet` — *many caches per block*.  The same
  columns flattened across ``F`` independent caches (row = cache × slot)
  as contiguous numpy arrays, advanced one observation per cache per
  :meth:`~ModelAwareCacheFleet.observe_batch` call with the §4 decision
  procedure evaluated lane-parallel.  This is the ≥3x throughput kernel
  and the substrate for the 10k+-node scale goals (ROADMAP items 1–3).

Why two storage representations?  The §4 decision procedure is
inherently sequential *within* a cache: ~85% of full-cache decisions
augment, and an augment mutates a victim line chosen across the whole
cache, so consecutive observations of one node conflict and cannot be
evaluated as independent lanes without changing results.  Lanes must
therefore be *caches*, not neighbors.  For a single cache the hot path
is scalar element access, where CPython reads a Python list ~3x faster
than a numpy array (each numpy scalar read boxes a fresh float object);
for the fleet the hot path is column arithmetic across hundreds of
lanes, where numpy wins by an order of magnitude.  Each block therefore
uses the column container its access pattern favors — Python lists per
node, numpy arrays per fleet — while keeping identical column meaning
and identical arithmetic.  ``NeighborBlock.as_arrays`` materializes the
per-node columns as numpy arrays for column-wise consumers.

Bit-identity with the scalar path rests on a few load-bearing rules,
shared by both blocks and documented once here:

* eviction applies sums *subtract-then-add* while decision scoring
  builds candidates *add-then-subtract* — exactly the scalar orders;
* a row whose count reaches zero snaps its sums to exact ``0.0``;
* drift resyncs accumulate left-to-right (``cumsum`` row prefixes in
  the fleet), matching the scalar loop — ``np.sum``'s pairwise order
  would differ in the last bits;
* the near-tie fallbacks (:data:`~repro.models.cache._NEAR_TIE_RTOL`)
  re-score candidates with the original batch arithmetic, so exact
  floating-point ties resolve the same way they always did.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

import numpy as np

from repro.models.cache import (
    _NEAR_TIE_RTOL,
    BYTES_PER_PAIR,
    STATS_SYNC_INTERVAL,
    pairs_for_budget,
)

__all__ = ["NeighborBlock", "ModelAwareCacheFleet", "ACTION_CODES", "ACTION_NAMES"]

_RTOL = _NEAR_TIE_RTOL
_DEG = 1e-12  # regression._DEGENERATE_RTOL, inlined on the hot path
_SYNC = STATS_SYNC_INTERVAL

#: Compact action encoding used by the fleet's vectorized
#: :meth:`ModelAwareCacheFleet.observe_batch` (int8 per lane instead of
#: a Python string per cache).  Names match :class:`~repro.models.policy.Action`.
ACTION_CODES = {"reject": 0, "shift": 1, "augment": 2, "append": 3, "newcomer": 4}
ACTION_NAMES = {code: name for name, code in ACTION_CODES.items()}


class NeighborBlock:
    """Per-node struct-of-arrays store of all cache lines (§4).

    Columns are parallel Python lists indexed by row; a row holds one
    neighbor's line.  Freed rows (lines emptied by eviction or
    ``forget``) go on a free-list and are reused, so the columns never
    shrink and row indices stay dense.  All §4 quantities — fit,
    benefit, eviction penalty — are memoized per row with validity
    flags and recomputed lazily, mirroring the scalar ``CacheLine``
    memos exactly.

    The public entry point is :meth:`observe`; everything else is the
    read surface the :class:`~repro.models.cache_manager.CacheLineView`
    adapters and the digest canonicalization consume.
    """

    __slots__ = (
        "cache_bytes", "capacity_pairs", "total", "rr_cursor",
        "_index", "_ids", "_free",
        "_n", "_sx", "_sy", "_sxx", "_sxy", "_syy",
        "_fa", "_fb", "_fok", "_ben", "_bok", "_pen", "_pok",
        "_esync", "_pairs",
    )

    def __init__(self, cache_bytes: int) -> None:
        self.cache_bytes = int(cache_bytes)
        self.capacity_pairs = pairs_for_budget(self.cache_bytes)
        self.total = 0            #: pairs stored across all rows
        self.rr_cursor = -1       #: last round-robin newcomer victim id
        self._index: dict[int, int] = {}   # neighbor id -> row
        self._ids: list[int] = []          # row -> neighbor id (-1 = free)
        self._free: list[int] = []
        # sufficient sums
        self._n: list[int] = []
        self._sx: list[float] = []
        self._sy: list[float] = []
        self._sxx: list[float] = []
        self._sxy: list[float] = []
        self._syy: list[float] = []
        # memo columns + validity flags
        self._fa: list[float] = []
        self._fb: list[float] = []
        self._fok: list[bool] = []
        self._ben: list[float] = []
        self._bok: list[bool] = []
        self._pen: list[float] = []
        self._pok: list[bool] = []
        self._esync: list[int] = []
        # ring-buffered sample pairs, oldest first
        self._pairs: list[deque[tuple[float, float]]] = []

    # -- row management -----------------------------------------------------

    def row_of(self, neighbor_id: int) -> Optional[int]:
        """The row holding ``neighbor_id``'s line, or ``None``."""
        return self._index.get(neighbor_id)

    def neighbor_ids(self) -> list[int]:
        """Neighbors with at least one stored pair, ascending id."""
        return sorted(j for j, r in self._index.items() if self._n[r] > 0)

    def _new_row(self, j: int) -> int:
        if self._free:
            r = self._free.pop()
            self._ids[r] = j
            self._n[r] = 0
            self._sx[r] = self._sy[r] = 0.0
            self._sxx[r] = self._sxy[r] = self._syy[r] = 0.0
            self._fok[r] = self._bok[r] = self._pok[r] = False
            self._esync[r] = 0
            self._pairs[r].clear()
        else:
            r = len(self._ids)
            self._ids.append(j)
            self._n.append(0)
            self._sx.append(0.0); self._sy.append(0.0)
            self._sxx.append(0.0); self._sxy.append(0.0); self._syy.append(0.0)
            self._fa.append(0.0); self._fb.append(0.0); self._fok.append(False)
            self._ben.append(0.0); self._bok.append(False)
            self._pen.append(0.0); self._pok.append(False)
            self._esync.append(0)
            self._pairs.append(deque())
        self._index[j] = r
        return r

    def _free_row(self, r: int) -> None:
        del self._index[self._ids[r]]
        self._ids[r] = -1
        self._n[r] = 0
        self._free.append(r)

    # -- the observe hot path -----------------------------------------------

    def observe(self, neighbor_id: int, own_value: float, neighbor_value: float) -> str:
        """Offer a fresh pair; returns the §4 action name taken."""
        x = float(own_value); y = float(neighbor_value)
        j = neighbor_id
        r = self._index.get(j)
        if self.total < self.capacity_pairs:
            if r is None:
                r = self._new_row(j)
            self._append(r, x, y)
            return "append"
        if r is None or self._n[r] == 0:
            return self._newcomer(j, x, y)
        return self._decide(r, j, x, y)

    def forget(self, neighbor_id: int) -> None:
        """Drop all history for ``neighbor_id`` (e.g. a departed node)."""
        r = self._index.get(neighbor_id)
        if r is None:
            return
        self.total -= self._n[r]
        self._free_row(r)

    def _append(self, r: int, x: float, y: float) -> None:
        self._pairs[r].append((x, y))
        self._n[r] += 1
        self._sx[r] += x; self._sy[r] += y
        self._sxx[r] += x * x; self._sxy[r] += x * y; self._syy[r] += y * y
        self._fok[r] = self._bok[r] = self._pok[r] = False
        self.total += 1

    def _evict(self, r: int) -> None:
        pairs = self._pairs[r]
        ox, oy = pairs.popleft()
        n0 = self._n[r]
        sxx0 = self._sxx[r]; syy0 = self._syy[r]
        # Same dominance rule as CacheLine.evict_oldest, checked on the
        # pre-removal sums: a departing pair that carries most of a sum
        # would cancel catastrophically under subtraction.
        dominant = ox * ox > 0.5 * sxx0 or oy * oy > 0.5 * syy0
        n0 -= 1
        self._n[r] = n0
        if n0 == 0:
            self._sx[r] = self._sy[r] = 0.0
            self._sxx[r] = self._sxy[r] = self._syy[r] = 0.0
        else:
            self._sx[r] -= ox; self._sy[r] -= oy
            self._sxx[r] = sxx0 - ox * ox
            self._sxy[r] -= ox * oy
            self._syy[r] = syy0 - oy * oy
        es = self._esync[r] + 1
        if dominant or es >= _SYNC:
            self._resync(r)
        else:
            self._esync[r] = es
        self._fok[r] = self._bok[r] = self._pok[r] = False
        self.total -= 1
        if n0 == 0:
            self._free_row(r)

    def _resync(self, r: int) -> None:
        # Left-to-right accumulation over the stored pairs: the exact
        # order CacheLine._resync_stats (RegressionStats.from_pairs) uses.
        sx = sy = sxx = sxy = syy = 0.0
        for px, py in self._pairs[r]:
            sx += px; sy += py
            sxx += px * px; sxy += px * py; syy += py * py
        self._sx[r] = sx; self._sy[r] = sy
        self._sxx[r] = sxx; self._sxy[r] = sxy; self._syy[r] = syy
        self._esync[r] = 0

    # -- memoized §4 quantities ----------------------------------------------

    @staticmethod
    def _fit(n_, sx_, sy_, sxx_, sxy_):
        # fit_coefficients inlined (same ops, same degenerate rule).
        nsxx = n_ * sxx_; sxsx = sx_ * sx_
        den = nsxx - sxsx
        scale = nsxx if nsxx > sxsx else sxsx
        if scale < 1.0:
            scale = 1.0
        if den <= _DEG * scale:
            return 0.0, sy_ / n_
        a = (n_ * sxy_ - sx_ * sy_) / den
        return a, (sy_ - a * sx_) / n_

    @staticmethod
    def _batch_fit(n_, sx_, sy_, sxx_, sxy_):
        # batch_fit_coefficients inlined (the original degeneracy rule).
        den = n_ * sxx_ - sx_ * sx_
        if abs(den) <= _DEG * max(1.0, n_ * sxx_, sx_ * sx_):
            return 0.0, sy_ / n_
        a = (n_ * sxy_ - sx_ * sy_) / den
        return a, (sy_ - a * sx_) / n_

    def fit(self, r: int) -> tuple[float, float]:
        """The row's memoized ``(slope, intercept)``."""
        if self._fok[r]:
            return self._fa[r], self._fb[r]
        n_ = self._n[r]
        sx_ = self._sx[r]; sy_ = self._sy[r]
        sxx_ = self._sxx[r]; sxy_ = self._sxy[r]
        nsxx = n_ * sxx_; sxsx = sx_ * sx_
        den = nsxx - sxsx
        scale = nsxx if nsxx > sxsx else sxsx
        if scale < 1.0:
            scale = 1.0
        if den <= _DEG * scale:
            a = 0.0; b = sy_ / n_
        else:
            a = (n_ * sxy_ - sx_ * sy_) / den
            b = (sy_ - a * sx_) / n_
        self._fa[r] = a; self._fb[r] = b; self._fok[r] = True
        return a, b

    def benefit(self, r: int) -> float:
        """The row's memoized §4 benefit over the no-answer policy."""
        if self._bok[r]:
            return self._ben[r]
        n_ = self._n[r]
        a, b = self.fit(r)
        sx_ = self._sx[r]; sy_ = self._sy[r]
        sxx_ = self._sxx[r]; sxy_ = self._sxy[r]; syy_ = self._syy[r]
        mean_x = sx_ / n_; mean_y = sy_ / n_
        cxx = sxx_ - sx_ * mean_x
        cxy = sxy_ - sx_ * mean_y
        cyy = syy_ - sy_ * mean_y
        mr = mean_y - a * mean_x - b
        tot = cyy - 2.0 * a * cxy + a * a * cxx + n_ * mr * mr
        sse = tot if tot > 0.0 else 0.0
        ben = ((syy_ if syy_ > 0.0 else 0.0) - sse) / n_
        self._ben[r] = ben; self._bok[r] = True
        return ben

    def penalty(self, r: int) -> float:
        """The row's memoized §4 eviction penalty."""
        if self._pok[r]:
            return self._pen[r]
        n_ = self._n[r]
        full = self.benefit(r)
        if n_ == 1:
            self._pen[r] = full; self._pok[r] = True
            return full
        sx_ = self._sx[r]; sy_ = self._sy[r]
        sxx_ = self._sxx[r]; sxy_ = self._sxy[r]; syy_ = self._syy[r]
        ox, oy = self._pairs[r][0]
        if ox * ox > 0.5 * sxx_ or oy * oy > 0.5 * syy_:
            rsx = rsy = rsxx = rsxy = 0.0
            rn = 0
            it = iter(self._pairs[r]); next(it)
            for px, py in it:
                rn += 1
                rsx += px; rsy += py; rsxx += px * px; rsxy += px * py
            a, b = self._fit(rn, rsx, rsy, rsxx, rsxy)
        else:
            a, b = self._fit(n_ - 1, sx_ - ox, sy_ - oy, sxx_ - ox * ox, sxy_ - ox * oy)
        mean_x = sx_ / n_; mean_y = sy_ / n_
        cxx = sxx_ - sx_ * mean_x
        cxy = sxy_ - sx_ * mean_y
        cyy = syy_ - sy_ * mean_y
        mr = mean_y - a * mean_x - b
        tot = cyy - 2.0 * a * cxy + a * a * cxx + n_ * mr * mr
        rsse = tot if tot > 0.0 else 0.0
        rben = ((syy_ if syy_ > 0.0 else 0.0) - rsse) / n_
        pen = full - rben
        scale = syy_ / n_
        if pen < _RTOL * (scale if scale > 1.0 else 1.0):
            pen = self._exact_penalty(r)
        self._pen[r] = pen; self._pok[r] = True
        return pen

    # -- exact near-tie fallbacks (original batch arithmetic) ----------------

    def _exact_penalty(self, r: int) -> float:
        pairs = self._pairs[r]
        n = len(pairs)
        sx = sy = sxx = sxy = 0.0
        sx_r = sy_r = sxx_r = sxy_r = 0.0
        first = True
        for px, py in pairs:
            sx += px; sy += py; sxx += px * px; sxy += px * py
            if first:
                first = False
            else:
                sx_r += px; sy_r += py; sxx_r += px * px; sxy_r += px * py
        a_f, b_f = self._batch_fit(n, sx, sy, sxx, sxy)
        a_r, b_r = self._batch_fit(n - 1, sx_r, sy_r, sxx_r, sxy_r)
        base = sse_f = sse_r = 0.0
        for px, py in pairs:
            base += py * py
            t = py - (a_f * px + b_f); sse_f += t * t
            t = py - (a_r * px + b_r); sse_r += t * t
        base /= n
        return (base - sse_f / n) - (base - sse_r / n)

    def _exact_benefits(self, r: int, x: float, y: float) -> tuple[float, float, float]:
        sx = sy = sxx = sxy = 0.0
        first = True
        sx_sh = sy_sh = sxx_sh = sxy_sh = 0.0
        n = 0
        pairs = self._pairs[r]
        for px, py in pairs:
            n += 1
            sx += px; sy += py; sxx += px * px; sxy += px * py
            if first:
                first = False
            else:
                sx_sh += px; sy_sh += py; sxx_sh += px * px; sxy_sh += px * py
        a_cur, b_cur = self._batch_fit(n, sx, sy, sxx, sxy)
        a_sh, b_sh = self._batch_fit(n, sx_sh + x, sy_sh + y, sxx_sh + x * x, sxy_sh + x * y)
        n_aug = n + 1
        a_aug, b_aug = self._batch_fit(n_aug, sx + x, sy + y, sxx + x * x, sxy + x * y)
        syy = 0.0
        sse_cur = sse_sh = sse_aug = 0.0
        for px, py in pairs:
            syy += py * py
            t = py - (a_cur * px + b_cur); sse_cur += t * t
            t = py - (a_sh * px + b_sh); sse_sh += t * t
            t = py - (a_aug * px + b_aug); sse_aug += t * t
        syy += y * y
        t = y - (a_cur * x + b_cur); sse_cur += t * t
        t = y - (a_sh * x + b_sh); sse_sh += t * t
        t = y - (a_aug * x + b_aug); sse_aug += t * t
        baseline = syy / n_aug
        return (baseline - sse_cur / n_aug, baseline - sse_sh / n_aug,
                baseline - sse_aug / n_aug)

    # -- the full-cache decision procedure ------------------------------------

    def _decide(self, r: int, j: int, x: float, y: float) -> str:
        n0 = self._n[r]
        sx0 = self._sx[r]; sy0 = self._sy[r]
        sxx0 = self._sxx[r]; sxy0 = self._sxy[r]; syy0 = self._syy[r]
        xx = x * x; xy = x * y; yy = y * y
        # c_aug: add-then-subtract order, exactly as _decide_full_cache.
        n1 = n0 + 1
        sx1 = sx0 + x; sy1 = sy0 + y
        sxx1 = sxx0 + xx; sxy1 = sxy0 + xy; syy1 = syy0 + yy

        ox, oy = self._pairs[r][0]
        sxs = sx1 - ox; sys_ = sy1 - oy
        sxxs = sxx1 - ox * ox; sxys = sxy1 - ox * oy

        baseline = (syy1 if syy1 > 0.0 else 0.0) / n1
        a_cur, b_cur = self.fit(r)
        a_sh, b_sh = self._fit(n0, sxs, sys_, sxxs, sxys)
        a_aug, b_aug = self._fit(n1, sx1, sy1, sxx1, sxy1)

        # model_sse inlined: shared centered moments of c_aug.
        mean_x = sx1 / n1; mean_y = sy1 / n1
        cxx = sxx1 - sx1 * mean_x
        cxy = sxy1 - sx1 * mean_y
        cyy = syy1 - sy1 * mean_y

        mr = mean_y - a_cur * mean_x - b_cur
        tot = cyy - 2.0 * a_cur * cxy + a_cur * a_cur * cxx + n1 * mr * mr
        sse_cur = tot if tot > 0.0 else 0.0
        mr = mean_y - a_sh * mean_x - b_sh
        tot = cyy - 2.0 * a_sh * cxy + a_sh * a_sh * cxx + n1 * mr * mr
        sse_sh = tot if tot > 0.0 else 0.0
        mr = mean_y - a_aug * mean_x - b_aug
        tot = cyy - 2.0 * a_aug * cxy + a_aug * a_aug * cxx + n1 * mr * mr
        sse_aug = tot if tot > 0.0 else 0.0

        b_c = baseline - sse_cur / n1
        b_s = baseline - sse_sh / n1
        b_a = baseline - sse_aug / n1

        near = _RTOL * (baseline if baseline > 1.0 else 1.0)
        d_cs = b_c - b_s
        d_ca = b_c - b_a
        d_sa = b_s - b_a
        if (-near < d_cs < near) or (-near < d_ca < near) or (-near < d_sa < near):
            b_c, b_s, b_a = self._exact_benefits(r, x, y)

        if b_c >= b_s and b_c >= b_a:
            return "reject"
        if b_s >= b_a:
            self._evict(r)
            if self._index.get(j) is None:  # eviction emptied the line
                r = self._new_row(j)
            self._append(r, x, y)
            return "shift"
        gain = b_a - b_s
        victim = self._cheapest_victim(r, gain)
        if victim is not None:
            self._evict(victim)
            self._append(r, x, y)
            # Eager memo reuse: the augmented line's fit and benefit are
            # the decision's aug values — pure functions of the same sums.
            self._fa[r] = a_aug; self._fb[r] = b_aug; self._fok[r] = True
            self._ben[r] = ((syy1 if syy1 > 0.0 else 0.0) - sse_aug) / n1
            self._bok[r] = True
            return "augment"
        if b_s > b_c:
            self._evict(r)
            if self._index.get(j) is None:
                r = self._new_row(j)
            self._append(r, x, y)
            return "shift"
        return "reject"

    def _cheapest_victim(self, exclude_row: int, below: float) -> Optional[int]:
        # Flat scan over the dense rows.  With one row per neighbor
        # (node degree, not cache size) this beats maintaining the
        # scalar path's lazy heap — no allocation, no heap churn —
        # and reproduces its lexicographic (penalty, id) minimum.
        best_pen = None
        best_id = -1
        best_row = -1
        n = self._n
        ids = self._ids
        pok = self._pok
        pen = self._pen
        for r in range(len(ids)):
            i = ids[r]
            if i < 0 or r == exclude_row or n[r] == 0:
                continue
            p = pen[r] if pok[r] else self.penalty(r)
            if best_pen is None or p < best_pen or (p == best_pen and i < best_id):
                best_pen = p; best_id = i; best_row = r
        if best_pen is not None and best_pen < below:
            return best_row
        return None

    def _newcomer(self, j: int, x: float, y: float) -> str:
        candidates = sorted(
            self._ids[r] for r in range(len(self._ids))
            if self._ids[r] >= 0 and self._ids[r] != j and self._n[r] > 0
        )
        if not candidates:
            return "reject"
        victim = None
        for k in candidates:
            if k > self.rr_cursor:
                victim = k
                break
        if victim is None:
            victim = candidates[0]
        self.rr_cursor = victim
        self._evict(self._index[victim])
        r = self._index.get(j)
        if r is None:
            r = self._new_row(j)
        self._append(r, x, y)
        return "newcomer"

    # -- read surface for views, digests and tests ----------------------------

    def pair_count(self, r: int) -> int:
        return self._n[r]

    def pairs(self, r: int) -> deque[tuple[float, float]]:
        """The row's live pair ring, oldest first (no copy)."""
        return self._pairs[r]

    def sums(self, r: int) -> tuple[int, float, float, float, float, float]:
        """``(n, Σx, Σy, Σx², Σxy, Σy²)`` of row ``r``."""
        return (self._n[r], self._sx[r], self._sy[r],
                self._sxx[r], self._sxy[r], self._syy[r])

    def evictions_since_sync(self, r: int) -> int:
        return self._esync[r]

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The live rows' columns as contiguous numpy arrays.

        A column-wise snapshot (``ids``, ``n``, ``sx`` … ``syy``) over
        rows holding at least one pair, ordered by neighbor id — the
        SoA view consumed by diagnostics and the property suite.
        """
        rows = [self._index[j] for j in self.neighbor_ids()]
        return {
            "ids": np.array([self._ids[r] for r in rows], dtype=np.int64),
            "n": np.array([self._n[r] for r in rows], dtype=np.int64),
            "sx": np.array([self._sx[r] for r in rows]),
            "sy": np.array([self._sy[r] for r in rows]),
            "sxx": np.array([self._sxx[r] for r in rows]),
            "sxy": np.array([self._sxy[r] for r in rows]),
            "syy": np.array([self._syy[r] for r in rows]),
        }

    def __repr__(self) -> str:
        return (
            f"NeighborBlock(bytes={self.cache_bytes}, "
            f"lines={len(self._index)}, pairs={self.total})"
        )


# ----------------------------------------------------------------------
# the cross-cache fleet kernel
# ----------------------------------------------------------------------


def _vfit(n, sx, sy, sxx, sxy):
    """Vectorized Lemma 1 fit; lane-for-lane the scalar ``fit_coefficients``.

    Non-degenerate lanes compute ``b`` from the pre-``where`` slope, so
    their bits match the scalar division sequence exactly; degenerate
    lanes are overwritten by the ``where`` selects (the masked-out
    divisions may raise IEEE flags, silenced by the caller's errstate).
    """
    nsxx = n * sxx
    sxsx = sx * sx
    den = nsxx - sxsx
    scale = np.maximum(np.maximum(nsxx, sxsx), 1.0)
    degen = den <= _DEG * scale
    safe = np.where(degen, 1.0, den)
    a = (n * sxy - sx * sy) / safe
    b = (sy - a * sx) / n
    a = np.where(degen, 0.0, a)
    b = np.where(degen, sy / n, b)
    return a, b


def _vsse(n, cxx, cxy, cyy, mean_x, mean_y, a, b):
    """Vectorized ``model_sse`` over precomputed centered moments.

    The ``where`` clamp reproduces the scalar ``total if total > 0.0
    else 0.0`` exactly, NaN included (NaN compares false → clamped to 0).
    """
    mr = mean_y - a * mean_x - b
    tot = cyy - 2.0 * a * cxy + a * a * cxx + n * mr * mr
    return np.where(tot > 0.0, tot, 0.0)


class ModelAwareCacheFleet:
    """``F`` independent §4 caches advanced in lock-step, lane-parallel.

    Row ``c * max_lines + s`` holds slot ``s`` of cache ``c``; all
    columns are contiguous numpy arrays over those rows.  One
    :meth:`observe_batch` call advances every cache by one observation
    — lane ``i`` feeds cache ``i`` — with the full-cache decision
    procedure evaluated vectorized across lanes.  Because the lanes are
    *independent caches*, a batch is trivially equivalent to running
    each cache's scalar procedure in sequence: no lane reads or writes
    another lane's rows.  Per-lane fallbacks (warmup fills, newcomers,
    near-ties) drop to the scalar path row-wise.

    This is the throughput kernel for fleet-scale simulation and the
    ``vectorized`` line of ``BENCH_cache``; per-node caches inside the
    simulator use :class:`NeighborBlock` through ``ModelAwareCache``.

    Parameters
    ----------
    n_caches:
        Number of independent caches (lanes).
    cache_bytes:
        Byte budget per cache (§6.1's 2,048 default elsewhere).
    max_lines:
        Line slots per cache — the maximum distinct neighbors a cache
        can hold at once (node degree).
    ring_cap:
        Initial per-row ring capacity in pairs; grows by doubling.
    """

    def __init__(self, n_caches: int, cache_bytes: int,
                 max_lines: int = 8, ring_cap: int = 64) -> None:
        if n_caches <= 0:
            raise ValueError(f"need at least one cache, got {n_caches}")
        if max_lines <= 0:
            raise ValueError(f"need at least one line slot, got {max_lines}")
        F, S, C = int(n_caches), int(max_lines), int(ring_cap)
        self.F, self.S, self.C = F, S, C
        self.cache_bytes = int(cache_bytes)
        self.capacity_pairs = pairs_for_budget(self.cache_bytes)
        R = F * S
        self.ids = np.full(R, -1, dtype=np.int64)
        self.n = np.zeros(R, dtype=np.int64)
        self.sx = np.zeros(R); self.sy = np.zeros(R)
        self.sxx = np.zeros(R); self.sxy = np.zeros(R); self.syy = np.zeros(R)
        self.fa = np.zeros(R); self.fb = np.zeros(R)
        self.fok = np.zeros(R, dtype=bool)
        self.ben = np.zeros(R); self.bok = np.zeros(R, dtype=bool)
        self.pen = np.zeros(R); self.pok = np.zeros(R, dtype=bool)
        self.esync = np.zeros(R, dtype=np.int64)
        self.rx = np.zeros((R, C)); self.ry = np.zeros((R, C))
        self.head = np.zeros(R, dtype=np.int64)
        self.total = np.zeros(F, dtype=np.int64)
        self.rr = np.full(F, -1, dtype=np.int64)
        self.slot = [dict() for _ in range(F)]   # id -> slot within cache
        # Dense id -> slot map: one int32 per (cache, id) enabling the
        # batched lane dispatch gather of :meth:`observe_batch`; grown
        # by doubling on demand.  Built lazily on first use — the
        # sparse :meth:`observe_lanes` dispatch resolves slots through
        # the per-cache dicts instead, so fleet-backed simulations at
        # large node counts never pay the F x max_id footprint.
        self.idcap = 64
        self.idmap: Optional[np.ndarray] = None
        self._arF = np.arange(F)
        # Lanes freed by :meth:`retire_lane`, reused by :meth:`add_lane`.
        self._free_lanes: list[int] = []

    def __getstate__(self):
        # The dense idmap is a pure gather cache over the slot dicts;
        # drop it from checkpoints (it can be 100s of MB at large F)
        # and rebuild lazily on demand after restore.
        state = self.__dict__.copy()
        state["idmap"] = None
        return state

    # -- scalar per-lane operations (warmup, newcomers, rare paths) ----------

    def _row(self, c: int, j: int, make: bool = False) -> Optional[int]:
        s = self.slot[c].get(j)
        if s is None and make:
            if self.idmap is not None and j >= self.idcap:
                cap = self.idcap
                while j >= cap:
                    cap *= 2
                grown = np.full((self.F, cap), -1, dtype=np.int32)
                grown[:, : self.idcap] = self.idmap
                self.idmap = grown
                self.idcap = cap
            base = c * self.S
            for k in range(self.S):
                if self.ids[base + k] < 0:
                    s = k
                    break
            if s is None:
                # The initial max_lines sizing bounds slots by the
                # *static* topology's degree; mobility (or any topology
                # swap) can push a cache past it.  The policy's pair
                # budget still bounds live lines at capacity_pairs, so
                # grow toward that and only fail once eviction itself
                # must have gone wrong.
                if self.S >= self.capacity_pairs:
                    raise ValueError(
                        f"cache {c} already tracks {self.S} neighbors at its "
                        f"pair budget; cannot admit neighbor {j}"
                    )
                s = self.S
                self._grow_lines(min(2 * self.S, self.capacity_pairs))
                base = c * self.S
            self.slot[c][j] = s
            if self.idmap is not None:
                self.idmap[c, j] = s
            r = base + s
            self.ids[r] = j
            self.n[r] = 0
            self.sx[r] = self.sy[r] = 0.0
            self.sxx[r] = self.sxy[r] = self.syy[r] = 0.0
            self.fok[r] = self.bok[r] = self.pok[r] = False
            self.esync[r] = 0
            self.head[r] = 0
        return None if s is None else c * self.S + s

    def _free_row(self, c: int, r: int) -> None:
        j = int(self.ids[r])
        del self.slot[c][j]
        if self.idmap is not None:
            self.idmap[c, j] = -1
        self.ids[r] = -1
        self.n[r] = 0

    def _pairs(self, r: int) -> list[tuple[float, float]]:
        n = int(self.n[r]); h = int(self.head[r]); C = self.C
        idx = (h + np.arange(n)) % C
        return list(zip(self.rx[r, idx].tolist(), self.ry[r, idx].tolist()))

    def _append(self, c: int, r: int, x: float, y: float) -> None:
        if self.n[r] >= self.C - 1:
            self._grow_rings()
        t = (self.head[r] + self.n[r]) % self.C
        self.rx[r, t] = x; self.ry[r, t] = y
        self.n[r] += 1
        self.sx[r] += x; self.sy[r] += y
        self.sxx[r] += x * x; self.sxy[r] += x * y; self.syy[r] += y * y
        self.fok[r] = self.bok[r] = self.pok[r] = False
        self.total[c] += 1

    def _evict(self, c: int, r: int) -> None:
        h = int(self.head[r])
        ox = float(self.rx[r, h]); oy = float(self.ry[r, h])
        n0 = int(self.n[r])
        sxx0 = float(self.sxx[r]); syy0 = float(self.syy[r])
        dominant = ox * ox > 0.5 * sxx0 or oy * oy > 0.5 * syy0
        n0 -= 1
        self.n[r] = n0
        self.head[r] = (h + 1) % self.C
        if n0 == 0:
            self.sx[r] = self.sy[r] = 0.0
            self.sxx[r] = self.sxy[r] = self.syy[r] = 0.0
        else:
            self.sx[r] -= ox; self.sy[r] -= oy
            self.sxx[r] = sxx0 - ox * ox
            self.sxy[r] -= ox * oy
            self.syy[r] = syy0 - oy * oy
        es = int(self.esync[r]) + 1
        if dominant or es >= _SYNC:
            self._resync_row(r)
        else:
            self.esync[r] = es
        self.fok[r] = self.bok[r] = self.pok[r] = False
        self.total[c] -= 1
        if n0 == 0:
            self._free_row(c, r)

    def _resync_row(self, r: int) -> None:
        sx = sy = sxx = sxy = syy = 0.0
        for px, py in self._pairs(r):
            sx += px; sy += py
            sxx += px * px; sxy += px * py; syy += py * py
        self.sx[r] = sx; self.sy[r] = sy
        self.sxx[r] = sxx; self.sxy[r] = sxy; self.syy[r] = syy
        self.esync[r] = 0

    def _resync_rows(self, rows: np.ndarray) -> None:
        """Batched exact resync: per-row prefix sums in ring order.

        Row-wise ``cumsum`` accumulates left-to-right, so reading the
        prefix at position ``n - 1`` is bit-identical to the scalar
        sequential loop; ring slots past ``n - 1`` never enter that
        prefix.  One signed-zero wrinkle: ``cumsum`` starts from the
        first element while the scalar loop starts from ``0.0``, so an
        all ``-0.0`` prefix sums to ``-0.0`` here but ``+0.0`` there.
        A sum seeded with ``+0.0`` can never round to ``-0.0``, so
        adding ``+0.0`` (which only flips ``-0.0``) closes the gap.
        """
        nr = self.n[rows]
        k = np.arange(int(nr.max()))
        idx = (self.head[rows][:, None] + k[None, :]) % self.C
        px = self.rx[rows[:, None], idx]
        py = self.ry[rows[:, None], idx]
        ii = np.arange(rows.size)
        last = nr - 1
        self.sx[rows] = px.cumsum(axis=1)[ii, last] + 0.0
        self.sy[rows] = py.cumsum(axis=1)[ii, last] + 0.0
        self.sxx[rows] = (px * px).cumsum(axis=1)[ii, last] + 0.0
        self.sxy[rows] = (px * py).cumsum(axis=1)[ii, last] + 0.0
        self.syy[rows] = (py * py).cumsum(axis=1)[ii, last] + 0.0
        self.esync[rows] = 0

    def _grow_rings(self) -> None:
        # Double capacity, straightening every ring to head 0 (a pure
        # relayout: pair order and all sums are untouched).
        C, C2 = self.C, self.C * 2
        R = self.rx.shape[0]
        idx = (self.head[:, None] + np.arange(C)[None, :]) % C
        rx = np.zeros((R, C2)); ry = np.zeros((R, C2))
        rx[:, :C] = np.take_along_axis(self.rx, idx, axis=1)
        ry[:, :C] = np.take_along_axis(self.ry, idx, axis=1)
        self.rx = rx; self.ry = ry
        self.head[:] = 0
        self.C = C2

    _fit = staticmethod(NeighborBlock._fit)
    _batch_fit = staticmethod(NeighborBlock._batch_fit)

    def _current_fit(self, r: int) -> tuple[float, float]:
        if self.fok[r]:
            return float(self.fa[r]), float(self.fb[r])
        a, b = self._fit(int(self.n[r]), float(self.sx[r]), float(self.sy[r]),
                         float(self.sxx[r]), float(self.sxy[r]))
        self.fa[r] = a; self.fb[r] = b; self.fok[r] = True
        return a, b

    def _benefit_scalar(self, r: int) -> float:
        if self.bok[r]:
            return float(self.ben[r])
        n_ = int(self.n[r])
        a, b = self._current_fit(r)
        sx_ = float(self.sx[r]); sy_ = float(self.sy[r])
        sxx_ = float(self.sxx[r]); sxy_ = float(self.sxy[r]); syy_ = float(self.syy[r])
        mean_x = sx_ / n_; mean_y = sy_ / n_
        cxx = sxx_ - sx_ * mean_x; cxy = sxy_ - sx_ * mean_y; cyy = syy_ - sy_ * mean_y
        mr = mean_y - a * mean_x - b
        tot = cyy - 2.0 * a * cxy + a * a * cxx + n_ * mr * mr
        sse = tot if tot > 0.0 else 0.0
        ben = ((syy_ if syy_ > 0.0 else 0.0) - sse) / n_
        self.ben[r] = ben; self.bok[r] = True
        return ben

    def _penalty_scalar(self, r: int) -> float:
        if self.pok[r]:
            return float(self.pen[r])
        n_ = int(self.n[r])
        full = self._benefit_scalar(r)
        if n_ == 1:
            self.pen[r] = full; self.pok[r] = True
            return full
        sx_ = float(self.sx[r]); sy_ = float(self.sy[r])
        sxx_ = float(self.sxx[r]); sxy_ = float(self.sxy[r]); syy_ = float(self.syy[r])
        h = int(self.head[r])
        ox = float(self.rx[r, h]); oy = float(self.ry[r, h])
        if ox * ox > 0.5 * sxx_ or oy * oy > 0.5 * syy_:
            pairs = self._pairs(r)[1:]
            rn = len(pairs)
            rsx = rsy = rsxx = rsxy = 0.0
            for px, py in pairs:
                rsx += px; rsy += py; rsxx += px * px; rsxy += px * py
            a, b = self._fit(rn, rsx, rsy, rsxx, rsxy)
        else:
            a, b = self._fit(n_ - 1, sx_ - ox, sy_ - oy, sxx_ - ox * ox, sxy_ - ox * oy)
        mean_x = sx_ / n_; mean_y = sy_ / n_
        cxx = sxx_ - sx_ * mean_x; cxy = sxy_ - sx_ * mean_y; cyy = syy_ - sy_ * mean_y
        mr = mean_y - a * mean_x - b
        tot = cyy - 2.0 * a * cxy + a * a * cxx + n_ * mr * mr
        rsse = tot if tot > 0.0 else 0.0
        rben = ((syy_ if syy_ > 0.0 else 0.0) - rsse) / n_
        p = full - rben
        scale = syy_ / n_
        if p < _RTOL * (scale if scale > 1.0 else 1.0):
            p = self._exact_penalty(r)
        self.pen[r] = p; self.pok[r] = True
        return p

    def _exact_penalty(self, r: int) -> float:
        pairs = self._pairs(r)
        n = len(pairs)
        sx = sy = sxx = sxy = 0.0
        sx_r = sy_r = sxx_r = sxy_r = 0.0
        first = True
        for px, py in pairs:
            sx += px; sy += py; sxx += px * px; sxy += px * py
            if first:
                first = False
            else:
                sx_r += px; sy_r += py; sxx_r += px * px; sxy_r += px * py
        a_f, b_f = self._batch_fit(n, sx, sy, sxx, sxy)
        a_r, b_r = self._batch_fit(n - 1, sx_r, sy_r, sxx_r, sxy_r)
        base = sse_f = sse_r = 0.0
        for px, py in pairs:
            base += py * py
            t = py - (a_f * px + b_f); sse_f += t * t
            t = py - (a_r * px + b_r); sse_r += t * t
        base /= n
        return (base - sse_f / n) - (base - sse_r / n)

    def _exact_benefits(self, r: int, x: float, y: float) -> tuple[float, float, float]:
        pairs = self._pairs(r)
        sx = sy = sxx = sxy = 0.0
        first = True
        sx_sh = sy_sh = sxx_sh = sxy_sh = 0.0
        n = 0
        for px, py in pairs:
            n += 1
            sx += px; sy += py; sxx += px * px; sxy += px * py
            if first:
                first = False
            else:
                sx_sh += px; sy_sh += py; sxx_sh += px * px; sxy_sh += px * py
        a_cur, b_cur = self._batch_fit(n, sx, sy, sxx, sxy)
        a_sh, b_sh = self._batch_fit(n, sx_sh + x, sy_sh + y, sxx_sh + x * x, sxy_sh + x * y)
        n_aug = n + 1
        a_aug, b_aug = self._batch_fit(n_aug, sx + x, sy + y, sxx + x * x, sxy + x * y)
        syy = 0.0
        sse_cur = sse_sh = sse_aug = 0.0
        for px, py in pairs:
            syy += py * py
            t = py - (a_cur * px + b_cur); sse_cur += t * t
            t = py - (a_sh * px + b_sh); sse_sh += t * t
            t = py - (a_aug * px + b_aug); sse_aug += t * t
        syy += y * y
        t = y - (a_cur * x + b_cur); sse_cur += t * t
        t = y - (a_sh * x + b_sh); sse_sh += t * t
        t = y - (a_aug * x + b_aug); sse_aug += t * t
        baseline = syy / n_aug
        return (baseline - sse_cur / n_aug, baseline - sse_sh / n_aug,
                baseline - sse_aug / n_aug)

    def _exact_benefits_rows(self, rows, xs, ys):
        """Vectorized :meth:`_exact_benefits` over many rows at once.

        On strongly correlated workloads (the paper's §6.1 classes are
        exactly affine, so all three benefits tie *by construction*)
        virtually every observation lands in the near-tie re-score; a
        per-row Python fallback would erase the whole batch win.  This
        sweep walks the rings one position at a time — a ``ring_cap``-
        bounded loop of whole-batch vector ops — accumulating in the
        *same element order per row* as the scalar loop, with masked
        ``where`` updates (not additions of 0.0) past each row's fill,
        so every intermediate rounding matches bit-for-bit.
        """
        C = self.C
        n = self.n[rows]
        pos = (self.head[rows][:, None] + np.arange(C)[None, :]) % C
        px = self.rx[rows[:, None], pos]
        py = self.ry[rows[:, None], pos]
        T = rows.size
        sx = np.zeros(T); sy = np.zeros(T); sxx = np.zeros(T); sxy = np.zeros(T)
        sx_sh = np.zeros(T); sy_sh = np.zeros(T)
        sxx_sh = np.zeros(T); sxy_sh = np.zeros(T)
        pmax = int(n.max())
        for p in range(pmax):
            live = p < n
            cx = px[:, p]; cy = py[:, p]
            sx = np.where(live, sx + cx, sx)
            sy = np.where(live, sy + cy, sy)
            sxx = np.where(live, sxx + cx * cx, sxx)
            sxy = np.where(live, sxy + cx * cy, sxy)
            if p > 0:  # the shift sums skip each row's oldest pair
                sx_sh = np.where(live, sx_sh + cx, sx_sh)
                sy_sh = np.where(live, sy_sh + cy, sy_sh)
                sxx_sh = np.where(live, sxx_sh + cx * cx, sxx_sh)
                sxy_sh = np.where(live, sxy_sh + cx * cy, sxy_sh)
        nf = n.astype(np.float64)
        a_cur, b_cur = self._vbatch_fit(nf, sx, sy, sxx, sxy)
        a_sh, b_sh = self._vbatch_fit(
            nf, sx_sh + xs, sy_sh + ys, sxx_sh + xs * xs, sxy_sh + xs * ys
        )
        n_aug = nf + 1.0
        a_aug, b_aug = self._vbatch_fit(
            n_aug, sx + xs, sy + ys, sxx + xs * xs, sxy + xs * ys
        )
        syy = np.zeros(T)
        sse_cur = np.zeros(T); sse_sh = np.zeros(T); sse_aug = np.zeros(T)
        for p in range(pmax):
            live = p < n
            cx = px[:, p]; cy = py[:, p]
            syy = np.where(live, syy + cy * cy, syy)
            t = cy - (a_cur * cx + b_cur)
            sse_cur = np.where(live, sse_cur + t * t, sse_cur)
            t = cy - (a_sh * cx + b_sh)
            sse_sh = np.where(live, sse_sh + t * t, sse_sh)
            t = cy - (a_aug * cx + b_aug)
            sse_aug = np.where(live, sse_aug + t * t, sse_aug)
        syy = syy + ys * ys
        t = ys - (a_cur * xs + b_cur); sse_cur = sse_cur + t * t
        t = ys - (a_sh * xs + b_sh); sse_sh = sse_sh + t * t
        t = ys - (a_aug * xs + b_aug); sse_aug = sse_aug + t * t
        baseline = syy / n_aug
        return (baseline - sse_cur / n_aug, baseline - sse_sh / n_aug,
                baseline - sse_aug / n_aug)

    @staticmethod
    def _vbatch_fit(n_, sx_, sy_, sxx_, sxy_):
        """Vectorized :meth:`_batch_fit` (same degeneracy rule per row)."""
        nsxx = n_ * sxx_
        sxsx = sx_ * sx_
        den = nsxx - sxsx
        deg = np.abs(den) <= _DEG * np.maximum(1.0, np.maximum(nsxx, sxsx))
        a = np.where(deg, 0.0, (n_ * sxy_ - sx_ * sy_) / np.where(deg, 1.0, den))
        return a, (sy_ - a * sx_) / n_

    def observe(self, c: int, j: int, x: float, y: float) -> str:
        """Scalar single-cache observe (warmup and fallback path)."""
        x = float(x); y = float(y)
        r = self._row(c, j)
        if self.total[c] < self.capacity_pairs:
            if r is None:
                r = self._row(c, j, make=True)
            self._append(c, r, x, y)
            return "append"
        if r is None or self.n[r] == 0:
            return self._newcomer(c, j, x, y)
        return self._decide(c, r, j, x, y)

    def _newcomer(self, c: int, j: int, x: float, y: float) -> str:
        base = c * self.S
        cands = sorted(
            int(self.ids[base + k]) for k in range(self.S)
            if self.ids[base + k] >= 0 and self.ids[base + k] != j and self.n[base + k] > 0
        )
        if not cands:
            return "reject"
        victim = None
        for k in cands:
            if k > self.rr[c]:
                victim = k
                break
        if victim is None:
            victim = cands[0]
        self.rr[c] = victim
        self._evict(c, base + self.slot[c][victim])
        r = self._row(c, j, make=True)
        self._append(c, r, x, y)
        return "newcomer"

    def _decide(self, c: int, r: int, j: int, x: float, y: float) -> str:
        n0 = int(self.n[r])
        sx0 = float(self.sx[r]); sy0 = float(self.sy[r])
        sxx0 = float(self.sxx[r]); sxy0 = float(self.sxy[r]); syy0 = float(self.syy[r])
        xx = x * x; xy = x * y; yy = y * y
        n1 = n0 + 1
        sx1 = sx0 + x; sy1 = sy0 + y
        sxx1 = sxx0 + xx; sxy1 = sxy0 + xy; syy1 = syy0 + yy
        h = int(self.head[r])
        ox = float(self.rx[r, h]); oy = float(self.ry[r, h])
        sxs = sx1 - ox; sys_ = sy1 - oy
        sxxs = sxx1 - ox * ox; sxys = sxy1 - ox * oy
        baseline = (syy1 if syy1 > 0.0 else 0.0) / n1
        a_cur, b_cur = self._current_fit(r)
        a_sh, b_sh = self._fit(n0, sxs, sys_, sxxs, sxys)
        a_aug, b_aug = self._fit(n1, sx1, sy1, sxx1, sxy1)
        mean_x = sx1 / n1; mean_y = sy1 / n1
        cxx = sxx1 - sx1 * mean_x; cxy = sxy1 - sx1 * mean_y; cyy = syy1 - sy1 * mean_y
        mr = mean_y - a_cur * mean_x - b_cur
        tot = cyy - 2.0 * a_cur * cxy + a_cur * a_cur * cxx + n1 * mr * mr
        sse_cur = tot if tot > 0.0 else 0.0
        mr = mean_y - a_sh * mean_x - b_sh
        tot = cyy - 2.0 * a_sh * cxy + a_sh * a_sh * cxx + n1 * mr * mr
        sse_sh = tot if tot > 0.0 else 0.0
        mr = mean_y - a_aug * mean_x - b_aug
        tot = cyy - 2.0 * a_aug * cxy + a_aug * a_aug * cxx + n1 * mr * mr
        sse_aug = tot if tot > 0.0 else 0.0
        b_c = baseline - sse_cur / n1
        b_s = baseline - sse_sh / n1
        b_a = baseline - sse_aug / n1
        near = _RTOL * (baseline if baseline > 1.0 else 1.0)
        d_cs = b_c - b_s; d_ca = b_c - b_a; d_sa = b_s - b_a
        if (-near < d_cs < near) or (-near < d_ca < near) or (-near < d_sa < near):
            b_c, b_s, b_a = self._exact_benefits(r, x, y)
        if b_c >= b_s and b_c >= b_a:
            return "reject"
        if b_s >= b_a:
            self._evict(c, r)
            r = self._row(c, j, make=True)  # re-create if eviction emptied it
            self._append(c, r, x, y)
            return "shift"
        gain = b_a - b_s
        victim = self._cheapest_victim(c, r, gain)
        if victim is not None:
            self._evict(c, victim)
            self._append(c, r, x, y)
            self.fa[r] = a_aug; self.fb[r] = b_aug; self.fok[r] = True
            self.ben[r] = ((syy1 if syy1 > 0.0 else 0.0) - sse_aug) / n1
            self.bok[r] = True
            return "augment"
        if b_s > b_c:
            self._evict(c, r)
            r = self._row(c, j, make=True)
            self._append(c, r, x, y)
            return "shift"
        return "reject"

    def _cheapest_victim(self, c: int, exclude_row: int, below: float) -> Optional[int]:
        base = c * self.S
        best_pen = None; best_id = -1; best_row = -1
        for k in range(self.S):
            r = base + k
            i = int(self.ids[r])
            if i < 0 or r == exclude_row or self.n[r] == 0:
                continue
            p = float(self.pen[r]) if self.pok[r] else self._penalty_scalar(r)
            if best_pen is None or p < best_pen or (p == best_pen and i < best_id):
                best_pen = p; best_id = i; best_row = r
        if best_pen is not None and best_pen < below:
            return best_row
        return None

    # -- the vectorized batch step --------------------------------------------

    def _ensure_idmap(self) -> None:
        """Build the dense id -> slot gather table from the slot dicts.

        Deferred until :meth:`observe_batch` actually needs it, so
        sparse-dispatch users (:meth:`observe_lanes`) never allocate
        the ``F x idcap`` table.
        """
        if self.idmap is not None:
            return
        cap = self.idcap
        top = max((max(d) for d in self.slot if d), default=-1)
        while top >= cap:
            cap *= 2
        self.idcap = cap
        self.idmap = np.full((self.F, cap), -1, dtype=np.int32)
        for c, d in enumerate(self.slot):
            for j, s in d.items():
                self.idmap[c, j] = s

    def observe_batch(self, neighbor_ids, own_values, neighbor_values) -> np.ndarray:
        """Advance every cache by one observation; lane ``i`` → cache ``i``.

        Returns an int8 array of :data:`ACTION_CODES` per lane.  Lanes
        whose cache is not yet full, or whose neighbor has no line
        (newcomers), fall back to the scalar per-lane path; everything
        else — candidate scoring, victim selection, eviction, append,
        memo refresh — runs column-wise across the fast lanes.
        """
        F = self.F
        js = np.asarray(neighbor_ids, dtype=np.int64)
        xs = np.asarray(own_values, dtype=np.float64)
        ys = np.asarray(neighbor_values, dtype=np.float64)
        if js.shape != (F,) or xs.shape != (F,) or ys.shape != (F,):
            raise ValueError(
                f"observe_batch wants one observation per cache "
                f"(shape ({F},)), got {js.shape}/{xs.shape}/{ys.shape}"
            )
        self._ensure_idmap()
        slot = self.idmap[self._arF, np.minimum(js, self.idcap - 1)]
        slot = np.where(js < self.idcap, slot, -1).astype(np.int64)
        with np.errstate(divide="ignore", invalid="ignore"):
            return self._observe_lanes(self._arF, js, xs, ys, slot)

    def observe_lanes(self, cache_ids, neighbor_ids, own_values, neighbor_values) -> np.ndarray:
        """Advance a *subset* of caches by one observation each.

        ``cache_ids`` must be distinct (one observation per cache — a
        cache's decisions are order-dependent, so feeding it twice in
        one call would race its own column updates).  Slots are
        resolved through the per-cache dicts, so no dense id table is
        materialized; otherwise this is exactly :meth:`observe_batch`
        restricted to the given lanes, bit-for-bit.
        """
        cs = np.asarray(cache_ids, dtype=np.int64)
        js = np.asarray(neighbor_ids, dtype=np.int64)
        xs = np.asarray(own_values, dtype=np.float64)
        ys = np.asarray(neighbor_values, dtype=np.float64)
        if not (cs.shape == js.shape == xs.shape == ys.shape) or cs.ndim != 1:
            raise ValueError(
                f"observe_lanes wants four equal-length 1-D arrays, got "
                f"{cs.shape}/{js.shape}/{xs.shape}/{ys.shape}"
            )
        if self.idmap is not None:
            # Dense gather (one vector op) when the id table has been
            # materialized — see _ensure_idmap / runtime._build_fleet.
            slot = self.idmap[cs, np.minimum(js, self.idcap - 1)]
            slot = np.where(js < self.idcap, slot, -1).astype(np.int64)
        else:
            slots = self.slot
            slot = np.fromiter(
                (slots[c].get(j, -1) for c, j in zip(cs.tolist(), js.tolist())),
                dtype=np.int64,
                count=cs.size,
            )
        with np.errstate(divide="ignore", invalid="ignore"):
            return self._observe_lanes(cs, js, xs, ys, slot)

    def _observe_lanes(self, cs, js, xs, ys, slot) -> np.ndarray:
        F, S, C = self.F, self.S, self.C
        # Lane dispatch: slow lanes (cache not yet full, or unknown/empty
        # line) take the scalar path one by one.
        fast = (slot >= 0) & (self.total[cs] >= self.capacity_pairs)
        rows = cs * S + slot
        actions = np.zeros(cs.size, dtype=np.int8)  # 0 = reject
        slow = np.flatnonzero(~fast)
        for i in slow:
            actions[i] = ACTION_CODES[
                self.observe(int(cs[i]), int(js[i]), float(xs[i]), float(ys[i]))
            ]
        if not fast.any():
            return actions
        fr = rows[fast]
        x = xs[fast]; y = ys[fast]
        n0 = self.n[fr]
        sx0 = self.sx[fr]; sy0 = self.sy[fr]
        sxx0 = self.sxx[fr]; sxy0 = self.sxy[fr]; syy0 = self.syy[fr]
        xx = x * x; xy = x * y; yy = y * y
        n1 = n0 + 1
        n1f = n1.astype(np.float64)
        sx1 = sx0 + x; sy1 = sy0 + y
        sxx1 = sxx0 + xx; sxy1 = sxy0 + xy; syy1 = syy0 + yy
        h = self.head[fr]
        ox = self.rx[fr, h]; oy = self.ry[fr, h]
        sxs = sx1 - ox; sys_ = sy1 - oy
        sxxs = sxx1 - ox * ox; sxys = sxy1 - ox * oy
        baseline = np.where(syy1 > 0.0, syy1, 0.0) / n1f

        # current fit: refresh stale rows with a vectorized scatter
        n0f = n0.astype(np.float64)
        stale_fit = ~self.fok[fr]
        if stale_fit.any():
            sf = fr[stale_fit]
            a_f, b_f = _vfit(n0f[stale_fit], sx0[stale_fit], sy0[stale_fit],
                             sxx0[stale_fit], sxy0[stale_fit])
            self.fa[sf] = a_f; self.fb[sf] = b_f; self.fok[sf] = True
        a_cur = self.fa[fr]; b_cur = self.fb[fr]

        a_sh, b_sh = _vfit(n0f, sxs, sys_, sxxs, sxys)
        a_aug, b_aug = _vfit(n1f, sx1, sy1, sxx1, sxy1)

        mean_x = sx1 / n1f; mean_y = sy1 / n1f
        cxx = sxx1 - sx1 * mean_x; cxy = sxy1 - sx1 * mean_y; cyy = syy1 - sy1 * mean_y
        sse_cur = _vsse(n1f, cxx, cxy, cyy, mean_x, mean_y, a_cur, b_cur)
        sse_sh = _vsse(n1f, cxx, cxy, cyy, mean_x, mean_y, a_sh, b_sh)
        sse_aug = _vsse(n1f, cxx, cxy, cyy, mean_x, mean_y, a_aug, b_aug)

        b_c = baseline - sse_cur / n1f
        b_s = baseline - sse_sh / n1f
        b_a = baseline - sse_aug / n1f

        # Near-tie lanes re-score with the exact batch arithmetic, the
        # same condition pair-for-pair as the scalar decision.
        near = _RTOL * np.where(baseline > 1.0, baseline, 1.0)
        d_cs = b_c - b_s; d_ca = b_c - b_a; d_sa = b_s - b_a
        tie = (((d_cs > -near) & (d_cs < near))
               | ((d_ca > -near) & (d_ca < near))
               | ((d_sa > -near) & (d_sa < near)))
        ti = np.flatnonzero(tie)
        if ti.size:
            bc, bs, ba = self._exact_benefits_rows(fr[ti], x[ti], y[ti])
            b_c[ti] = bc; b_s[ti] = bs; b_a[ti] = ba

        reject = (b_c >= b_s) & (b_c >= b_a)
        shift = ~reject & (b_s >= b_a)
        augment = ~reject & ~shift

        flane = np.flatnonzero(fast)   # input position per fast lane
        fcs = cs[flane]                # cache index per fast lane
        # Augment lanes: refresh every stale penalty fleet-wide (they
        # all feed some lane's victim scan), then select victims as a
        # masked lexicographic (penalty, id) minimum per lane.
        aug_lanes = np.flatnonzero(augment)
        aug_apply = np.empty(0, dtype=np.int64)
        vict_rows = np.empty(0, dtype=np.int64)
        if aug_lanes.size:
            stale = np.flatnonzero((~self.pok) & (self.ids >= 0) & (self.n > 0))
            if stale.size:
                self._refresh_penalties(stale)
            cA = fcs[aug_lanes]
            rA = fr[aug_lanes]
            gain = b_a[aug_lanes] - b_s[aug_lanes]
            idsC = self.ids.reshape(F, S)[cA]
            nC = self.n.reshape(F, S)[cA]
            penC = self.pen.reshape(F, S)[cA]
            valid = (idsC >= 0) & (nC > 0)
            valid[np.arange(cA.size), rA - cA * S] = False
            penC[~valid] = np.inf
            minp = penC.min(axis=1)
            BIG = np.int64(2) ** 62
            vid = np.where(valid & (penC == minp[:, None]), idsC, BIG).min(axis=1)
            hasv = minp < gain
            vslot = np.where(idsC == vid[:, None], np.arange(S), S).min(axis=1)
            aug_apply = aug_lanes[hasv]
            vict_rows = (cA * S + vslot)[hasv]
            nov = aug_lanes[~hasv]
            if nov.size:
                # No affordable victim: shift if it still beats current.
                sh_extra = nov[b_s[nov] > b_c[nov]]
                shift[sh_extra] = True

        shift_lanes = np.flatnonzero(shift)
        shift_rows = fr[shift_lanes]
        # Vectorized evict: shift rows evict their own oldest pair,
        # augment lanes evict the victim's.  All rows are distinct (one
        # lane per cache), so the column updates cannot conflict.
        E = np.concatenate([shift_rows, vict_rows])
        if E.size:
            hE = self.head[E]
            oxE = self.rx[E, hE]; oyE = self.ry[E, hE]
            sxxE = self.sxx[E]; syyE = self.syy[E]
            dom = (oxE * oxE > 0.5 * sxxE) | (oyE * oyE > 0.5 * syyE)
            nE = self.n[E] - 1
            self.n[E] = nE
            self.head[E] = (hE + 1) % C
            empt = nE == 0
            self.sx[E] -= oxE; self.sy[E] -= oyE
            self.sxx[E] = sxxE - oxE * oxE
            self.sxy[E] -= oxE * oyE
            self.syy[E] = syyE - oyE * oyE
            esE = self.esync[E] + 1
            self.esync[E] = esE
            self.fok[E] = False; self.bok[E] = False; self.pok[E] = False
            if empt.any():
                ze = E[empt]
                self.sx[ze] = 0.0; self.sy[ze] = 0.0
                self.sxx[ze] = 0.0; self.sxy[ze] = 0.0; self.syy[ze] = 0.0
                self.esync[ze] = 0
                # Victim rows that emptied: the line is deleted (slot
                # freed).  Shift rows that emptied: the scalar path
                # deletes then immediately recreates the line for the
                # same id, so keeping the zeroed row is the same state.
                n_shift = shift_rows.size
                for k in np.flatnonzero(empt):
                    if k >= n_shift:
                        r = int(E[k])
                        self._free_row(r // S, r)
            rs = E[(dom | (esE >= _SYNC)) & ~empt]
            if rs.size:
                self._resync_rows(rs)

        # Vectorized append of the new pair to each applying lane's row.
        apply_lanes = np.concatenate([shift_lanes, aug_apply])
        if apply_lanes.size:
            P = fr[apply_lanes]
            if (self.n[P] >= C - 1).any():
                self._grow_rings()
                C = self.C
            xP = x[apply_lanes]; yP = y[apply_lanes]
            t = (self.head[P] + self.n[P]) % C
            self.rx[P, t] = xP; self.ry[P, t] = yP
            self.n[P] += 1
            self.sx[P] += xP; self.sy[P] += yP
            self.sxx[P] += xP * xP; self.sxy[P] += xP * yP; self.syy[P] += yP * yP
            self.fok[P] = False; self.bok[P] = False; self.pok[P] = False
        if aug_apply.size:
            ar = fr[aug_apply]
            n1a = n1f[aug_apply]
            self.fa[ar] = a_aug[aug_apply]; self.fb[ar] = b_aug[aug_apply]
            self.fok[ar] = True
            s1 = syy1[aug_apply]
            s1c = np.where(s1 > 0.0, s1, 0.0)
            ben_a = (s1c - sse_aug[aug_apply]) / n1a
            self.ben[ar] = ben_a
            self.bok[ar] = True
            # Eager penalty: the augmented line's reduced fit equals the
            # decision's shift fit bit-for-bit (same sums, same ops) and
            # its reduced SSE equals sse_sh — so the penalty is free
            # unless the oldest pair is dominant or the value is near
            # zero (those rows stay stale and take the exact scalar
            # path at the next victim scan).
            oxa = ox[aug_apply]; oya = oy[aug_apply]
            dom_a = (oxa * oxa > 0.5 * sxx1[aug_apply]) | (oya * oya > 0.5 * s1)
            p = ben_a - (s1c - sse_sh[aug_apply]) / n1a
            scale = s1 / n1a
            nz = p < _RTOL * np.where(scale > 1.0, scale, 1.0)
            okp = ~(dom_a | nz)
            pr_ = ar[okp]
            self.pen[pr_] = p[okp]; self.pok[pr_] = True

        actions[flane[shift_lanes]] = ACTION_CODES["shift"]
        actions[flane[aug_apply]] = ACTION_CODES["augment"]
        return actions

    def _refresh_penalties(self, rows: np.ndarray) -> None:
        """Vectorized eviction-penalty refresh for the given rows."""
        n_ = self.n[rows].astype(np.float64)
        sx_ = self.sx[rows]; sy_ = self.sy[rows]
        sxx_ = self.sxx[rows]; sxy_ = self.sxy[rows]; syy_ = self.syy[rows]
        # full benefit: the current fit must be fresh first
        stale_fit = ~self.fok[rows]
        if stale_fit.any():
            a_f, b_f = _vfit(n_[stale_fit], sx_[stale_fit], sy_[stale_fit],
                             sxx_[stale_fit], sxy_[stale_fit])
            sf = rows[stale_fit]
            self.fa[sf] = a_f; self.fb[sf] = b_f; self.fok[sf] = True
        a = self.fa[rows]; b = self.fb[rows]
        mean_x = sx_ / n_; mean_y = sy_ / n_
        cxx = sxx_ - sx_ * mean_x; cxy = sxy_ - sx_ * mean_y; cyy = syy_ - sy_ * mean_y
        stale_ben = ~self.bok[rows]
        syyc = np.where(syy_ > 0.0, syy_, 0.0)
        if stale_ben.any():
            sse = _vsse(n_, cxx, cxy, cyy, mean_x, mean_y, a, b)
            full = (syyc - sse) / n_
            sb = rows[stale_ben]
            self.ben[sb] = full[stale_ben]; self.bok[sb] = True
        full = self.ben[rows]
        h = self.head[rows]
        ox = self.rx[rows, h]; oy = self.ry[rows, h]
        dominant = (ox * ox > 0.5 * sxx_) | (oy * oy > 0.5 * syy_)
        a_r, b_r = _vfit(n_ - 1.0, sx_ - ox, sy_ - oy, sxx_ - ox * ox, sxy_ - ox * oy)
        rsse = _vsse(n_, cxx, cxy, cyy, mean_x, mean_y, a_r, b_r)
        rben = (syyc - rsse) / n_
        p = full - rben
        scale = syy_ / n_
        near_zero = p < _RTOL * np.where(scale > 1.0, scale, 1.0)
        single = self.n[rows] == 1
        self.pen[rows] = np.where(single, full, p)
        self.pok[rows] = True
        exact = (~single) & (~dominant) & near_zero
        dmask = (~single) & dominant
        if dmask.any():
            # Dominant oldest pair: the reduced fit is rebuilt from the
            # actual pairs excluding the oldest, prefix-summed in ring
            # order starting at head + 1 (cumsum-all-then-subtract
            # would differ in the last bits).
            sub = rows[dmask]
            nr = self.n[sub]
            last = nr - 2
            k = np.arange(int(last.max()) + 1)
            idx = (self.head[sub][:, None] + 1 + k[None, :]) % self.C
            px = self.rx[sub[:, None], idx]
            py = self.ry[sub[:, None], idx]
            ii = np.arange(sub.size)
            rsx = px.cumsum(axis=1)[ii, last]
            rsy = py.cumsum(axis=1)[ii, last]
            rsxx = (px * px).cumsum(axis=1)[ii, last]
            rsxy = (px * py).cumsum(axis=1)[ii, last]
            a_r2, b_r2 = _vfit((nr - 1).astype(np.float64), rsx, rsy, rsxx, rsxy)
            rsse2 = _vsse(n_[dmask], cxx[dmask], cxy[dmask], cyy[dmask],
                          mean_x[dmask], mean_y[dmask], a_r2, b_r2)
            rben2 = (syyc[dmask] - rsse2) / n_[dmask]
            p2 = full[dmask] - rben2
            sc2 = scale[dmask]
            nz2 = p2 < _RTOL * np.where(sc2 > 1.0, sc2, 1.0)
            ok2 = ~nz2
            self.pen[sub[ok2]] = p2[ok2]
            exact_rows = np.concatenate(
                [np.flatnonzero(exact), np.flatnonzero(dmask)[nz2]]
            )
        else:
            exact_rows = np.flatnonzero(exact)
        for i in exact_rows:
            r = int(rows[i])
            self.pen[r] = self._exact_penalty(r)

    # -- read surface ---------------------------------------------------------

    def known_neighbors(self, c: int) -> list[int]:
        """Neighbors of cache ``c`` with at least one stored pair."""
        base = c * self.S
        return sorted(
            j for j, s in self.slot[c].items() if self.n[base + s] > 0
        )

    def cache_state(self, c: int) -> dict:
        """Canonical per-cache state for tests and digests.

        ``{"lines": {id: (pairs, sums, evictions_since_sync)},
        "total": pairs, "rr_cursor": id}`` — the same shape the per-node
        engines canonicalize to, so cross-engine equality is a dict
        comparison.
        """
        lines = {}
        for j in self.known_neighbors(c):
            r = c * self.S + self.slot[c][j]
            lines[j] = (
                tuple(self._pairs(r)),
                (int(self.n[r]), float(self.sx[r]), float(self.sy[r]),
                 float(self.sxx[r]), float(self.sxy[r]), float(self.syy[r])),
                int(self.esync[r]),
            )
        return {
            "lines": lines,
            "total": int(self.total[c]),
            "rr_cursor": int(self.rr[c]),
        }

    # -- lane lifecycle -------------------------------------------------------

    #: 1-D per-row columns grown together when a lane is added.
    _ROW_COLUMNS = ("ids", "n", "sx", "sy", "sxx", "sxy", "syy", "fa", "fb",
                    "fok", "ben", "bok", "pen", "pok", "esync", "head")

    def _grow_lines(self, new_S: int) -> None:
        """Re-lay every row column for ``new_S`` slots per cache.

        Occupied slots keep their indices (rows move from stride ``S``
        to stride ``new_S``), so the per-cache slot dicts and the dense
        idmap stay valid; the appended slots are empty (``ids == -1``).
        """
        old_S, F, C = self.S, self.F, self.C
        if new_S <= old_S:
            return
        for name in self._ROW_COLUMNS:
            col = getattr(self, name)
            if name == "ids":
                grown = np.full(F * new_S, -1, dtype=col.dtype)
            else:
                grown = np.zeros(F * new_S, dtype=col.dtype)
            grown.reshape(F, new_S)[:, :old_S] = col.reshape(F, old_S)
            setattr(self, name, grown)
        for name in ("rx", "ry"):
            col = getattr(self, name)
            grown = np.zeros((F * new_S, C), dtype=col.dtype)
            grown.reshape(F, new_S, C)[:, :old_S] = col.reshape(F, old_S, C)
            setattr(self, name, grown)
        self.S = new_S

    def forget(self, c: int, j: int) -> None:
        """Drop all history cache ``c`` holds for neighbor ``j``.

        Mirrors :meth:`NeighborBlock.forget`: the line's pairs leave the
        pair budget and the row is freed; the round-robin cursor is
        untouched (exactly what the per-node engine does).
        """
        r = self._row(c, j)
        if r is None:
            return
        self.total[c] -= int(self.n[r])
        self.n[r] = 0
        self._free_row(c, r)

    def retire_lane(self, c: int) -> None:
        """Clear cache ``c`` and mark its lane reusable by :meth:`add_lane`.

        For deployments where a cache leaves the fleet for good (a
        crashed node whose flash is wiped, a departed mobile).  Retiring
        an already-retired lane is an error in the caller.
        """
        base = c * self.S
        for j in list(self.slot[c]):
            r = base + self.slot[c][j]
            self.n[r] = 0
            self._free_row(c, r)
        self.total[c] = 0
        self.rr[c] = -1
        self._free_lanes.append(int(c))

    def add_lane(self) -> int:
        """A fresh empty cache lane: reuse a retired one or grow the fleet.

        Returns the lane index.  Growth appends ``max_lines`` zeroed
        rows to every column, so existing rows — and hence every other
        cache's state — are untouched.
        """
        if self._free_lanes:
            return self._free_lanes.pop()
        c, S = self.F, self.S
        for name in self._ROW_COLUMNS:
            col = getattr(self, name)
            if name == "ids":
                pad = np.full(S, -1, dtype=col.dtype)
            else:
                pad = np.zeros(S, dtype=col.dtype)
            setattr(self, name, np.concatenate([col, pad]))
        self.rx = np.concatenate([self.rx, np.zeros((S, self.C))])
        self.ry = np.concatenate([self.ry, np.zeros((S, self.C))])
        self.total = np.concatenate([self.total, np.zeros(1, dtype=np.int64)])
        self.rr = np.concatenate([self.rr, np.full(1, -1, dtype=np.int64)])
        self.slot.append({})
        if self.idmap is not None:
            self.idmap = np.concatenate(
                [self.idmap, np.full((1, self.idcap), -1, dtype=np.int32)]
            )
        self.F = c + 1
        self._arF = np.arange(self.F)
        return c

    def __repr__(self) -> str:
        return (
            f"ModelAwareCacheFleet(caches={self.F}, bytes={self.cache_bytes}, "
            f"max_lines={self.S}, pairs={int(self.total.sum())})"
        )
