"""Reproduction of *Snapshot Queries: Towards Data-Centric Sensor Networks*
(Yannis Kotidis, ICDE 2005).

Sensor nodes build tiny linear models of their neighbors' measurements,
elect a small set of *representative* nodes with a localized protocol
(at most six messages per node), and answer *snapshot queries* from the
representatives alone — cutting the nodes a query touches by up to 90%.

Quickstart::

    import numpy as np
    from repro import (ProtocolConfig, RandomWalkConfig, SnapshotRuntime,
                       generate_random_walk, uniform_random_topology)

    rng = np.random.default_rng(7)
    data, _ = generate_random_walk(RandomWalkConfig(n_nodes=100, n_classes=4), rng)
    topo = uniform_random_topology(100, transmission_range=1.5, rng=rng)
    net = SnapshotRuntime(topo, data, ProtocolConfig(threshold=1.0))
    net.train(duration=10)          # §6.1 warm-up: neighbors learn models
    view = net.run_election()       # the localized §5 election
    print(view.size, "representatives for", view.n_nodes, "nodes")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    DEFAULT_CACHE_BYTES,
    ElectionCoordinator,
    MaintenanceManager,
    MemberInfo,
    MultiResolutionSnapshot,
    NodeMode,
    ProtocolConfig,
    ProtocolNode,
    SnapshotRuntime,
    SnapshotView,
    SpuriousAudit,
)
from repro.data import (
    Dataset,
    RandomWalkConfig,
    WeatherConfig,
    generate_random_walk,
    generate_weather,
)
from repro.energy import PAPER_COST_MODEL, Battery, EnergyCostModel, EnergyLedger
from repro.models import (
    AbsoluteError,
    CacheLine,
    ErrorMetric,
    LinearModel,
    ModelAwareCache,
    NeighborModelStore,
    RelativeError,
    RoundRobinCache,
    SumSquaredError,
    fit_line,
    metric_by_name,
)
from repro.network import (
    GlobalLoss,
    MessageStats,
    PerLinkLoss,
    Radio,
    Topology,
    grid_topology,
    uniform_random_topology,
)
from repro.serving import (
    AdmissionRejected,
    EpochResultCache,
    QueryFrontEnd,
    ServedResult,
)
from repro.simulation import RandomSource, Simulator

__version__ = "1.0.0"

__all__ = [
    "AbsoluteError",
    "AdmissionRejected",
    "Battery",
    "CacheLine",
    "DEFAULT_CACHE_BYTES",
    "Dataset",
    "ElectionCoordinator",
    "EnergyCostModel",
    "EnergyLedger",
    "EpochResultCache",
    "ErrorMetric",
    "GlobalLoss",
    "LinearModel",
    "MaintenanceManager",
    "MemberInfo",
    "MessageStats",
    "ModelAwareCache",
    "MultiResolutionSnapshot",
    "NeighborModelStore",
    "NodeMode",
    "PAPER_COST_MODEL",
    "PerLinkLoss",
    "ProtocolConfig",
    "ProtocolNode",
    "QueryFrontEnd",
    "Radio",
    "RandomSource",
    "RandomWalkConfig",
    "RelativeError",
    "RoundRobinCache",
    "ServedResult",
    "Simulator",
    "SnapshotRuntime",
    "SnapshotView",
    "SpuriousAudit",
    "SumSquaredError",
    "Topology",
    "WeatherConfig",
    "fit_line",
    "generate_random_walk",
    "generate_weather",
    "grid_topology",
    "metric_by_name",
    "uniform_random_topology",
]
