"""Discrete-event simulation substrate.

The paper evaluates snapshot queries in a custom network simulator
(§6: "We have developed a network simulator that allows us to vary
several operational characteristics of the nodes...").  This subpackage
is that simulator's core: a deterministic event queue, a monotonic
clock, named seeded random streams and a trace log.
"""

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import PeriodicTask, Simulator
from repro.simulation.events import Event, EventCancelled, EventQueue
from repro.simulation.rng import RandomSource
from repro.simulation.tracing import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventCancelled",
    "EventQueue",
    "PeriodicTask",
    "RandomSource",
    "SimulationClock",
    "Simulator",
    "TraceLog",
    "TraceRecord",
]
