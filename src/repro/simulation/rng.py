"""Seeded random-number management.

Every stochastic component in the reproduction (radio loss, data
generators, protocol jitter, query placement) draws from a stream handed
out by :class:`RandomSource`.  Streams are derived deterministically from
a root seed plus a string name, so adding a new consumer never perturbs
the draws seen by existing ones — experiments stay comparable as the
code base grows.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomSource"]


class RandomSource:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RandomSource` objects built from the same
        seed hand out identical streams for identical names.

    Examples
    --------
    >>> src = RandomSource(7)
    >>> radio_rng = src.stream("radio")
    >>> data_rng = src.stream("data")
    >>> float(radio_rng.random()) == float(RandomSource(7).stream("radio").random())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """Root seed this source was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream object, so state is
        shared among all holders of that name — by design: a component's
        stream is a single sequence of draws.
        """
        if name not in self._streams:
            child = np.random.SeedSequence(
                self._seed, spawn_key=(_stable_hash(name),)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, resetting its state."""
        self._streams.pop(name, None)
        return self.stream(name)

    def spawn(self, index: int) -> "RandomSource":
        """Derive an independent child source, e.g. one per repetition."""
        return RandomSource(self._seed * 1_000_003 + index + 1)


def _stable_hash(name: str) -> int:
    """Deterministic 32-bit hash of ``name`` (Python's ``hash`` is salted)."""
    value = 2166136261
    for byte in name.encode("utf-8"):
        value = (value ^ byte) * 16777619 % (1 << 32)
    return value
