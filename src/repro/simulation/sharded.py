"""Sharded multi-process simulation engine.

:class:`ShardedRuntime` splits a deployment across ``n_shards`` workers,
each running an ordinary :class:`~repro.core.runtime.SnapshotRuntime`
restricted to the nodes of one spatial partition strip (see
``simulation.partition``).  Every shard holds the *full* topology — so
range and loss computations are identical to the reference — but only
instantiates, schedules and meters its own nodes.  Radio transmissions
whose receivers live in another shard leave the sender's engine as
:class:`~repro.network.handoff.RadioHandoff` records and are injected
into the destination's event queue under the sender-minted lineage
stamp, so the merged event order is exactly the single-process order.

**Conservative window protocol.**  ``advance_to(T)`` repeatedly finds
the global minimum next-event time ``m`` across shards and lets every
shard with work before ``m + L`` process events in ``[m, m + L)`` (``L``
= the radio latency, the minimum delay of any boundary-crossing
delivery).  A handoff emitted at ``tau in [m, m + L)`` arrives at
``tau + L >= m + L`` — never inside the window that produced it — so
the shards can run their windows concurrently without ever delivering
a message into another shard's past.  When no event remains at or
before ``T``, a final ``run_until(T)`` in each shard flushes the
observation barrier and parks every clock at exactly ``T``.

**Two execution modes.**

* ``mode="inline"`` keeps every shard in-process.  This is the
  conformance configuration: the controller can reach into the live
  runtimes, so merged facades (``nodes``, ``stats``, ``simulator``,
  ``coordinator``) make the sharded engine a drop-in for the invariant
  checker, the fault injector and :class:`~repro.obs.report.RunReport`,
  and per-shard checkpoints freeze/restore the whole ensemble.
* ``mode="process"`` forks one OS process per shard and drives it over
  a pipe with the same driver ops — the configuration that actually
  buys wall-clock speedup (see ``benchmarks/bench_perf_shard.py``).
  Workers are context-managed: exceptions cross the pipe as a single
  :class:`ShardWorkerError` and ``close()`` joins with a timeout,
  escalating to ``terminate``/``kill`` so a wedged worker can never
  hang the driver (or pytest).

Equivalence with the single-process reference — same whole-run state
digest, same trace records, same report rows — is pinned by
``tests/simulation/test_shard_equivalence.py``; it requires the
per-entity RNG discipline (``ProtocolConfig.rng_discipline``), under
which every random stream is owned by exactly one node and therefore by
exactly one shard.
"""

from __future__ import annotations

import inspect
import multiprocessing
import traceback
from typing import Any, Callable, Iterable, Optional

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.snapshot import SnapshotView
from repro.data.series import Dataset
from repro.energy.costs import PAPER_COST_MODEL, EnergyCostModel
from repro.models.policy import CachePolicy
from repro.network.handoff import RadioHandoff, split_by_owner
from repro.network.links import PERFECT_LINKS, LossModel
from repro.network.radio import Radio
from repro.network.topology import Topology
from repro.simulation.partition import ShardPartition, grid_partition

__all__ = ["ShardedRuntime", "ShardWorkerError"]

#: Seconds a worker gets to acknowledge ``stop`` / join before the
#: controller escalates to ``terminate`` and then ``kill``.
_JOIN_TIMEOUT = 5.0

#: Seconds the controller waits for any single RPC reply before
#: declaring the worker wedged.
_REPLY_TIMEOUT = 600.0


class ShardWorkerError(RuntimeError):
    """A shard worker failed; carries the remote traceback text."""

    def __init__(self, shard: int, detail: str) -> None:
        self.shard = shard
        self.detail = detail
        super().__init__(f"shard {shard} worker failed:\n{detail}")


def _radio_latency() -> float:
    """The radio's propagation delay — the window protocol's lookahead."""
    return inspect.signature(Radio.__init__).parameters["latency"].default


class _HandoffOutbox:
    """Collects boundary-crossing deliveries emitted by one shard's radio.

    A tiny callable object (not a bound controller method) so a shard
    runtime that references it as ``radio.handoff_sink`` stays
    independently picklable for per-shard checkpoints.
    """

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: list[RadioHandoff] = []

    def __call__(self, handoff: RadioHandoff) -> None:
        self.items.append(handoff)

    def drain(self) -> list[RadioHandoff]:
        items, self.items = self.items, []
        return items


def _wire_shard(runtime: SnapshotRuntime, shard_index: int) -> _HandoffOutbox:
    """Attach the sharded-engine hooks to a freshly built shard runtime."""
    simulator = runtime.simulator
    simulator.enable_lineage()
    # Only the shard-0 spine emits network-global observability
    # (election/maintenance round counters, spans, spine trace records);
    # per-node emissions stay with the owning shard.
    simulator.shared_emitter = shard_index == 0
    outbox = _HandoffOutbox()
    runtime.radio.shard_local_ids = runtime.local_ids
    runtime.radio.handoff_sink = outbox
    # Maintenance iterates the *global* id list so every shard consumes
    # root lineage indices in the same order (skipping remote nodes),
    # and records raw (window_total, n_alive) ingredients per round for
    # the exact-division merge.
    runtime.maintenance.global_node_ids = sorted(runtime.topology.node_ids)
    runtime.maintenance.shard_accounting = True
    return outbox


class _ShardServer:
    """Executes driver ops against one shard-local runtime.

    The same object backs both execution modes: the inline handle calls
    its methods directly; the process worker dispatches pipe messages to
    them by name.  Ops that mint driver-context (root) events call
    ``lineage.begin_batch()`` first — the controller invokes them in
    lockstep on every shard, which is what keeps root stamps aligned.
    """

    def __init__(self, runtime: SnapshotRuntime, outbox: _HandoffOutbox) -> None:
        self.runtime = runtime
        self.outbox = outbox
        self.injector = None

    # -- driver ops (lockstep across shards) -------------------------------

    def schedule_train(self, start, duration, interval) -> float:
        self.runtime.simulator.lineage.begin_batch()
        return self.runtime._schedule_train(
            start=start, duration=duration, interval=interval
        )

    def start_round(self, at) -> int:
        self.runtime.simulator.lineage.begin_batch()
        return self.runtime.coordinator.start_round(at=at)

    def start_maintenance(self) -> None:
        self.runtime.simulator.lineage.begin_batch()
        self.runtime.maintenance.start()

    def stop_maintenance(self, close_partial: bool) -> None:
        self.runtime.simulator.lineage.begin_batch()
        self.runtime.maintenance.stop(close_partial=close_partial)

    def apply_plan(self, plan, at) -> float:
        from repro.faults.injector import FaultInjector

        self.runtime.simulator.lineage.begin_batch()
        if self.injector is None:
            self.injector = FaultInjector(
                self.runtime, local_ids=self.runtime.local_ids
            )
        return self.injector.apply(plan, at=at)

    # -- window protocol ----------------------------------------------------

    def next_time(self) -> Optional[float]:
        return self.runtime.simulator.queue.peek_time()

    def run_window(self, bound: float, limit: float):
        fired = self.runtime.simulator.run_window(bound, limit)
        return fired, self.next_time(), self.outbox.drain()

    def run_until(self, limit: float):
        self.runtime.simulator.run_until(limit)
        return self.outbox.drain()

    def deliver(self, fragments: list[RadioHandoff]) -> Optional[float]:
        for fragment in fragments:
            self.runtime.radio.receive_handoff(fragment)
        return self.next_time()

    # -- state queries -------------------------------------------------------

    def now(self) -> float:
        return self.runtime.simulator.now

    def settle_delay(self) -> float:
        return self.runtime.coordinator.settle_delay

    def window_total(self) -> int:
        return self.runtime.stats.window_protocol_total()

    def message_total(self) -> int:
        return sum(self.runtime.stats.sent.values())

    def export(self) -> dict:
        from repro.persist import export_shard_state

        return export_shard_state(self.runtime)

    def raise_error(self, message: str) -> None:
        """Test hook: fail this shard (teardown regression coverage)."""
        raise RuntimeError(message)


class _InlineHandle:
    """Runs a shard server in the controller's own process."""

    def __init__(self, shard: int, server: _ShardServer) -> None:
        self.shard = shard
        self.server = server
        self._result: Any = None

    @property
    def runtime(self) -> SnapshotRuntime:
        return self.server.runtime

    def send(self, op: str, *args) -> None:
        self._result = getattr(self.server, op)(*args)

    def recv(self) -> Any:
        result, self._result = self._result, None
        return result

    def call(self, op: str, *args) -> Any:
        self.send(op, *args)
        return self.recv()

    def close(self) -> None:  # symmetry with _ProcessHandle
        pass


def _build_shard_runtime(spec: dict) -> tuple[SnapshotRuntime, _HandoffOutbox]:
    runtime = SnapshotRuntime(
        spec["topology"],
        spec["dataset"],
        config=spec["config"],
        seed=spec["seed"],
        loss_model=spec["loss_model"],
        cache_factory=spec["cache_factory"],
        battery_capacity=spec["battery_capacity"],
        cost_model=spec["cost_model"],
        keep_trace_records=spec["keep_trace_records"],
        metrics_enabled=spec["metrics_enabled"],
        batched_rounds=spec["batched_rounds"],
        local_ids=spec["members"],
    )
    outbox = _wire_shard(runtime, spec["shard_index"])
    return runtime, outbox


def _shard_worker(conn, spec: dict) -> None:
    """Process-mode worker loop: build the shard, serve ops until ``stop``."""
    try:
        runtime, outbox = _build_shard_runtime(spec)
        server = _ShardServer(runtime, outbox)
    except BaseException:
        conn.send(("error", traceback.format_exc()))
        conn.close()
        return
    conn.send(("ok", None))  # ready
    while True:
        try:
            request = conn.recv()
        except EOFError:
            break
        op, args = request
        if op == "stop":
            conn.send(("ok", None))
            break
        try:
            result = getattr(server, op)(*args)
        except BaseException:
            conn.send(("error", traceback.format_exc()))
            continue
        conn.send(("ok", result))
    conn.close()


class _ProcessHandle:
    """Drives a forked shard worker over a pipe."""

    def __init__(self, shard: int, spec: dict, context) -> None:
        self.shard = shard
        self._conn, child = context.Pipe()
        self.process = context.Process(
            target=_shard_worker,
            args=(child, spec),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        self.process.start()
        child.close()
        self._closed = False
        self.recv()  # ready handshake (raises ShardWorkerError on failure)

    def send(self, op: str, *args) -> None:
        self._conn.send((op, args))

    def recv(self) -> Any:
        if not self._conn.poll(_REPLY_TIMEOUT):
            raise ShardWorkerError(self.shard, "worker did not reply in time")
        try:
            status, payload = self._conn.recv()
        except EOFError:
            raise ShardWorkerError(self.shard, "worker pipe closed unexpectedly")
        if status == "error":
            raise ShardWorkerError(self.shard, payload)
        return payload

    def call(self, op: str, *args) -> Any:
        self.send(op, *args)
        return self.recv()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        process = self.process
        try:
            if process.is_alive():
                self._conn.send(("stop", ()))
                if self._conn.poll(_JOIN_TIMEOUT):
                    self._conn.recv()
        except (BrokenPipeError, OSError, EOFError, ShardWorkerError):
            pass
        finally:
            self._conn.close()
        process.join(_JOIN_TIMEOUT)
        if process.is_alive():
            process.terminate()
            process.join(_JOIN_TIMEOUT)
        if process.is_alive():  # pragma: no cover - terminate() suffices on POSIX
            process.kill()
            process.join(_JOIN_TIMEOUT)


# ----------------------------------------------------------------------
# merged facades (inline mode)
# ----------------------------------------------------------------------


class _FanoutSubscription:
    """Cancels one logical subscription attached to every shard's trace."""

    def __init__(self, subscriptions: list) -> None:
        self._subscriptions = subscriptions

    def cancel(self) -> None:
        for subscription in self._subscriptions:
            subscription.cancel()


class _TraceFacade:
    """Merged view of the per-shard trace logs."""

    def __init__(self, controller: "ShardedRuntime") -> None:
        self._controller = controller

    def subscribe(self, kind: str, callback) -> _FanoutSubscription:
        return _FanoutSubscription(
            [
                runtime.simulator.trace.subscribe(kind, callback)
                for runtime in self._controller._runtimes
            ]
        )

    @property
    def records(self) -> list:
        return self._controller.merged_records()


class _SimulatorFacade:
    """What report capture and the invariant checker need of an engine.

    ``schedule`` lands on shard 0 — its only caller is the checker's
    message-bound probe, which runs from inside a shard-0 trace
    subscriber (``election.started`` is a spine emission), so the event
    is minted in event context and never disturbs root-stamp lockstep.
    """

    def __init__(self, controller: "ShardedRuntime") -> None:
        self._controller = controller
        self.trace = _TraceFacade(controller)
        self.profiler = None

    @property
    def now(self) -> float:
        return self._controller.now

    @property
    def metrics(self):
        return self._controller.merged_metrics()

    def schedule(self, delay, callback, label="", priority=0):
        return self._controller._runtimes[0].simulator.schedule(
            delay, callback, label=label, priority=priority
        )


class _StatsFacade:
    """Merged message counters across shards."""

    def __init__(self, controller: "ShardedRuntime") -> None:
        self._controller = controller

    def mark(self) -> list:
        return [runtime.stats.mark() for runtime in self._controller._runtimes]

    def protocol_sent_per_node(self, since=None) -> dict[int, int]:
        runtimes = self._controller._runtimes
        marks = [None] * len(runtimes) if since is None else since
        merged: dict[int, int] = {}
        for runtime, mark in zip(runtimes, marks):
            for node, count in runtime.stats.protocol_sent_per_node(
                since=mark
            ).items():
                merged[node] = merged.get(node, 0) + count
        return merged

    def max_protocol_messages_any_node(self, since=None) -> int:
        per_node = self.protocol_sent_per_node(since=since)
        return max(per_node.values(), default=0)

    def window_protocol_total(self) -> int:
        return sum(
            runtime.stats.window_protocol_total()
            for runtime in self._controller._runtimes
        )


class _MaintenanceFacade:
    """Merged maintenance manager view (round count is replicated)."""

    def __init__(self, controller: "ShardedRuntime") -> None:
        self._controller = controller

    @property
    def rounds_completed(self) -> int:
        return self._controller._runtimes[0].maintenance.rounds_completed

    def start(self) -> None:
        self._controller.start_maintenance()

    def stop(self) -> None:
        self._controller.stop_maintenance()


class ShardedRuntime:
    """A snapshot network simulated across ``n_shards`` partitioned engines.

    Accepts the :class:`~repro.core.runtime.SnapshotRuntime` construction
    parameters plus the shard count and execution mode.  The protocol
    configuration must use ``rng_discipline="per-entity"`` — the
    discipline under which each node's random draws are independent of
    which engine hosts it.

    Use as a context manager (or call :meth:`close`) so process-mode
    workers are always reaped::

        with ShardedRuntime(topology, dataset, config, n_shards=4,
                            mode="process") as net:
            net.train(duration=10)
            net.run_election()
            digest = net.state_digest()
    """

    def __init__(
        self,
        topology: Topology,
        dataset: Dataset,
        config: Optional[ProtocolConfig] = None,
        seed: int = 0,
        loss_model: LossModel = PERFECT_LINKS,
        cache_factory: Optional[Callable[[], CachePolicy]] = None,
        battery_capacity: Optional[float] = None,
        cost_model: EnergyCostModel = PAPER_COST_MODEL,
        keep_trace_records: bool = False,
        metrics_enabled: bool = True,
        batched_rounds: bool = True,
        n_shards: int = 2,
        mode: str = "inline",
    ) -> None:
        if mode not in ("inline", "process"):
            raise ValueError(f"unknown shard mode {mode!r}")
        if config is None:
            config = ProtocolConfig(rng_discipline="per-entity")
        if config.rng_discipline != "per-entity":
            raise ValueError(
                "the sharded engine requires rng_discipline='per-entity'; "
                "got {!r}".format(config.rng_discipline)
            )
        self.topology = topology
        self.config = config
        self.seed = seed
        self.mode = mode
        self.n_shards = n_shards
        self._lookahead = _radio_latency()
        self.partition: ShardPartition = grid_partition(
            topology, n_shards, lookahead=self._lookahead
        )
        self._pending: list[RadioHandoff] = []
        self._closed = False
        specs = [
            {
                "topology": topology,
                "dataset": dataset,
                "config": config,
                "seed": seed,
                "loss_model": loss_model,
                "cache_factory": cache_factory,
                "battery_capacity": battery_capacity,
                "cost_model": cost_model,
                "keep_trace_records": keep_trace_records,
                "metrics_enabled": metrics_enabled,
                "batched_rounds": batched_rounds,
                "members": self.partition.shard_members(shard),
                "shard_index": shard,
            }
            for shard in range(n_shards)
        ]
        if mode == "inline":
            self._handles: list = []
            for shard, spec in enumerate(specs):
                runtime, outbox = _build_shard_runtime(spec)
                self._handles.append(_InlineHandle(shard, _ShardServer(runtime, outbox)))
        else:
            context = multiprocessing.get_context("fork")
            self._handles = []
            try:
                for shard, spec in enumerate(specs):
                    self._handles.append(_ProcessHandle(shard, spec, context))
            except BaseException:
                self.close()
                raise
        self.simulator = _SimulatorFacade(self)
        self.stats = _StatsFacade(self)
        self.maintenance = _MaintenanceFacade(self)

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ShardedRuntime":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Tear down every shard (idempotent; joins, then kills, workers)."""
        if self._closed:
            return
        self._closed = True
        errors = []
        for handle in self._handles:
            try:
                handle.close()
            except Exception as error:  # pragma: no cover - defensive
                errors.append(error)
        if errors:  # pragma: no cover - defensive
            raise errors[0]

    # -- internals -----------------------------------------------------------

    @property
    def _runtimes(self) -> list[SnapshotRuntime]:
        if self.mode != "inline":
            raise RuntimeError(
                "live shard state is only reachable in inline mode; "
                "process-mode shards are driven over pipes"
            )
        return [handle.runtime for handle in self._handles]

    def _lockstep(self, op: str, *args) -> list:
        """Run one driver op on every shard (concurrently in process mode)."""
        failure = None
        for handle in self._handles:
            try:
                handle.send(op, *args)
            except ShardWorkerError as error:
                failure = failure or error
        results = []
        for handle in self._handles:
            try:
                results.append(handle.recv())
            except ShardWorkerError as error:
                failure = failure or error
        if failure is not None:
            self.close()
            raise failure
        return results

    @staticmethod
    def _require_equal(values: list, what: str):
        first = values[0]
        if any(value != first for value in values[1:]):
            raise RuntimeError(f"shards disagree on {what}: {values!r}")
        return first

    def _route(self) -> list[tuple[int, list[RadioHandoff]]]:
        """Split buffered handoffs by owner; returns per-shard batches."""
        if not self._pending:
            return []
        per_shard: dict[int, list[RadioHandoff]] = {}
        for handoff in self._pending:
            for shard, fragment in split_by_owner(
                handoff, self.partition.assignment
            ).items():
                per_shard.setdefault(shard, []).append(fragment)
        self._pending.clear()
        return [(shard, per_shard[shard]) for shard in sorted(per_shard)]

    # -- the conservative window protocol ------------------------------------

    def advance_to(self, time: float) -> None:
        """Run every shard up to absolute ``time`` under windowed sync."""
        handles = self._handles
        next_times = self._lockstep("next_time")
        lookahead = self._lookahead
        while True:
            due = [t for t in next_times if t is not None and t <= time]
            if not due:
                break
            bound = min(due) + lookahead
            active = [
                shard
                for shard, t in enumerate(next_times)
                if t is not None and t < bound and t <= time
            ]
            failure = None
            for shard in active:
                try:
                    handles[shard].send("run_window", bound, time)
                except ShardWorkerError as error:
                    failure = failure or error
            for shard in active:
                try:
                    _, next_times[shard], handoffs = handles[shard].recv()
                except ShardWorkerError as error:
                    failure = failure or error
                    continue
                self._pending.extend(handoffs)
            if failure is not None:
                self.close()
                raise failure
            for shard, fragments in self._route():
                next_times[shard] = handles[shard].call("deliver", fragments)
        leftovers = self._lockstep("run_until", time)
        for handoffs in leftovers:
            if handoffs:  # pragma: no cover - protocol soundness guard
                raise RuntimeError(
                    "window protocol violation: handoffs emitted by the "
                    "final drain"
                )

    def idle_until(self, time: float) -> None:
        """Alias of :meth:`advance_to` (parity with the reference API)."""
        self.advance_to(time)

    # -- driving the network --------------------------------------------------

    @property
    def now(self) -> float:
        return self._require_equal(self._lockstep("now"), "clock")

    @property
    def nodes(self) -> dict:
        merged: dict = {}
        for runtime in self._runtimes:
            merged.update(runtime.nodes)
        return dict(sorted(merged.items()))

    @property
    def coordinator(self):
        return self._runtimes[0].coordinator

    def alive_ids(self) -> list[int]:
        ids: list[int] = []
        for runtime in self._runtimes:
            ids.extend(runtime.alive_ids())
        return sorted(ids)

    def train(
        self,
        start: Optional[float] = None,
        duration: float = 10.0,
        interval: float = 1.0,
    ) -> None:
        """The reference's §6.1 warm-up, planted identically in every shard."""
        ends = self._lockstep("schedule_train", start, duration, interval)
        self.advance_to(self._require_equal(ends, "training end"))

    def run_election(self, at: Optional[float] = None) -> Optional[SnapshotView]:
        """One global election; returns the settled snapshot (inline mode)."""
        t0 = self.now if at is None else at
        self._require_equal(self._lockstep("start_round", t0), "election epoch")
        settle = self._require_equal(
            self._lockstep("settle_delay"), "settle delay"
        )
        self.advance_to(t0 + settle)
        if self.mode == "inline":
            return self.snapshot()
        return None

    def snapshot(self) -> SnapshotView:
        return SnapshotView.capture(self.nodes)

    def start_maintenance(self) -> None:
        self._lockstep("start_maintenance")

    def stop_maintenance(self) -> None:
        """Stop maintenance with one *global* partial-round verdict.

        The reference closes a partial round iff the current global
        window saw protocol traffic; each shard only sees its own slice,
        so the controller sums the windows and passes the verdict down.
        """
        close_partial = bool(sum(self._lockstep("window_total")))
        self._lockstep("stop_maintenance", close_partial)

    def apply_fault_plan(self, plan, at: Optional[float] = None) -> float:
        """Arm ``plan`` on every shard; returns the quiescence horizon."""
        base = self.now if at is None else at
        return self._require_equal(
            self._lockstep("apply_plan", plan, base), "fault plan horizon"
        )

    def message_total(self) -> int:
        """Total messages sent across all shards (cheap bench checksum)."""
        return sum(self._lockstep("message_total"))

    # -- merged state ---------------------------------------------------------

    def shard_exports(self) -> list[dict]:
        """One :func:`~repro.persist.export_shard_state` snapshot per shard."""
        return self._lockstep("export")

    def state_digest(self):
        """The merged digest — equal to the reference's ``state_digest()``."""
        from repro.persist import merged_state_digest

        return merged_state_digest(self.shard_exports())

    def merged_records(self) -> list[tuple]:
        """All shards' trace records, normalized and globally ordered."""
        from repro.persist.digest import canonical_bytes

        records = []
        for runtime in self._runtimes:
            for record in runtime.simulator.trace.records:
                records.append(
                    (record.time, record.kind, tuple(sorted(record.payload.items())))
                )
        records.sort(key=lambda r: (r[0], r[1], canonical_bytes(r[2])))
        return records

    def merged_metrics(self):
        """One registry holding every shard's cells (reference-identical)."""
        from repro.obs.shardmetrics import export_metrics, merge_metrics

        runtimes = self._runtimes
        costs: list[float] = []
        for ingredients in zip(
            *(runtime.maintenance._round_costs for runtime in runtimes)
        ):
            total = sum(pair[0] for pair in ingredients)
            alive = sum(pair[1] for pair in ingredients)
            if alive > 0:
                costs.append(total / alive)
        return merge_metrics(
            [export_metrics(runtime.simulator.metrics) for runtime in runtimes],
            maintenance_costs=costs,
        )

    def capture_report(self, coverage=None, meta: Optional[dict] = None):
        """The merged :class:`~repro.obs.report.RunReport` of this run."""
        from repro.obs.report import RunReport

        return RunReport.capture(self, coverage=coverage, meta=meta)

    # -- checkpoint / restore -------------------------------------------------

    def checkpoint(self, path, meta: Optional[dict] = None) -> list[str]:
        """Freeze every shard to ``<path>.shard<k>``; returns the paths.

        Valid at any quiescent instant (after :meth:`advance_to`
        returns): clocks agree, outboxes are empty and no handoff is in
        flight, so each shard file is an independent, verifiable
        checkpoint of one partition.
        """
        from repro.persist import save_checkpoint

        if self._pending:  # pragma: no cover - advance_to drains these
            raise RuntimeError("cannot checkpoint with handoffs in flight")
        paths = []
        for shard, runtime in enumerate(self._runtimes):
            shard_meta = {"shard": shard, "n_shards": self.n_shards}
            if meta:
                shard_meta.update(meta)
            shard_path = f"{path}.shard{shard}"
            save_checkpoint(runtime, shard_path, meta=shard_meta)
            paths.append(shard_path)
        return paths

    @classmethod
    def restore(
        cls, path, n_shards: int, verify: bool = True
    ) -> "ShardedRuntime":
        """Rebuild a sharded run from per-shard checkpoint files."""
        from repro.persist import load_checkpoint

        runtimes = [
            load_checkpoint(f"{path}.shard{shard}", verify=verify)
            for shard in range(n_shards)
        ]
        self = cls.__new__(cls)
        first = runtimes[0]
        self.topology = first.topology
        self.config = first.config
        self.seed = first.seed
        self.mode = "inline"
        self.n_shards = n_shards
        self._lookahead = first.radio.latency
        assignment = {
            node_id: shard
            for shard, runtime in enumerate(runtimes)
            for node_id in runtime.local_ids
        }
        self.partition = ShardPartition(
            n_shards=n_shards,
            assignment=assignment,
            topology=first.topology,
            lookahead=self._lookahead,
        )
        self._pending = []
        self._closed = False
        self._handles = [
            _InlineHandle(shard, _ShardServer(runtime, runtime.radio.handoff_sink))
            for shard, runtime in enumerate(runtimes)
        ]
        self.simulator = _SimulatorFacade(self)
        self.stats = _StatsFacade(self)
        self.maintenance = _MaintenanceFacade(self)
        return self
