"""Event primitives for the discrete-event simulator.

The simulator used throughout this reproduction is a classic
priority-queue driven discrete-event engine.  An :class:`Event` couples a
firing time with an arbitrary callback; :class:`EventQueue` keeps events
ordered by ``(time, priority, sequence)`` so that simultaneous events fire
in a deterministic order (insertion order within the same priority).

Determinism matters here: the paper's experiments are averages over ten
repetitions of a randomized protocol, and reproducing its figures requires
that a given seed always yields the same trajectory.

Two kinds of entries share the queue:

* **Event-backed** — the full :class:`Event` handle with cancellation
  support, for anything a caller may hold on to (timers, periodic
  tasks);
* **transient** — fire-and-forget occurrences (the vast majority:
  message deliveries) stored in an array-backed *slab* of parallel
  columns with slots recycled through a free-list, so the hot loop
  allocates no per-event object at all.  Transients cannot be
  cancelled; that is what makes the handle unnecessary.

Both kinds order identically — the heap entry is ``(time, priority,
seq, tail)`` where ``tail`` is the :class:`Event` or the ``int`` slab
slot, and the unique ``seq`` guarantees the tail never enters a
comparison — so mixing them preserves the global firing order exactly.
"""

from __future__ import annotations

import heapq
import itertools
from array import array
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Event", "EventQueue", "EventCancelled"]


class EventCancelled(Exception):
    """Raised when interacting with an event that has been cancelled."""


@dataclass(order=False, slots=True)
class Event:
    """A scheduled occurrence in simulated time.

    Parameters
    ----------
    time:
        Simulated time at which the event fires.  Time is a float; the
        paper measures everything in abstract "time units".
    callback:
        Zero-argument callable invoked when the event fires.
    priority:
        Ties in ``time`` are broken by ascending priority.  Lower numbers
        fire first.  Protocol phases use this to order, e.g., message
        deliveries before timer expirations scheduled at the same instant.
    label:
        Free-form tag used by tracing and tests.
    """

    time: float
    callback: Callable[[], None]
    priority: int = 0
    label: str = ""
    _cancelled: bool = field(default=False, repr=False)
    _queued: bool = field(default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def fire(self) -> None:
        """Invoke the callback.

        Raises
        ------
        EventCancelled
            If the event was cancelled before firing.
        """
        if self._cancelled:
            raise EventCancelled(f"event {self.label!r} at t={self.time} was cancelled")
        self.callback()


class EventQueue:
    """A deterministic priority queue of scheduled occurrences.

    Entries are ordered by ``(time, priority, insertion sequence)``.  The
    insertion sequence guarantees FIFO behaviour among otherwise equal
    entries, which keeps simulations reproducible across runs.

    Besides full :class:`Event` objects (:meth:`push`), the queue holds
    *transient* entries (:meth:`push_transient`): uncancellable
    fire-and-forget callbacks whose time, priority, callback and label
    live in parallel slab columns indexed by an ``int`` slot carried in
    the heap entry.  Slots return to a free-list via :meth:`release`
    after firing, so steady-state transient traffic performs zero
    per-event allocation.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, "Event | int"]] = []
        self._counter = itertools.count()
        self._live = 0
        # Lineage support (sharded engine): when callers pass explicit
        # ``sortkey`` tuples, the queue records the popped entry's key
        # and priority here so the engine can stamp child events.  A
        # queue must be driven either entirely with sortkeys or
        # entirely without — int sequence numbers and stamp tuples do
        # not compare.
        self._track_meta = False
        self.last_meta: Optional[tuple] = None
        # The transient slab: parallel columns indexed by slot.
        self._slab_time = array("d")
        self._slab_priority = array("q")
        self._slab_callback: list[Optional[Callable[[], None]]] = []
        self._slab_label: list[str] = []
        self._free: list[int] = []

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event, sortkey: Optional[tuple] = None) -> Event:
        """Schedule ``event`` and return it (for later cancellation).

        ``sortkey`` replaces the insertion sequence number as the
        tie-breaker; the sharded engine passes lineage stamps here so
        tied events fire in the same global order a single-process run
        would have inserted them in.
        """
        if event.time < 0:
            raise ValueError(f"cannot schedule event at negative time {event.time}")
        key = next(self._counter) if sortkey is None else sortkey
        heapq.heappush(self._heap, (event.time, event.priority, key, event))
        event._queued = True
        self._live += 1
        return event

    def push_transient(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
        sortkey: Optional[tuple] = None,
    ) -> None:
        """Schedule a fire-and-forget occurrence; no handle, no cancellation.

        Orders exactly like an :meth:`push`-ed event with the same
        ``(time, priority)`` — both draw from the one sequence counter —
        but costs a slab slot instead of an :class:`Event` allocation.
        """
        if time < 0:
            raise ValueError(f"cannot schedule event at negative time {time}")
        if self._free:
            slot = self._free.pop()
            self._slab_time[slot] = time
            self._slab_priority[slot] = priority
            self._slab_callback[slot] = callback
            self._slab_label[slot] = label
        else:
            slot = len(self._slab_callback)
            self._slab_time.append(time)
            self._slab_priority.append(priority)
            self._slab_callback.append(callback)
            self._slab_label.append(label)
        key = next(self._counter) if sortkey is None else sortkey
        heapq.heappush(self._heap, (time, priority, key, slot))
        self._live += 1

    def release(self, slot: int) -> None:
        """Recycle a transient's slab slot after its callback was consumed."""
        self._slab_callback[slot] = None  # drop the reference promptly
        self._free.append(slot)

    def cancel(self, event: Event) -> None:
        """Cancel a queued event; it will be skipped when reached.

        Cancelling an event that already fired (e.g. a periodic task
        stopping itself from inside its own callback) is a no-op for
        the live counter — only events still in the heap count.
        """
        if not event.cancelled:
            event.cancel()
            if event._queued:
                self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def peek_entry(self) -> Optional[tuple[float, int]]:
        """``(time, priority)`` of the next live event, or ``None`` if empty.

        The observation barrier (see :meth:`Simulator.step`) needs the
        priority as well as the time to decide whether the upcoming
        event continues the current same-instant delivery burst.
        """
        self._drop_cancelled()
        if not self._heap:
            return None
        head = self._heap[0]
        return head[0], head[1]

    def pop(self) -> Event:
        """Remove and return the next live event.

        A transient at the head is materialized into a throwaway
        :class:`Event` (and its slot recycled) so existing callers see
        a uniform interface; the allocation-free path is
        :meth:`pop_next`.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time, priority, key, tail = heapq.heappop(self._heap)
        self._live -= 1
        if self._track_meta:
            self.last_meta = (priority, key)
        if type(tail) is int:
            event = Event(
                time=time,
                callback=self._slab_callback[tail],
                priority=priority,
                label=self._slab_label[tail],
            )
            self.release(tail)
            return event
        tail._queued = False
        return tail

    def pop_next(self) -> tuple[float, Callable[[], None], str, int]:
        """Remove the next live entry as ``(time, callback, label, slot)``.

        The uniform hot-loop accessor: ``slot`` is ``-1`` for
        Event-backed entries and the slab slot for transients — the
        caller must :meth:`release` non-negative slots once done with
        the callback and label.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        time, priority, key, tail = heapq.heappop(self._heap)
        self._live -= 1
        if self._track_meta:
            self.last_meta = (priority, key)
        if type(tail) is int:
            return time, self._slab_callback[tail], self._slab_label[tail], tail
        tail._queued = False
        return time, tail.callback, tail.label, -1

    def clear(self) -> None:
        """Drop every queued event.

        Dropped events are marked dequeued so a later :meth:`cancel` on
        one is a no-op for the live counter instead of driving it
        negative (which would corrupt ``__len__``/``__bool__``).  The
        transient slab is reset wholesale.
        """
        for __, __, __, tail in self._heap:
            if type(tail) is not int:
                tail._queued = False
        self._heap.clear()
        self._live = 0
        self._slab_time = array("d")
        self._slab_priority = array("q")
        self._slab_callback.clear()
        self._slab_label.clear()
        self._free.clear()

    def _drop_cancelled(self) -> None:
        # Transients (int tails) cannot be cancelled, so only
        # Event-backed heads can need dropping.
        heap = self._heap
        while heap:
            tail = heap[0][3]
            if type(tail) is int or not tail.cancelled:
                return
            heapq.heappop(heap)
            tail._queued = False
