"""Event primitives for the discrete-event simulator.

The simulator used throughout this reproduction is a classic
priority-queue driven discrete-event engine.  An :class:`Event` couples a
firing time with an arbitrary callback; :class:`EventQueue` keeps events
ordered by ``(time, priority, sequence)`` so that simultaneous events fire
in a deterministic order (insertion order within the same priority).

Determinism matters here: the paper's experiments are averages over ten
repetitions of a randomized protocol, and reproducing its figures requires
that a given seed always yields the same trajectory.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Event", "EventQueue", "EventCancelled"]


class EventCancelled(Exception):
    """Raised when interacting with an event that has been cancelled."""


@dataclass(order=False, slots=True)
class Event:
    """A scheduled occurrence in simulated time.

    Parameters
    ----------
    time:
        Simulated time at which the event fires.  Time is a float; the
        paper measures everything in abstract "time units".
    callback:
        Zero-argument callable invoked when the event fires.
    priority:
        Ties in ``time`` are broken by ascending priority.  Lower numbers
        fire first.  Protocol phases use this to order, e.g., message
        deliveries before timer expirations scheduled at the same instant.
    label:
        Free-form tag used by tracing and tests.
    """

    time: float
    callback: Callable[[], None]
    priority: int = 0
    label: str = ""
    _cancelled: bool = field(default=False, repr=False)
    _queued: bool = field(default=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the queue skips it when popped."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def fire(self) -> None:
        """Invoke the callback.

        Raises
        ------
        EventCancelled
            If the event was cancelled before firing.
        """
        if self._cancelled:
            raise EventCancelled(f"event {self.label!r} at t={self.time} was cancelled")
        self.callback()


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects.

    Events are ordered by ``(time, priority, insertion sequence)``.  The
    insertion sequence guarantees FIFO behaviour among otherwise equal
    events, which keeps simulations reproducible across runs.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        """Number of *live* (non-cancelled) events still queued."""
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> Event:
        """Schedule ``event`` and return it (for later cancellation)."""
        if event.time < 0:
            raise ValueError(f"cannot schedule event at negative time {event.time}")
        heapq.heappush(self._heap, (event.time, event.priority, next(self._counter), event))
        event._queued = True
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a queued event; it will be skipped when reached.

        Cancelling an event that already fired (e.g. a periodic task
        stopping itself from inside its own callback) is a no-op for
        the live counter — only events still in the heap count.
        """
        if not event.cancelled:
            event.cancel()
            if event._queued:
                self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Firing time of the next live event, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Event:
        """Remove and return the next live event.

        Raises
        ------
        IndexError
            If the queue holds no live events.
        """
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty event queue")
        __, __, __, event = heapq.heappop(self._heap)
        event._queued = False
        self._live -= 1
        return event

    def clear(self) -> None:
        """Drop every queued event.

        Dropped events are marked dequeued so a later :meth:`cancel` on
        one is a no-op for the live counter instead of driving it
        negative (which would corrupt ``__len__``/``__bool__``).
        """
        for __, __, __, event in self._heap:
            event._queued = False
        self._heap.clear()
        self._live = 0

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][3].cancelled:
            __, __, __, event = heapq.heappop(self._heap)
            event._queued = False
