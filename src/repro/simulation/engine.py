"""The discrete-event simulation engine.

:class:`Simulator` glues the event queue, clock, RNG source and trace log
together and exposes the scheduling API the rest of the reproduction is
written against:

* ``schedule(delay, callback)`` / ``schedule_at(time, callback)``;
* ``every(period, callback)`` for periodic tasks (heartbeats, snapshot
  maintenance rounds, §5.1 of the paper);
* ``run()`` / ``run_until(t)`` / ``step()`` drivers.

The engine is deliberately tiny — the paper's network operates in
abstract time units and nothing in its evaluation needs process-style
coroutines — but it is a complete, reusable DES core with cancellation,
deterministic tie-breaking and bounded execution.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Optional

from repro.obs.profiler import EventProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.simulation.clock import SimulationClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.rng import RandomSource
from repro.simulation.tracing import TraceLog

__all__ = ["Simulator", "PeriodicTask"]


class PeriodicTask:
    """Handle for a repeating callback registered via :meth:`Simulator.every`."""

    def __init__(
        self,
        simulator: "Simulator",
        period: float,
        callback: Callable[[], None],
        label: str,
        priority: int,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._simulator = simulator
        self._period = period
        self._callback = callback
        self._label = label
        self._priority = priority
        self._stopped = False
        self._pending: Optional[Event] = None

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def start(self, first_delay: Optional[float] = None) -> "PeriodicTask":
        """Arm the task; first firing after ``first_delay`` (default: one period).

        A stopped task may be re-armed: ``start`` clears the stopped
        flag and schedules afresh.

        Raises
        ------
        RuntimeError
            If the task is already armed — re-arming would leak the
            first pending event, double-firing the callback.
        """
        if self._pending is not None:
            raise RuntimeError(
                f"periodic task {self._label!r} is already armed; "
                "stop() it before starting again"
            )
        self._stopped = False
        delay = self._period if first_delay is None else first_delay
        self._pending = self._simulator.schedule(
            delay, self._tick, label=self._label, priority=self._priority
        )
        return self

    def stop(self) -> None:
        """Cancel the task; no further firings occur."""
        self._stopped = True
        if self._pending is not None:
            self._simulator.cancel(self._pending)
            self._pending = None

    def _tick(self) -> None:
        if self._stopped:
            return
        # Clear the handle first so a callback that stops the task does
        # not try to cancel this already-fired event.
        self._pending = None
        self._callback()
        if not self._stopped:
            self._pending = self._simulator.schedule(
                self._period, self._tick, label=self._label, priority=self._priority
            )


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams handed out by :attr:`random`.
    keep_trace_records:
        Whether the trace log stores full records or only counters.
    metrics_enabled:
        Gates the non-essential record paths of :attr:`metrics` and the
        span tracer (essential accounting the protocol reads back, like
        message windows, always records).
    """

    def __init__(
        self,
        seed: int = 0,
        keep_trace_records: bool = True,
        metrics_enabled: bool = True,
    ) -> None:
        self.clock = SimulationClock()
        self.queue = EventQueue()
        self.random = RandomSource(seed)
        self.trace = TraceLog(keep_records=keep_trace_records)
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self.spans = SpanTracer(self.trace, self.clock, self.metrics)
        #: Wall-clock profiler; ``None`` keeps the hot loop untouched.
        self.profiler: Optional[EventProfiler] = None
        #: Optional observation barrier (see ``core.round_batch``): an
        #: object with ``pending`` (truthy while observations are
        #: queued), ``before_event(time, priority)`` and ``flush()``.
        #: The hot loop consults it *between* events, so flushing a
        #: batch never schedules — or consumes — an event of its own
        #: and the event count / queue sequence stay identical to an
        #: unbatched run.
        self.observation_barrier = None
        self._events_processed = 0

    def enable_profiling(self) -> EventProfiler:
        """Attach (or return) the wall-clock event profiler."""
        if self.profiler is None:
            self.profiler = EventProfiler()
        return self.profiler

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback, label=label, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        event = Event(time=time, callback=callback, label=label, priority=priority)
        return self.queue.push(event)

    def schedule_transient(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> None:
        """Schedule a fire-and-forget callback ``delay`` units from now.

        No :class:`Event` handle is created, so the occurrence cannot be
        cancelled — the right shape for the hot high-volume paths
        (message deliveries) where nothing ever holds a reference.  The
        entry lands in the queue's slab (see
        :meth:`EventQueue.push_transient`) and orders exactly as
        :meth:`schedule` would.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.queue.push_transient(
            self.now + delay, callback, priority=priority, label=label
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
        first_delay: Optional[float] = None,
    ) -> PeriodicTask:
        """Register and start a periodic task firing every ``period`` units."""
        task = PeriodicTask(self, period, callback, label, priority)
        return task.start(first_delay=first_delay)

    def step(self) -> bool:
        """Process exactly one event.  Returns ``False`` if the queue is empty."""
        barrier = self.observation_barrier
        if not self.queue:
            if barrier is not None and barrier.pending:
                barrier.flush()
            return False
        if barrier is not None and barrier.pending:
            # Flush queued observations before any event that is not
            # part of the same same-instant delivery burst, so every
            # later event observes exactly the cache state the scalar
            # path would have built during the deliveries.
            barrier.before_event(*self.queue.peek_entry())
        time, callback, label, slot = self.queue.pop_next()
        self.clock.advance_to(time)
        if slot >= 0:
            # Recycle the transient's slab slot before firing: the
            # callback and label are already in hand, and releasing
            # first keeps the slot from leaking if the callback raises.
            self.queue.release(slot)
        profiler = self.profiler
        if profiler is None:
            callback()
        else:
            started = perf_counter()
            callback()
            profiler.record(label, perf_counter() - started)
        self._events_processed += 1
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire); returns count."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run all events with firing time ``<= time``; advance clock to ``time``.

        The clock is left at exactly ``time`` even if the last event fired
        earlier, matching the usual "run for this long" semantics.  When
        ``max_events`` stops the run early, the clock instead stays at
        the last fired event — events due before ``time`` are still
        queued, and jumping past them would make resuming the window
        (``run_until(time)`` again) fire them in the clock's past.
        """
        if time < self.now:
            raise ValueError(f"cannot run until the past ({time} < {self.now})")
        fired = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            fired += 1
            if max_events is not None and fired >= max_events:
                # Early cut: leave queued observations pending — they
                # checkpoint with the run and flush on resume, exactly
                # as the uninterrupted run would at its next step.
                return fired
        barrier = self.observation_barrier
        if barrier is not None and barrier.pending:
            # The window closed with deliveries still queued for batch
            # application; apply them before handing control back so
            # top-level readers (queries, digests) see settled caches.
            barrier.flush()
        if self.now < time:
            self.clock.advance_to(time)
        return fired

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, path, meta: Optional[dict] = None):
        """Freeze the engine (clock, queue, RNG streams, trace, metrics)
        to a checkpoint file; returns the saved :class:`StateDigest`.

        Local import so the engine stays importable without the persist
        subsystem's dependencies loaded.
        """
        from repro.persist import save_checkpoint

        return save_checkpoint(self, path, meta=meta)

    @classmethod
    def restore(cls, path, verify: bool = True) -> "Simulator":
        """Load a simulator previously saved with :meth:`checkpoint`."""
        from repro.persist import load_checkpoint

        obj = load_checkpoint(path, verify=verify)
        if not isinstance(obj, cls):
            raise TypeError(
                f"checkpoint at {path} holds a {type(obj).__name__}, "
                f"expected a {cls.__name__}"
            )
        return obj
