"""The discrete-event simulation engine.

:class:`Simulator` glues the event queue, clock, RNG source and trace log
together and exposes the scheduling API the rest of the reproduction is
written against:

* ``schedule(delay, callback)`` / ``schedule_at(time, callback)``;
* ``every(period, callback)`` for periodic tasks (heartbeats, snapshot
  maintenance rounds, §5.1 of the paper);
* ``run()`` / ``run_until(t)`` / ``step()`` drivers.

The engine is deliberately tiny — the paper's network operates in
abstract time units and nothing in its evaluation needs process-style
coroutines — but it is a complete, reusable DES core with cancellation,
deterministic tie-breaking and bounded execution.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Callable, Optional

from repro.obs.profiler import EventProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanTracer
from repro.simulation.clock import SimulationClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.rng import RandomSource
from repro.simulation.tracing import TraceLog

__all__ = ["Simulator", "PeriodicTask", "LineageContext"]


class LineageContext:
    """Mints the per-event *lineage stamps* the sharded engine sorts by.

    A single-process run breaks ``(time, priority)`` ties by insertion
    sequence.  Shards cannot share a sequence counter, so instead every
    scheduled event carries a stamp that *reconstructs* the insertion
    order: events created while event ``E`` fired are tagged with ``E``'s
    firing coordinates ``(time, priority, stamp)`` — which totally order
    parent firings — followed by a per-firing segment/branch/index
    triple that orders siblings.  Driver-context roots are tagged with
    their insertion time, a sentinel priority larger than any event
    priority (a batch of roots is inserted *after* every event that
    fired up to that instant), the RPC-batch index and a root counter.

    Two shards replaying the same driver-RPC sequence therefore mint
    *identical* stamps for replicated events (deduplicated at digest
    merge) and *correctly interleaved* stamps for owner-local events —
    the invariant the shard-conformance suite pins.

    Per-entity loops inside replicated events (a phase iterating local
    nodes) must wrap each iteration in ``fanout``/``branch`` so sibling
    stamps align on the entity id rather than a shard-local counter.
    """

    #: Sentinel priority for driver-context roots; must exceed every
    #: real event priority so same-instant in-run creations sort first.
    ROOT_PRIORITY = 1 << 30

    __slots__ = (
        "_batch", "_root_index", "_origin", "_seg", "_fan_seg", "_hint", "_fan_i",
    )

    def __init__(self) -> None:
        self._batch = 0
        self._root_index = 0
        self._origin: Optional[tuple] = None
        self._seg = 0
        self._fan_seg: Optional[int] = None
        self._hint = -1
        self._fan_i = 0

    def begin_batch(self) -> None:
        """Mark a driver-RPC boundary; every shard calls this in lockstep."""
        self._batch += 1
        self._root_index = 0

    def next_stamp(self, now: float) -> tuple:
        """Mint the stamp for one schedule call at simulated time ``now``."""
        origin = self._origin
        if origin is None:  # driver context → root stamp
            index = self._root_index
            self._root_index = index + 1
            return ((now, self.ROOT_PRIORITY, (self._batch,)), 0, -1, index)
        if self._fan_seg is not None:
            index = self._fan_i
            self._fan_i = index + 1
            return (origin, self._fan_seg, self._hint, index)
        seg = self._seg
        self._seg = seg + 1
        return (origin, seg, -1, 0)

    def skip_root(self) -> None:
        """Consume one root index for a schedule another shard owns."""
        if self._origin is not None:
            raise RuntimeError("skip_root is only valid in driver context")
        self._root_index += 1

    def enter_event(self, time: float, priority: int, stamp: tuple) -> None:
        self._origin = (time, priority, stamp)
        self._seg = 0
        self._fan_seg = None
        self._hint = -1
        self._fan_i = 0

    def exit_event(self) -> None:
        self._origin = None

    # -- fan-out scopes (hot-loop friendly begin/end pairs) ----------------

    def fan_begin(self) -> tuple:
        token = (self._fan_seg, self._hint, self._fan_i)
        self._fan_seg = self._seg
        self._seg += 1
        return token

    def fan_end(self, token: tuple) -> None:
        self._fan_seg, self._hint, self._fan_i = token

    def branch_begin(self, hint: int) -> tuple:
        token = (self._hint, self._fan_i)
        self._hint = hint
        self._fan_i = 0
        return token

    def branch_end(self, token: tuple) -> None:
        self._hint, self._fan_i = token


class PeriodicTask:
    """Handle for a repeating callback registered via :meth:`Simulator.every`."""

    def __init__(
        self,
        simulator: "Simulator",
        period: float,
        callback: Callable[[], None],
        label: str,
        priority: int,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._simulator = simulator
        self._period = period
        self._callback = callback
        self._label = label
        self._priority = priority
        self._stopped = False
        self._pending: Optional[Event] = None

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has been called."""
        return self._stopped

    def start(self, first_delay: Optional[float] = None) -> "PeriodicTask":
        """Arm the task; first firing after ``first_delay`` (default: one period).

        A stopped task may be re-armed: ``start`` clears the stopped
        flag and schedules afresh.

        Raises
        ------
        RuntimeError
            If the task is already armed — re-arming would leak the
            first pending event, double-firing the callback.
        """
        if self._pending is not None:
            raise RuntimeError(
                f"periodic task {self._label!r} is already armed; "
                "stop() it before starting again"
            )
        self._stopped = False
        delay = self._period if first_delay is None else first_delay
        self._pending = self._simulator.schedule(
            delay, self._tick, label=self._label, priority=self._priority
        )
        return self

    def stop(self) -> None:
        """Cancel the task; no further firings occur."""
        self._stopped = True
        if self._pending is not None:
            self._simulator.cancel(self._pending)
            self._pending = None

    def _tick(self) -> None:
        if self._stopped:
            return
        # Clear the handle first so a callback that stops the task does
        # not try to cancel this already-fired event.
        self._pending = None
        self._callback()
        if not self._stopped:
            self._pending = self._simulator.schedule(
                self._period, self._tick, label=self._label, priority=self._priority
            )


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for all random streams handed out by :attr:`random`.
    keep_trace_records:
        Whether the trace log stores full records or only counters.
    metrics_enabled:
        Gates the non-essential record paths of :attr:`metrics` and the
        span tracer (essential accounting the protocol reads back, like
        message windows, always records).
    """

    def __init__(
        self,
        seed: int = 0,
        keep_trace_records: bool = True,
        metrics_enabled: bool = True,
    ) -> None:
        self.clock = SimulationClock()
        self.queue = EventQueue()
        self.random = RandomSource(seed)
        self.trace = TraceLog(keep_records=keep_trace_records)
        self.metrics = MetricsRegistry(enabled=metrics_enabled)
        self.spans = SpanTracer(self.trace, self.clock, self.metrics)
        #: Wall-clock profiler; ``None`` keeps the hot loop untouched.
        self.profiler: Optional[EventProfiler] = None
        #: Optional observation barrier (see ``core.round_batch``): an
        #: object with ``pending`` (truthy while observations are
        #: queued), ``before_event(time, priority)`` and ``flush()``.
        #: The hot loop consults it *between* events, so flushing a
        #: batch never schedules — or consumes — an event of its own
        #: and the event count / queue sequence stay identical to an
        #: unbatched run.
        self.observation_barrier = None
        self._events_processed = 0
        #: Lineage stamping (sharded engine); ``None`` keeps the classic
        #: insertion-sequence tie-breaking and the hot loop untouched.
        self.lineage: Optional[LineageContext] = None
        #: Whether this engine owns shared (network-global) emissions —
        #: election/maintenance round counters, spans and trace spine
        #: records.  Shard workers other than shard 0 set this to False
        #: so merged observability matches a single-process run.
        self.shared_emitter = True

    def enable_lineage(self) -> LineageContext:
        """Switch scheduling to lineage stamps (idempotent).

        Must be called before anything is scheduled — stamp tuples and
        plain sequence numbers cannot share one heap.
        """
        if self.lineage is None:
            if self.queue._heap:
                raise RuntimeError("cannot enable lineage on a non-empty queue")
            self.lineage = LineageContext()
            self.queue._track_meta = True
        return self.lineage

    @contextmanager
    def fanout(self):
        """Scope one per-entity loop inside a replicated event."""
        lineage = self.lineage
        if lineage is None:
            yield
            return
        token = lineage.fan_begin()
        try:
            yield
        finally:
            lineage.fan_end(token)

    @contextmanager
    def branch(self, hint: int):
        """Scope one entity's iteration within a :meth:`fanout` loop."""
        lineage = self.lineage
        if lineage is None:
            yield
            return
        token = lineage.branch_begin(hint)
        try:
            yield
        finally:
            lineage.branch_end(token)

    def enable_profiling(self) -> EventProfiler:
        """Attach (or return) the wall-clock event profiler."""
        if self.profiler is None:
            self.profiler = EventProfiler()
        return self.profiler

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events fired since construction."""
        return self._events_processed

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback, label=label, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to fire at absolute time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        event = Event(time=time, callback=callback, label=label, priority=priority)
        lineage = self.lineage
        if lineage is None:
            return self.queue.push(event)
        return self.queue.push(event, sortkey=lineage.next_stamp(self.now))

    def schedule_transient(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
    ) -> None:
        """Schedule a fire-and-forget callback ``delay`` units from now.

        No :class:`Event` handle is created, so the occurrence cannot be
        cancelled — the right shape for the hot high-volume paths
        (message deliveries) where nothing ever holds a reference.  The
        entry lands in the queue's slab (see
        :meth:`EventQueue.push_transient`) and orders exactly as
        :meth:`schedule` would.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        lineage = self.lineage
        sortkey = None if lineage is None else lineage.next_stamp(self.now)
        self.queue.push_transient(
            self.now + delay, callback, priority=priority, label=label,
            sortkey=sortkey,
        )

    def inject_transient_at(
        self,
        time: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
        sortkey: Optional[tuple] = None,
    ) -> None:
        """Insert a transient with an externally minted lineage stamp.

        The shard controller uses this to deliver boundary-crossing
        radio handoffs: the *sending* shard minted the stamp, so the
        receiving shard must insert it verbatim rather than stamping a
        fresh local one.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        self.queue.push_transient(
            time, callback, priority=priority, label=label, sortkey=sortkey
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event."""
        self.queue.cancel(event)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        label: str = "",
        priority: int = 0,
        first_delay: Optional[float] = None,
    ) -> PeriodicTask:
        """Register and start a periodic task firing every ``period`` units."""
        task = PeriodicTask(self, period, callback, label, priority)
        return task.start(first_delay=first_delay)

    def step(self) -> bool:
        """Process exactly one event.  Returns ``False`` if the queue is empty."""
        barrier = self.observation_barrier
        if not self.queue:
            if barrier is not None and barrier.pending:
                barrier.flush()
            return False
        if barrier is not None and barrier.pending:
            # Flush queued observations before any event that is not
            # part of the same same-instant delivery burst, so every
            # later event observes exactly the cache state the scalar
            # path would have built during the deliveries.
            barrier.before_event(*self.queue.peek_entry())
        time, callback, label, slot = self.queue.pop_next()
        self.clock.advance_to(time)
        if slot >= 0:
            # Recycle the transient's slab slot before firing: the
            # callback and label are already in hand, and releasing
            # first keeps the slot from leaking if the callback raises.
            self.queue.release(slot)
        lineage = self.lineage
        profiler = self.profiler
        if lineage is not None:
            priority, stamp = self.queue.last_meta
            lineage.enter_event(time, priority, stamp)
            try:
                callback()
            finally:
                lineage.exit_event()
        elif profiler is None:
            callback()
        else:
            started = perf_counter()
            callback()
            profiler.record(label, perf_counter() - started)
        self._events_processed += 1
        return True

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire); returns count."""
        fired = 0
        while self.step():
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        return fired

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run all events with firing time ``<= time``; advance clock to ``time``.

        The clock is left at exactly ``time`` even if the last event fired
        earlier, matching the usual "run for this long" semantics.  When
        ``max_events`` stops the run early, the clock instead stays at
        the last fired event — events due before ``time`` are still
        queued, and jumping past them would make resuming the window
        (``run_until(time)`` again) fire them in the clock's past.
        """
        if time < self.now:
            raise ValueError(f"cannot run until the past ({time} < {self.now})")
        fired = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            fired += 1
            if max_events is not None and fired >= max_events:
                # Early cut: leave queued observations pending — they
                # checkpoint with the run and flush on resume, exactly
                # as the uninterrupted run would at its next step.
                return fired
        barrier = self.observation_barrier
        if barrier is not None and barrier.pending:
            # The window closed with deliveries still queued for batch
            # application; apply them before handing control back so
            # top-level readers (queries, digests) see settled caches.
            barrier.flush()
        if self.now < time:
            self.clock.advance_to(time)
        return fired

    def run_window(self, bound: float, limit: float) -> int:
        """Process events with ``time < bound`` (and ``<= limit``) only.

        The conservative-sync inner loop of the sharded engine: unlike
        :meth:`run_until` it neither advances the clock to the bound nor
        flushes a pending observation barrier — the window may close
        mid-burst, and both the clock position and the queued
        observations must look exactly as they would mid-run in a
        single-process execution.  Returns the number of events fired.
        """
        fired = 0
        queue = self.queue
        while True:
            next_time = queue.peek_time()
            if next_time is None or next_time >= bound or next_time > limit:
                break
            self.step()
            fired += 1
        return fired

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self, path, meta: Optional[dict] = None):
        """Freeze the engine (clock, queue, RNG streams, trace, metrics)
        to a checkpoint file; returns the saved :class:`StateDigest`.

        Local import so the engine stays importable without the persist
        subsystem's dependencies loaded.
        """
        from repro.persist import save_checkpoint

        return save_checkpoint(self, path, meta=meta)

    @classmethod
    def restore(cls, path, verify: bool = True) -> "Simulator":
        """Load a simulator previously saved with :meth:`checkpoint`."""
        from repro.persist import load_checkpoint

        obj = load_checkpoint(path, verify=verify)
        if not isinstance(obj, cls):
            raise TypeError(
                f"checkpoint at {path} holds a {type(obj).__name__}, "
                f"expected a {cls.__name__}"
            )
        return obj
