"""Simulated clock.

The clock is owned by the :class:`~repro.simulation.engine.Simulator` and
only ever advances (monotonically) as events are processed.  Components
hold a reference to the clock instead of the whole simulator when all they
need is the current time — e.g. the snapshot protocol stamps elections
with ``clock.now`` to detect *spurious representatives* (paper §3).
"""

from __future__ import annotations

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonic simulated time source measured in abstract time units."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time``.

        Raises
        ------
        ValueError
            If ``time`` lies in the past; simulated time never rewinds.
        """
        if time < self._now:
            raise ValueError(f"cannot rewind clock from {self._now} to {time}")
        self._now = float(time)

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now})"
