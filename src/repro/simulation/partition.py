"""Spatial partitioning of a topology into simulation shards.

The sharded engine (``simulation.sharded``) assigns every node to
exactly one worker.  Because radio neighborhoods are unit disks, a
*spatial* split keeps most links internal: :func:`grid_partition` sorts
nodes by position and cuts the deployment into near-equal contiguous
strips, so only transmissions whose disk straddles a cut line become
boundary handoffs.

The resulting :class:`ShardPartition` is a value object the
shard-conformance property suite pins down: every node in exactly one
shard, intra-shard and boundary links tiling the topology's directed
link set, and symmetric neighbor bookkeeping between adjacent shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.topology import Topology

__all__ = ["ShardPartition", "grid_partition"]


@dataclass(frozen=True)
class ShardPartition:
    """An assignment of every topology node to one shard.

    Attributes
    ----------
    n_shards:
        Number of shards; shard ids are ``0..n_shards-1``.
    assignment:
        ``node_id -> shard_id`` for every topology node.
    lookahead:
        The conservative sync window the owning engine may advance a
        shard ahead of its neighbors: the minimum latency of any
        boundary-crossing radio delivery.  Must be positive whenever
        any link crosses a boundary.
    """

    n_shards: int
    assignment: dict[int, int]
    lookahead: float
    _shards: tuple[tuple[int, ...], ...] = field(init=False, repr=False)
    _boundary: tuple[tuple[int, int], ...] = field(init=False, repr=False)
    _intra: tuple[tuple[int, int], ...] = field(init=False, repr=False)

    def __init__(
        self,
        n_shards: int,
        assignment: dict[int, int],
        topology: Topology,
        lookahead: float,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"need a positive shard count, got {n_shards}")
        missing = [i for i in topology.node_ids if i not in assignment]
        if missing:
            raise ValueError(f"nodes without a shard: {missing[:5]}...")
        extra = [i for i in assignment if i not in topology.node_ids]
        if extra:
            raise ValueError(f"assigned ids outside the topology: {extra[:5]}...")
        bad = {s for s in assignment.values() if not 0 <= s < n_shards}
        if bad:
            raise ValueError(f"shard ids out of range: {sorted(bad)}")
        members: list[list[int]] = [[] for _ in range(n_shards)]
        for node_id in sorted(assignment):
            members[assignment[node_id]].append(node_id)
        intra = []
        boundary = []
        for sender, receiver in topology.directed_links():
            if assignment[sender] == assignment[receiver]:
                intra.append((sender, receiver))
            else:
                boundary.append((sender, receiver))
        if boundary and lookahead <= 0:
            raise ValueError(
                f"lookahead must be positive when links cross shard "
                f"boundaries, got {lookahead}"
            )
        object.__setattr__(self, "n_shards", n_shards)
        object.__setattr__(self, "assignment", dict(assignment))
        object.__setattr__(self, "lookahead", float(lookahead))
        object.__setattr__(
            self, "_shards", tuple(tuple(ids) for ids in members)
        )
        object.__setattr__(self, "_boundary", tuple(boundary))
        object.__setattr__(self, "_intra", tuple(intra))

    def owner(self, node_id: int) -> int:
        """The shard owning ``node_id``."""
        return self.assignment[node_id]

    def shard_members(self, shard: int) -> tuple[int, ...]:
        """Node ids owned by ``shard``, ascending."""
        return self._shards[shard]

    @property
    def shards(self) -> tuple[tuple[int, ...], ...]:
        """Per-shard member tuples, indexed by shard id."""
        return self._shards

    @property
    def boundary_links(self) -> tuple[tuple[int, int], ...]:
        """Directed radio links whose endpoints live in different shards."""
        return self._boundary

    @property
    def intra_links(self) -> tuple[tuple[int, int], ...]:
        """Directed radio links contained within a single shard."""
        return self._intra

    def neighbor_shards(self, shard: int) -> frozenset[int]:
        """Shards exchanging boundary traffic with ``shard`` (either way)."""
        neighbors = set()
        for sender, receiver in self._boundary:
            if self.assignment[sender] == shard:
                neighbors.add(self.assignment[receiver])
            elif self.assignment[receiver] == shard:
                neighbors.add(self.assignment[sender])
        return frozenset(neighbors)


def grid_partition(
    topology: Topology, n_shards: int, lookahead: float
) -> ShardPartition:
    """Cut the deployment into ``n_shards`` near-equal spatial strips.

    Nodes are sorted by ``(x, y, id)`` and chunked into contiguous
    runs whose sizes differ by at most one — balanced by construction,
    and spatially coherent because the sort groups nodes of similar
    ``x``: for a unit-disk radio, only senders within one transmission
    range of a cut produce boundary traffic.
    """
    if n_shards <= 0:
        raise ValueError(f"need a positive shard count, got {n_shards}")
    if n_shards > len(topology):
        raise ValueError(
            f"cannot split {len(topology)} nodes into {n_shards} shards"
        )
    ordered = sorted(
        topology.node_ids,
        key=lambda i: (topology.position(i)[0], topology.position(i)[1], i),
    )
    n = len(ordered)
    base, leftover = divmod(n, n_shards)
    assignment: dict[int, int] = {}
    cursor = 0
    for shard in range(n_shards):
        size = base + (1 if shard < leftover else 0)
        for node_id in ordered[cursor : cursor + size]:
            assignment[node_id] = shard
        cursor += size
    return ShardPartition(
        n_shards=n_shards,
        assignment=assignment,
        topology=topology,
        lookahead=lookahead,
    )
