"""Lightweight tracing and counters for simulations.

The experiment harness needs to know *what happened* during a run —
how many messages of each type were sent, how many elections completed,
when nodes died — without the protocol code knowing anything about
reporting.  :class:`TraceLog` is a pub/sub sink: components ``emit``
named records, observers subscribe by name, and counters accumulate for
free.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time:
        Simulated time of the emission.
    kind:
        Record category, e.g. ``"message.sent"`` or ``"node.died"``.
    payload:
        Arbitrary structured detail attached by the emitter.
    """

    time: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


class TraceLog:
    """Collects :class:`TraceRecord` entries and dispatches to subscribers.

    Recording full records is optional (``keep_records=False`` keeps only
    the per-kind counters) so long experiments do not hold the entire
    history in memory.
    """

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self.records: list[TraceRecord] = []
        self.counts: Counter[str] = Counter()
        self._subscribers: defaultdict[str, list[Callable[[TraceRecord], None]]]
        self._subscribers = defaultdict(list)

    def emit(self, time: float, kind: str, **payload: Any) -> None:
        """Record an occurrence of ``kind`` at ``time``."""
        record = TraceRecord(time=time, kind=kind, payload=payload)
        self.counts[kind] += 1
        if self.keep_records:
            self.records.append(record)
        for callback in self._subscribers.get(kind, ()):
            callback(record)

    def subscribe(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record of ``kind``."""
        self._subscribers[kind].append(callback)

    def count(self, kind: str) -> int:
        """Number of records of ``kind`` emitted so far."""
        return self.counts[kind]

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records of ``kind`` (empty if ``keep_records=False``)."""
        return [record for record in self.records if record.kind == kind]

    def clear(self) -> None:
        """Drop all stored records and counters (subscribers survive)."""
        self.records.clear()
        self.counts.clear()
