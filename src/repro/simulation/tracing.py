"""Lightweight tracing and counters for simulations.

The experiment harness needs to know *what happened* during a run —
how many messages of each type were sent, how many elections completed,
when nodes died — without the protocol code knowing anything about
reporting.  :class:`TraceLog` is a pub/sub sink: components ``emit``
named records, observers subscribe by name, and counters accumulate for
free.

Subscriptions have *identity* semantics: each :meth:`TraceLog.subscribe`
call creates an independent registration with its own delivery counter,
and cancelling one never detaches another registration that happens to
wrap an equal callback.  Harness code that re-subscribes the same
observer across repetitions therefore gets independent counts per
repetition — use :meth:`TraceLog.mark` / :meth:`TraceLog.counts_since`
to window the global per-kind counters the same way.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["TraceRecord", "TraceLog", "TraceSubscription"]


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time:
        Simulated time of the emission.
    kind:
        Record category, e.g. ``"message.sent"`` or ``"node.died"``.
    payload:
        Arbitrary structured detail attached by the emitter.
    """

    time: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


class TraceSubscription:
    """Handle returned by :meth:`TraceLog.subscribe`; ``cancel`` detaches.

    Cancelling is idempotent, so observers that may be torn down from
    several paths (a checker's ``close`` plus a test's teardown) can
    cancel unconditionally.  ``deliveries`` counts the records this
    registration — and only this registration — has received, so a
    subscriber re-attached for a second harness repetition starts from
    zero instead of inheriting the previous run's count.
    """

    def __init__(
        self, log: "TraceLog", kind: str, callback: Callable[[TraceRecord], None]
    ) -> None:
        self._log = log
        self.kind = kind
        self.callback = callback
        self.deliveries = 0
        self._active = True

    @property
    def active(self) -> bool:
        """Whether the subscription still receives records."""
        return self._active

    def _deliver(self, record: TraceRecord) -> None:
        self.deliveries += 1
        self.callback(record)

    def cancel(self) -> None:
        """Stop receiving records; safe to call more than once."""
        if self._active:
            self._active = False
            self._log._remove(self)


class TraceLog:
    """Collects :class:`TraceRecord` entries and dispatches to subscribers.

    Recording full records is optional (``keep_records=False`` keeps only
    the per-kind counters) so long experiments do not hold the entire
    history in memory.
    """

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self.records: list[TraceRecord] = []
        self.counts: Counter[str] = Counter()
        # Subscribers are stored as immutable tuples of subscription
        # objects so ``emit`` can iterate a stable snapshot: a callback
        # that subscribes or unsubscribes during dispatch replaces the
        # tuple and only affects later emissions, never the in-flight
        # one.  Removal is by subscription *identity* — two
        # registrations of an equal callback are distinct, so cancelling
        # one cannot silently detach (or double-count against) the
        # other.
        self._subscribers: dict[str, tuple[TraceSubscription, ...]] = {}

    def emit(self, time: float, kind: str, **payload: Any) -> None:
        """Record an occurrence of ``kind`` at ``time``."""
        record = TraceRecord(time=time, kind=kind, payload=payload)
        self.counts[kind] += 1
        if self.keep_records:
            self.records.append(record)
        for subscription in self._subscribers.get(kind, ()):
            subscription._deliver(record)

    def subscribe(
        self, kind: str, callback: Callable[[TraceRecord], None]
    ) -> TraceSubscription:
        """Invoke ``callback`` for every future record of ``kind``.

        Returns a :class:`TraceSubscription` whose ``cancel`` detaches
        the callback again — long-lived runtimes shared by repeated
        harness runs must cancel their observers or the closures (and
        everything they capture) accumulate forever.
        """
        subscription = TraceSubscription(self, kind, callback)
        self._subscribers[kind] = self._subscribers.get(kind, ()) + (subscription,)
        return subscription

    def unsubscribe(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Cancel one registration of ``callback`` for ``kind`` (no-op if absent).

        Prefer :meth:`TraceSubscription.cancel`, which is unambiguous
        when the same callback was registered more than once; this
        legacy entry point cancels the oldest matching registration.
        """
        for subscription in self._subscribers.get(kind, ()):
            if subscription.callback == callback:
                subscription.cancel()
                return

    def _remove(self, subscription: TraceSubscription) -> None:
        current = self._subscribers.get(subscription.kind)
        if not current:
            return
        remaining = tuple(s for s in current if s is not subscription)
        if remaining:
            self._subscribers[subscription.kind] = remaining
        else:
            del self._subscribers[subscription.kind]

    def n_subscribers(self, kind: str) -> int:
        """Number of callbacks currently subscribed to ``kind``."""
        return len(self._subscribers.get(kind, ()))

    def count(self, kind: str) -> int:
        """Number of records of ``kind`` emitted so far."""
        return self.counts[kind]

    def mark(self) -> dict[str, int]:
        """Snapshot the per-kind counters, for :meth:`counts_since`."""
        return dict(self.counts)

    def counts_since(self, marker: Mapping[str, int]) -> Counter[str]:
        """Per-kind counts accumulated since ``marker`` was taken.

        Gives repeated harness runs sharing one log independent windows
        without clearing history another observer may still need.
        """
        window: Counter[str] = Counter()
        for kind, count in self.counts.items():
            delta = count - marker.get(kind, 0)
            if delta:
                window[kind] = delta
        return window

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records of ``kind`` (empty if ``keep_records=False``)."""
        return [record for record in self.records if record.kind == kind]

    def clear(self) -> None:
        """Drop all stored records and counters (subscribers survive)."""
        self.records.clear()
        self.counts.clear()
