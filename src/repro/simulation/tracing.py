"""Lightweight tracing and counters for simulations.

The experiment harness needs to know *what happened* during a run —
how many messages of each type were sent, how many elections completed,
when nodes died — without the protocol code knowing anything about
reporting.  :class:`TraceLog` is a pub/sub sink: components ``emit``
named records, observers subscribe by name, and counters accumulate for
free.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["TraceRecord", "TraceLog", "TraceSubscription"]


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry.

    Attributes
    ----------
    time:
        Simulated time of the emission.
    kind:
        Record category, e.g. ``"message.sent"`` or ``"node.died"``.
    payload:
        Arbitrary structured detail attached by the emitter.
    """

    time: float
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


class TraceSubscription:
    """Handle returned by :meth:`TraceLog.subscribe`; ``cancel`` detaches.

    Cancelling is idempotent, so observers that may be torn down from
    several paths (a checker's ``close`` plus a test's teardown) can
    cancel unconditionally.
    """

    def __init__(
        self, log: "TraceLog", kind: str, callback: Callable[[TraceRecord], None]
    ) -> None:
        self._log = log
        self.kind = kind
        self.callback = callback
        self._active = True

    @property
    def active(self) -> bool:
        """Whether the subscription still receives records."""
        return self._active

    def cancel(self) -> None:
        """Stop receiving records; safe to call more than once."""
        if self._active:
            self._active = False
            self._log.unsubscribe(self.kind, self.callback)


class TraceLog:
    """Collects :class:`TraceRecord` entries and dispatches to subscribers.

    Recording full records is optional (``keep_records=False`` keeps only
    the per-kind counters) so long experiments do not hold the entire
    history in memory.
    """

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self.records: list[TraceRecord] = []
        self.counts: Counter[str] = Counter()
        # Subscribers are stored as immutable tuples so ``emit`` can
        # iterate a stable snapshot: a callback that subscribes or
        # unsubscribes during dispatch replaces the tuple and only
        # affects later emissions, never the in-flight one.
        self._subscribers: dict[str, tuple[Callable[[TraceRecord], None], ...]] = {}

    def emit(self, time: float, kind: str, **payload: Any) -> None:
        """Record an occurrence of ``kind`` at ``time``."""
        record = TraceRecord(time=time, kind=kind, payload=payload)
        self.counts[kind] += 1
        if self.keep_records:
            self.records.append(record)
        for callback in self._subscribers.get(kind, ()):
            callback(record)

    def subscribe(
        self, kind: str, callback: Callable[[TraceRecord], None]
    ) -> TraceSubscription:
        """Invoke ``callback`` for every future record of ``kind``.

        Returns a :class:`TraceSubscription` whose ``cancel`` detaches
        the callback again — long-lived runtimes shared by repeated
        harness runs must cancel their observers or the closures (and
        everything they capture) accumulate forever.
        """
        self._subscribers[kind] = self._subscribers.get(kind, ()) + (callback,)
        return TraceSubscription(self, kind, callback)

    def unsubscribe(self, kind: str, callback: Callable[[TraceRecord], None]) -> None:
        """Remove one registration of ``callback`` for ``kind`` (no-op if absent)."""
        current = self._subscribers.get(kind)
        if not current or callback not in current:
            return
        remaining = list(current)
        remaining.remove(callback)
        if remaining:
            self._subscribers[kind] = tuple(remaining)
        else:
            del self._subscribers[kind]

    def n_subscribers(self, kind: str) -> int:
        """Number of callbacks currently subscribed to ``kind``."""
        return len(self._subscribers.get(kind, ()))

    def count(self, kind: str) -> int:
        """Number of records of ``kind`` emitted so far."""
        return self.counts[kind]

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All stored records of ``kind`` (empty if ``keep_records=False``)."""
        return [record for record in self.records if record.kind == kind]

    def clear(self) -> None:
        """Drop all stored records and counters (subscribers survive)."""
        self.records.clear()
        self.counts.clear()
