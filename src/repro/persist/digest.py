"""Canonical state digests for checkpoint integrity and divergence detection.

A digest is a SHA-256 over a *canonical byte encoding* of a component's
behavior-relevant state — not over pickle bytes, which vary with memo
ordering and protocol details.  The canonicalization rules:

* floats are encoded bit-exactly (IEEE-754 big-endian), so two states
  digest equal iff every float is bit-identical;
* dicts and sets are serialized in sorted-key order, making digests
  independent of hash-table history (which a pickle round-trip changes);
* numpy arrays contribute dtype, shape and raw bytes; RNG streams
  contribute their full ``bit_generator.state``;
* scheduled callbacks are reduced to *descriptors* — the function's
  qualified name, the owner's identifying attributes (``node_id``,
  ``epoch``, ...), and canonicalized partial arguments — so two runs
  whose queues hold "the same" pending work digest equal even though
  the callback objects differ by identity.

Components digested for a full runtime: ``clock``, ``queue``, ``rng``,
``trace``, ``metrics``, ``spans``, ``nodes``, ``caches``, ``energy``,
``radio``, ``maintenance``, ``coordinator``.  A bare simulator digests
only the first six.  The whole-sim digest hashes the sorted
``(component, digest)`` pairs, so any component drift changes it.

Wall-clock state (the :class:`~repro.obs.profiler.EventProfiler`) is
deliberately excluded: it never feeds back into simulation behavior.
"""

from __future__ import annotations

import hashlib
import struct
from collections import Counter, deque
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from functools import partial
from typing import Any, Optional

import numpy as np

__all__ = [
    "StateDigest",
    "state_digest",
    "digest_components",
    "canonical_bytes",
    "callback_descriptor",
    "RoundDigestRecorder",
]

#: Attributes probed (in order) to identify a callback's owner object.
_HINT_ATTRS = (
    "node_id",
    "epoch",
    "query_id",
    "label",
    "_label",
    "name",
    "kind",
    "index",
)

_PRIMITIVES = (type(None), bool, int, float, str, bytes)


def _owner_hint(obj: Any) -> tuple:
    """Identifying attributes of a callback's bound object."""
    hints = []
    for attr in _HINT_ATTRS:
        value = getattr(obj, attr, None)
        if isinstance(value, (bool, int, float, str)):
            hints.append((attr, value))
    return (type(obj).__qualname__, tuple(hints))


def callback_descriptor(cb: Any) -> tuple:
    """A canonical, identity-free description of a scheduled callback."""
    if isinstance(cb, partial):
        return (
            "partial",
            callback_descriptor(cb.func),
            tuple(_describe_value(arg) for arg in cb.args),
        )
    func = getattr(cb, "__func__", None)
    owner = getattr(cb, "__self__", None)
    if func is not None and owner is not None:  # bound method
        return ("method", func.__qualname__, _owner_hint(owner))
    if hasattr(cb, "__qualname__"):  # plain function
        return ("function", cb.__qualname__)
    return ("object", _owner_hint(cb))


def _describe_value(value: Any) -> Any:
    """Describe a partial argument / payload value for canonicalization."""
    if isinstance(value, _PRIMITIVES):
        return value
    if isinstance(value, (tuple, list)):
        return tuple(_describe_value(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(_describe_value(v) for v in value)
    if isinstance(value, dict):
        return {k: _describe_value(v) for k, v in value.items()}
    if is_dataclass(value) and not isinstance(value, type):
        return (
            type(value).__qualname__,
            tuple((f.name, _describe_value(getattr(value, f.name))) for f in fields(value)),
        )
    if callable(value):
        return callback_descriptor(value)
    return _owner_hint(value)


# ----------------------------------------------------------------------
# canonical byte encoding
# ----------------------------------------------------------------------


def canonical_bytes(obj: Any) -> bytes:
    """Type-tagged, length-prefixed canonical encoding of ``obj``."""
    out = bytearray()
    _encode(obj, out)
    return bytes(out)


def _frame(out: bytearray, tag: bytes, payload: bytes) -> None:
    out += tag
    out += struct.pack(">Q", len(payload))
    out += payload


def _encode(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
    elif obj is True:
        out += b"T"
    elif obj is False:
        out += b"F"
    elif isinstance(obj, Enum):
        _frame(out, b"e", f"{type(obj).__qualname__}:{obj.name}".encode())
    elif isinstance(obj, int):
        _frame(out, b"i", str(obj).encode())
    elif isinstance(obj, float):
        _frame(out, b"f", struct.pack(">d", obj))
    elif isinstance(obj, str):
        _frame(out, b"s", obj.encode("utf-8"))
    elif isinstance(obj, bytes):
        _frame(out, b"b", obj)
    elif isinstance(obj, np.ndarray):
        _frame(
            out,
            b"a",
            obj.dtype.str.encode() + b"|" + repr(obj.shape).encode() + b"|"
            + np.ascontiguousarray(obj).tobytes(),
        )
    elif isinstance(obj, np.generic):
        _encode(obj.item(), out)
    elif isinstance(obj, (tuple, list, deque)):
        body = bytearray()
        for item in obj:
            _encode(item, body)
        _frame(out, b"l", bytes(body))
    elif isinstance(obj, (set, frozenset)):
        encoded = sorted(canonical_bytes(item) for item in obj)
        _frame(out, b"S", b"".join(encoded))
    elif isinstance(obj, (dict, Counter)):
        entries = sorted(
            (canonical_bytes(key), canonical_bytes(value))
            for key, value in obj.items()
        )
        _frame(out, b"d", b"".join(k + v for k, v in entries))
    else:
        _encode(_describe_value(obj), out)


def _hexdigest(obj: Any) -> str:
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


# ----------------------------------------------------------------------
# component extractors
# ----------------------------------------------------------------------


def _queue_structure(queue: Any) -> tuple:
    """Content-canonical view of the pending event set.

    Entries are ``(time, priority, label, descriptor)`` sorted by
    content: the insertion counter (or lineage stamp) and the heap's
    physical layout are representation details, and cancelled handles
    are excluded outright — the lazy ``_drop_cancelled`` sweep pops
    them at representation-dependent moments and they can never affect
    future behavior.  This is what makes a merged sharded queue digest
    equal to the single-process one.
    """
    entries = []
    for entry in queue._heap:
        time, priority, _key, tail = entry
        if isinstance(tail, int):  # transient slab slot — never cancellable
            label = queue._slab_label[tail]
            descriptor = callback_descriptor(queue._slab_callback[tail])
        else:
            if tail.cancelled:
                continue
            label = tail.label
            descriptor = callback_descriptor(tail.callback)
        entries.append((time, priority, label, descriptor))
    entries.sort(key=lambda e: (e[0], e[1], canonical_bytes((e[2], e[3]))))
    return tuple(entries)


def _rng_structure(random: Any) -> tuple:
    return (
        random.seed,
        {
            name: random._streams[name].bit_generator.state
            for name in sorted(random._streams)
        },
    )


def _trace_structure(trace: Any) -> tuple:
    return (
        dict(trace.counts),
        len(trace.records),
        {
            kind: tuple(
                (s.deliveries, callback_descriptor(s.callback)) for s in subs
            )
            for kind, subs in trace._subscribers.items()
        },
    )


def _simulator_structures(sim: Any) -> dict[str, Any]:
    """Canonical per-component structures of a bare simulator.

    The structures (not their hashes) are what ``persist.merge``
    combines across shards; digesting hashes each one.  The clock keeps
    only ``now`` — the events-processed tally is an execution statistic
    that shard merging cannot meaningfully reconcile entry-for-entry.
    """
    return {
        "clock": ("now", sim.now),
        "queue": _queue_structure(sim.queue),
        "rng": _rng_structure(sim.random),
        "trace": _trace_structure(sim.trace),
        "metrics": (sim.metrics.enabled, tuple(sim.metrics.rows())),
        "spans": sim.spans._next_id,
    }


def _digest_simulator(sim: Any) -> dict[str, str]:
    return {
        name: _hexdigest(value)
        for name, value in _simulator_structures(sim).items()
    }


def _digest_event_handle(event: Optional[Any]) -> Optional[tuple]:
    if event is None:
        return None
    return (event.time, event.label, event.cancelled, event._queued)


def _digest_node(node: Any) -> tuple:
    return (
        node.node_id,
        node.mode,
        node.representative_id,
        {
            member: (info.location, info.accepted_at, info.last_heard)
            for member, info in node.represented.items()
        },
        node.epoch,
        node._collecting_invitations,
        dict(node._heard_invitations),
        dict(node._heard_list_lengths),
        dict(node._offers),
        node._my_list_length,
        node._refining,
        node._sent_recall,
        node._sent_stay_active,
        node._ack_pending,
        _digest_event_handle(node._rule4_event),
        node._awaiting_offers,
        node._await_reply,
        _digest_event_handle(node._reply_timeout_event),
        node._resigning,
        dict(node._pending_invitations),
        node._offer_flush_scheduled,
        node.snoop_probability,
        node.reelections,
        node.location,
    )


def _digest_policy(policy: Any) -> tuple:
    # The policy canonicalizes itself: stored pairs, live sufficient
    # sums and decision cursors, with derived memo caches omitted —
    # so scalar and struct-of-arrays backing stores digest equal
    # exactly when they will behave identically.
    return policy.digest_state()


def _describe_loss(model: Any) -> tuple:
    name = type(model).__qualname__
    if hasattr(model, "base") and hasattr(model, "_burst_losses"):  # overlay
        return (
            name,
            _describe_loss(model.base),
            tuple(model._burst_losses),
            tuple(sorted((frozenset(g) for g in model._partitions), key=sorted)),
        )
    if hasattr(model, "probability"):
        return (name, model.probability)
    if hasattr(model, "overrides"):
        return (name, model.base, dict(model.overrides))
    if hasattr(model, "floor"):
        return (name, model.floor, model.ceiling)
    return (name, repr(model))


def _runtime_structures(runtime: Any) -> dict[str, Any]:
    """Canonical per-component structures of a full runtime.

    The energy component keeps the per-node batteries and the ledger's
    registry cells but not the ledger's running float totals: those are
    order-of-addition sensitive sums a shard merge cannot reproduce
    bit-for-bit, and they are derivable from the cells.
    """
    radio = runtime.radio
    topology = radio.topology
    comps = {
        "nodes": {
            node_id: _digest_node(node) for node_id, node in runtime.nodes.items()
        },
        "caches": {
            node_id: _digest_policy(node.store.policy)
            for node_id, node in runtime.nodes.items()
        },
        "energy": (
            {
                node_id: (
                    device.battery.capacity,
                    device.battery.charge,
                    device.battery.spent,
                    device.failed,
                )
                for node_id, device in radio._nodes.items()
            },
            dict(radio.ledger._cells),
        ),
        "radio": (
            radio.latency,
            radio.batch_fanout,
            _describe_loss(radio.loss_model),
            tuple(topology._positions),
            tuple(topology._ranges),
            dict(runtime.stats._sent_checkpoint),
        ),
        "maintenance": (
            tuple(task.stopped for task in runtime.maintenance._tasks),
            tuple(runtime.maintenance._round_costs),
            runtime.maintenance._rounds,
            runtime.maintenance._round_span is not None,
        ),
        "coordinator": runtime.coordinator.epoch,
    }
    # Un-flushed observation batch (batched rounds only, mid-burst
    # checkpoints).  Added only when non-empty so a settled batched run
    # digests identically to a scalar run, which has no router at all.
    router = getattr(runtime, "observation_router", None)
    if router is not None and router.pending:
        comps["observations"] = tuple(
            (entry[0].node_id, entry[1], entry[2], entry[3])
            for entry in router.pending
            if entry[0] is not None
        )
    return comps


def _digest_runtime(runtime: Any) -> dict[str, str]:
    return {
        name: _hexdigest(value)
        for name, value in _runtime_structures(runtime).items()
    }


@dataclass(frozen=True)
class StateDigest:
    """Per-component hex digests plus the whole-sim rollup."""

    components: dict[str, str]
    whole: str

    def diff(self, other: "StateDigest") -> list[str]:
        """Component names whose digests differ between the two states."""
        names = set(self.components) | set(other.components)
        return sorted(
            name
            for name in names
            if self.components.get(name) != other.components.get(name)
        )


def _resolve(target: Any) -> tuple[Any, Optional[Any]]:
    """``(simulator, runtime-or-None)`` for any checkpointable target."""
    runtime = None
    if hasattr(target, "nodes") and hasattr(target, "radio"):
        runtime = target
    elif hasattr(target, "runtime"):
        runtime = target.runtime
    if hasattr(target, "clock") and hasattr(target, "queue"):
        simulator = target
    elif runtime is not None:
        simulator = runtime.simulator
    else:
        simulator = target.simulator
    return simulator, runtime


def digest_components(target: Any) -> dict[str, str]:
    """Per-component hex digests of a simulator, runtime, or wrapper.

    Accepts a bare :class:`~repro.simulation.engine.Simulator`, a
    :class:`~repro.core.runtime.SnapshotRuntime`, or any object exposing
    a ``runtime`` attribute (e.g. a chaos run).  Objects may add custom
    components via a ``digest_extra()`` method returning ``{name: value}``.
    """
    simulator, runtime = _resolve(target)
    comps = _digest_simulator(simulator)
    if runtime is not None:
        comps.update(_digest_runtime(runtime))
    extra = getattr(target, "digest_extra", None)
    if callable(extra):
        for name, value in extra().items():
            comps[name] = _hexdigest(value)
    return comps


def state_digest(target: Any) -> StateDigest:
    """The canonical :class:`StateDigest` of ``target``'s current state."""
    components = digest_components(target)
    whole = _hexdigest(tuple(sorted(components.items())))
    return StateDigest(components=components, whole=whole)


class RoundDigestRecorder:
    """Records the whole-sim digest at every maintenance-round boundary.

    Subscribes to the ``maintenance.round`` trace records the
    :class:`~repro.core.maintenance.MaintenanceManager` emits; each
    firing appends ``(round_index, whole_digest)``.  Digesting reads
    state without consuming RNG draws or mutating anything, so an armed
    recorder never perturbs the trajectory — and the recorder itself
    survives checkpoint/restore (its subscription callback is a bound
    method reachable from the runtime's trace log).
    """

    def __init__(self, runtime: Any) -> None:
        self.runtime = runtime
        self.rounds: list[tuple[int, str]] = []
        self._subscription = runtime.simulator.trace.subscribe(
            "maintenance.round", self._on_round
        )

    def _on_round(self, record: Any) -> None:
        self.rounds.append((record.payload["index"], state_digest(self.runtime).whole))

    def close(self) -> None:
        """Detach from the trace log (idempotent)."""
        self._subscription.cancel()
