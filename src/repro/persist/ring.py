"""A rotating on-disk ring of checkpoints.

Long-running deployments (``repro.fleet``) checkpoint on an interval;
keeping every checkpoint would grow without bound, keeping only the
last would lose the ability to rewind past a bad reconfiguration.  A
:class:`CheckpointRing` keeps the most recent ``keep`` checkpoint
files, named by a monotonically increasing sequence number, each
written atomically by :func:`~repro.persist.checkpoint.save_checkpoint`
(tmp + fsync + rename), so the newest complete file is always a valid
restore point even if the process dies mid-save.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Any, Optional

from repro.persist.checkpoint import load_checkpoint, read_header, save_checkpoint

__all__ = ["CheckpointRing"]

_CKPT_RE = re.compile(r"^(?P<prefix>.+)-(?P<index>\d{6})\.ckpt$")


class CheckpointRing:
    """Keep the last ``keep`` checkpoints of an evolving object graph."""

    def __init__(
        self,
        directory: str | os.PathLike,
        prefix: str = "fleet",
        keep: int = 4,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.keep = keep
        existing = self._indices()
        self.next_index = (existing[-1] + 1) if existing else 0

    # ------------------------------------------------------------------

    def _path(self, index: int) -> Path:
        return self.directory / f"{self.prefix}-{index:06d}.ckpt"

    def _indices(self) -> list[int]:
        indices = []
        for path in self.directory.iterdir():
            match = _CKPT_RE.match(path.name)
            if match and match.group("prefix") == self.prefix:
                indices.append(int(match.group("index")))
        return sorted(indices)

    def paths(self) -> list[Path]:
        """Retained checkpoint paths, oldest first."""
        return [self._path(index) for index in self._indices()]

    def latest(self) -> Optional[Path]:
        """The newest checkpoint, or ``None`` when the ring is empty."""
        indices = self._indices()
        return self._path(indices[-1]) if indices else None

    # ------------------------------------------------------------------

    def save(self, obj: Any, meta: Optional[dict] = None) -> Path:
        """Write the next checkpoint and prune beyond ``keep``; returns its path."""
        path = self._path(self.next_index)
        stamped = {"ring_index": self.next_index}
        if meta:
            stamped.update(meta)
        save_checkpoint(obj, path, meta=stamped)
        self.next_index += 1
        for index in self._indices()[: -self.keep]:
            self._path(index).unlink(missing_ok=True)
        return path

    def load_latest(self, verify: bool = True) -> Any:
        """Restore the newest checkpoint (raises if the ring is empty)."""
        path = self.latest()
        if path is None:
            raise FileNotFoundError(f"no checkpoints under {self.directory}")
        return load_checkpoint(path, verify=verify)

    def header(self, path: Optional[Path] = None) -> dict:
        """Header of ``path`` (default: the newest checkpoint)."""
        target = path if path is not None else self.latest()
        if target is None:
            raise FileNotFoundError(f"no checkpoints under {self.directory}")
        return read_header(target)
