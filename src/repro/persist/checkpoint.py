"""Versioned on-disk checkpoint format with digest-verified restore.

File layout (format 1)::

    MAGIC                        12 bytes, b"REPRO-CKPT\\x01\\n"
    header                       one JSON line (UTF-8, no newlines)
    payload                      zlib-compressed pickle of the object graph

The header carries the format version, the codec, the payload's SHA-256
and length, the per-component :mod:`~repro.persist.digest` values of
the saved state (when the object is digestable), and caller-supplied
metadata.  :func:`load_checkpoint` verifies the payload hash, then —
for digestable objects — recomputes every component digest on the
restored graph and compares against the header, raising
:class:`CheckpointIntegrityError` with the exact list of divergent
components on mismatch.  That check is what turns silent state
divergence (a code change that breaks restore fidelity) into a loud,
attributable failure.

Versioning policy: the format number only changes when the file layout
changes; unknown (newer) formats are rejected with
:class:`CheckpointVersionError` rather than guessed at.  Pickled
payloads additionally depend on the repository's class definitions —
checkpoints are *resume* artifacts for the writing code version, not a
long-term archival format (the digests, being canonical, ARE stable
across refactors that preserve behavior).

Writes are atomic: the file is assembled under a temporary name in the
target directory and ``os.replace``d into place, so an interrupted save
never leaves a truncated checkpoint behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zlib
from typing import Any, Optional

from repro.persist.digest import StateDigest, state_digest

__all__ = [
    "CheckpointError",
    "CheckpointIntegrityError",
    "CheckpointVersionError",
    "FORMAT_VERSION",
    "MAGIC",
    "save_checkpoint",
    "load_checkpoint",
    "read_header",
]

FORMAT_VERSION = 1
MAGIC = b"REPRO-CKPT\x01\n"
_CODEC = "pickle+zlib"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or read."""


class CheckpointIntegrityError(CheckpointError):
    """The checkpoint's contents do not match its recorded hashes."""

    def __init__(self, message: str, components: Optional[list[str]] = None) -> None:
        super().__init__(message)
        #: Divergent component names (empty for payload-level corruption).
        self.components = components or []


class CheckpointVersionError(CheckpointError):
    """The checkpoint was written by a newer, unknown format."""


def _is_digestable(obj: Any) -> bool:
    if hasattr(obj, "clock") and hasattr(obj, "queue"):
        return True
    runtime = obj if hasattr(obj, "radio") else getattr(obj, "runtime", None)
    return runtime is not None and hasattr(runtime, "simulator")


def save_checkpoint(
    obj: Any, path: str | os.PathLike, meta: Optional[dict] = None
) -> Optional[StateDigest]:
    """Serialize ``obj`` to ``path``; returns its digest (if digestable).

    ``obj`` may be any picklable object graph; simulators, runtimes and
    runtime wrappers additionally get per-component state digests in
    the header, enabling verified restore and divergence diffs.
    """
    digest = state_digest(obj) if _is_digestable(obj) else None
    try:
        payload = zlib.compress(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception as exc:  # unpicklable closure, lambda, ...
        raise CheckpointError(f"object graph is not picklable: {exc}") from exc
    header = {
        "format": FORMAT_VERSION,
        "codec": _CODEC,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "digest": None
        if digest is None
        else {"whole": digest.whole, "components": digest.components},
        "meta": meta or {},
    }
    header_line = json.dumps(header, sort_keys=True, separators=(",", ":"))
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(MAGIC)
            fh.write(header_line.encode("utf-8"))
            fh.write(b"\n")
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return digest


def _read_raw(path: str | os.PathLike) -> tuple[dict, bytes]:
    with open(path, "rb") as fh:
        magic = fh.read(len(MAGIC))
        if magic != MAGIC:
            raise CheckpointError(f"{path}: not a repro checkpoint file")
        header_bytes = bytearray()
        while True:
            byte = fh.read(1)
            if not byte:
                raise CheckpointError(f"{path}: truncated header")
            if byte == b"\n":
                break
            header_bytes += byte
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{path}: corrupt header: {exc}") from exc
        payload = fh.read()
    if header.get("format", 0) > FORMAT_VERSION:
        raise CheckpointVersionError(
            f"{path}: format {header['format']} is newer than supported "
            f"({FORMAT_VERSION}); upgrade to read this checkpoint"
        )
    if header.get("codec") != _CODEC:
        raise CheckpointError(f"{path}: unknown codec {header.get('codec')!r}")
    return header, payload


def read_header(path: str | os.PathLike) -> dict:
    """The checkpoint's header (format, digests, meta) without unpickling."""
    header, _ = _read_raw(path)
    return header


def load_checkpoint(path: str | os.PathLike, verify: bool = True) -> Any:
    """Restore the object graph saved at ``path``.

    With ``verify`` (the default), the payload hash is checked before
    unpickling and — when the header carries digests — every component
    digest is recomputed on the restored graph and compared, so a
    checkpoint that would resume on a divergent trajectory fails loudly
    instead.
    """
    header, payload = _read_raw(path)
    if len(payload) != header["payload_bytes"]:
        raise CheckpointIntegrityError(
            f"{path}: payload is {len(payload)} bytes, header records "
            f"{header['payload_bytes']} (truncated file?)"
        )
    actual_sha = hashlib.sha256(payload).hexdigest()
    if actual_sha != header["payload_sha256"]:
        raise CheckpointIntegrityError(
            f"{path}: payload sha256 mismatch (corrupt checkpoint)"
        )
    try:
        obj = pickle.loads(zlib.decompress(payload))
    except Exception as exc:
        raise CheckpointError(f"{path}: cannot decode payload: {exc}") from exc
    if verify and header.get("digest"):
        restored = state_digest(obj)
        recorded = header["digest"]["components"]
        divergent = sorted(
            name
            for name in set(recorded) | set(restored.components)
            if recorded.get(name) != restored.components.get(name)
        )
        if divergent:
            raise CheckpointIntegrityError(
                f"{path}: restored state diverges from the saved digests in "
                f"component(s) {', '.join(divergent)} — restore is not "
                f"trajectory-faithful for this code version",
                components=divergent,
            )
    return obj
