"""Merging per-shard state exports back into one canonical digest.

The sharded engine (``simulation.sharded``) proves itself bit-equivalent
to the single-process :class:`~repro.core.runtime.SnapshotRuntime` by
merging each shard's exported state into the exact canonical structures
``persist.digest`` extracts from a reference run, then hashing them the
same way.  The merge rules, component by component:

* **union** — nodes, caches, batteries, energy cells, RNG streams: each
  key is owned by exactly one shard (energy cells are keyed by node, a
  node's events all fire in its owner shard), so a disjoint union *is*
  the reference map.  Shared keys must agree bit-for-bit.
* **sum** — trace counts and record tallies, metric counter cells,
  span ids (only the shard-0 spine allocates any), the stats
  checkpoint: integer or single-owner accumulations where key-wise
  addition is exact.
* **assert-equal** — the clock, coordinator epoch, radio static
  configuration, replicated loss-overlay state: every shard advances
  these in lockstep, so the merge takes one and verifies the rest.
* **reconstruct** — the event queue: replicated events (train ticks,
  election phases, fault toggles) carry identical lineage stamps in
  every shard and deduplicate; a boundary-crossing delivery was split
  across shards under one sender-minted stamp, and its fragments are
  recombined in ascending receiver order — the reference's
  ``out_neighbors`` order.  Maintenance round costs are recomputed
  from per-shard ``(window_total, n_alive)`` ingredients as
  ``sum(totals) / sum(alive)``, the reference's exact division.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.obs.shardmetrics import export_metrics, merge_metrics
from repro.persist.digest import (
    StateDigest,
    _describe_loss,
    _digest_node,
    _digest_policy,
    _hexdigest,
    _queue_structure,
    _rng_structure,
    _trace_structure,
    canonical_bytes,
)

__all__ = ["export_shard_state", "merge_shard_states", "merged_state_digest"]


def export_shard_state(runtime: Any) -> dict[str, Any]:
    """A picklable snapshot of one shard's behavior-relevant state.

    Also valid on a full (unsharded) runtime, where the merge of the
    single export reproduces its ``state_digest`` — the property that
    keeps this exporter honest.
    """
    sim = runtime.simulator
    queue = sim.queue
    entries = []
    for entry in queue._heap:
        time, priority, key, tail = entry
        if isinstance(tail, int):  # transient slab slot — never cancellable
            label = queue._slab_label[tail]
            descriptor = _entry_descriptor(queue._slab_callback[tail])
        else:
            if tail.cancelled:
                continue
            label = tail.label
            descriptor = _entry_descriptor(tail.callback)
        entries.append((time, priority, key, label, descriptor))
    radio = runtime.radio
    topology = radio.topology
    maintenance = runtime.maintenance
    router = getattr(runtime, "observation_router", None)
    pending = 0
    if router is not None:
        pending = sum(1 for entry in router.pending if entry[0] is not None)
    return {
        "now": sim.now,
        "queue": entries,
        "rng": _rng_structure(sim.random),
        "trace": _trace_structure(sim.trace),
        "metrics": export_metrics(sim.metrics),
        "spans_next_id": sim.spans._next_id,
        "nodes": {
            node_id: _digest_node(node) for node_id, node in runtime.nodes.items()
        },
        "caches": {
            node_id: _digest_policy(node.store.policy)
            for node_id, node in runtime.nodes.items()
        },
        "batteries": {
            node_id: (
                device.battery.capacity,
                device.battery.charge,
                device.battery.spent,
                device.failed,
            )
            for node_id, device in radio._nodes.items()
        },
        "energy_cells": dict(radio.ledger._cells),
        "radio_static": (
            radio.latency,
            radio.batch_fanout,
            _describe_loss(radio.loss_model),
            tuple(topology._positions),
            tuple(topology._ranges),
        ),
        "sent_checkpoint": dict(runtime.stats._sent_checkpoint),
        "maintenance_tasks": [
            (task._label, task.stopped) for task in maintenance._tasks
        ],
        "maintenance_costs": list(maintenance._round_costs),
        "maintenance_shard_accounting": maintenance.shard_accounting,
        "maintenance_rounds": maintenance._rounds,
        "maintenance_span_open": maintenance._round_span is not None,
        "coordinator_epoch": runtime.coordinator.epoch,
        "router_pending": pending,
    }


def _entry_descriptor(callback: Any) -> tuple:
    from repro.persist.digest import callback_descriptor

    return callback_descriptor(callback)


def _take_equal(values: list, what: str):
    first = values[0]
    first_bytes = canonical_bytes(first)
    for value in values[1:]:
        if canonical_bytes(value) != first_bytes:
            raise ValueError(f"shards disagree on {what}: {first!r} != {value!r}")
    return first


def _union(maps: Iterable[dict], what: str) -> dict:
    merged: dict = {}
    for mapping in maps:
        for key, value in mapping.items():
            if key in merged:
                if canonical_bytes(merged[key]) != canonical_bytes(value):
                    raise ValueError(
                        f"shards disagree on {what}[{key!r}]"
                    )
                continue
            merged[key] = value
    return merged


def _sum_cells(maps: Iterable[dict]) -> dict:
    merged: dict = {}
    for mapping in maps:
        for key, value in mapping.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _receiver_rank(pending_entry: tuple) -> int:
    # A described pending pair is ((type_name, (("node_id", id), ...)), overheard).
    hint = pending_entry[0]
    for attr, value in hint[1]:
        if attr == "node_id":
            return value
    raise ValueError(f"pending receiver without a node_id hint: {pending_entry!r}")


def _merge_queue_group(label: str, members: list[tuple]) -> tuple:
    """Collapse same-stamp entries from different shards into one.

    ``members`` holds each shard's ``(time, priority, label, descriptor)``
    for one lineage stamp.  Identical members are a replicated event;
    ``deliver:*`` members are fragments of one split transmission whose
    receiver lists concatenate in ascending id order; snoop toggles
    carry per-shard slices of the saved-probability dict that union.
    """
    first = members[0]
    if all(canonical_bytes(m) == canonical_bytes(first) for m in members[1:]):
        return first
    time, priority, _, descriptor = first
    if label.startswith("deliver:"):
        # ("partial", fn, (message_desc, pending_desc)) fragments.
        fn = _take_equal([m[3][1] for m in members], f"{label} callback")
        message = _take_equal([m[3][2][0] for m in members], f"{label} message")
        pairs = [pair for m in members for pair in m[3][2][1]]
        pairs.sort(key=_receiver_rank)
        return (time, priority, label, ("partial", fn, (message, tuple(pairs))))
    if label == "train:snoop-restore":
        fn = _take_equal([m[3][1] for m in members], f"{label} callback")
        saved = _union([m[3][2][0] for m in members], "saved snoop probabilities")
        return (time, priority, label, ("partial", fn, (saved,)))
    raise ValueError(
        f"shards hold divergent copies of replicated event {label!r}: {members!r}"
    )


def _merge_queue(exports: list[dict]) -> tuple:
    groups: dict = {}
    order: list = []
    for export in exports:
        for time, priority, stamp, label, descriptor in export["queue"]:
            key = (time, priority, stamp, label)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append((time, priority, label, descriptor))
    entries = [
        _merge_queue_group(key[3], members) for key, members in groups.items()
    ]
    entries.sort(key=lambda e: (e[0], e[1], canonical_bytes((e[2], e[3]))))
    return tuple(entries)


def _merge_maintenance(exports: list[dict]) -> tuple[tuple, list[float]]:
    """The merged maintenance digest structure and the global round costs."""
    per_node: dict[int, bool] = {}
    round_flags: list[bool] = []
    for export in exports:
        for label, stopped in export["maintenance_tasks"]:
            if label == "maintenance:round":
                round_flags.append(stopped)
            else:
                node_id = int(label.split(":", 1)[1])
                if node_id in per_node and per_node[node_id] != stopped:
                    raise ValueError(
                        f"maintenance task for node {node_id} diverges across shards"
                    )
                per_node[node_id] = stopped
    stopped_flags = [per_node[node_id] for node_id in sorted(per_node)]
    if round_flags:
        stopped_flags.append(_take_equal(round_flags, "maintenance round task"))
    sharded = any(export["maintenance_shard_accounting"] for export in exports)
    if sharded and not all(
        export["maintenance_shard_accounting"] for export in exports
    ):
        raise ValueError("shards disagree on maintenance accounting mode")
    if sharded:
        lengths = {len(export["maintenance_costs"]) for export in exports}
        if len(lengths) != 1:
            raise ValueError(
                f"shards recorded different maintenance round counts: {lengths}"
            )
        costs = []
        for ingredients in zip(*(export["maintenance_costs"] for export in exports)):
            total = sum(pair[0] for pair in ingredients)
            alive = sum(pair[1] for pair in ingredients)
            if alive > 0:
                costs.append(total / alive)
    else:
        costs = list(
            _take_equal(
                [export["maintenance_costs"] for export in exports],
                "maintenance round costs",
            )
        )
    rounds = _take_equal(
        [export["maintenance_rounds"] for export in exports], "maintenance rounds"
    )
    span_open = any(export["maintenance_span_open"] for export in exports)
    structure = (tuple(stopped_flags), tuple(costs), rounds, span_open)
    return structure, costs


def merge_shard_states(exports: Iterable[dict]) -> dict[str, Any]:
    """Fold shard exports into the reference's canonical component structures."""
    exports = list(exports)
    if not exports:
        raise ValueError("need at least one shard export to merge")
    pending = [export["router_pending"] for export in exports]
    if any(pending):
        raise ValueError(
            f"cannot merge mid-burst: shards hold {pending} un-flushed "
            "observations; advance to a quiescent boundary first"
        )
    seeds = [export["rng"][0] for export in exports]
    seed = _take_equal(seeds, "rng seed")
    streams = _union([export["rng"][1] for export in exports], "rng stream")
    trace_counts = _sum_cells([export["trace"][0] for export in exports])
    trace_records = sum(export["trace"][1] for export in exports)
    for export in exports:
        if export["trace"][2]:
            raise ValueError(
                "cannot merge with live trace subscribers attached: "
                f"{sorted(export['trace'][2])}"
            )
    maintenance, costs = _merge_maintenance(exports)
    metrics = merge_metrics(
        [export["metrics"] for export in exports], maintenance_costs=costs
    )
    return {
        "clock": ("now", _take_equal([e["now"] for e in exports], "clock")),
        "queue": _merge_queue(exports),
        "rng": (seed, {name: streams[name] for name in sorted(streams)}),
        "trace": (trace_counts, trace_records, {}),
        "metrics": (metrics.enabled, tuple(metrics.rows())),
        "spans": sum(export["spans_next_id"] for export in exports),
        "nodes": _union([export["nodes"] for export in exports], "node"),
        "caches": _union([export["caches"] for export in exports], "cache"),
        "energy": (
            _union([export["batteries"] for export in exports], "battery"),
            _sum_cells([export["energy_cells"] for export in exports]),
        ),
        "radio": (
            *_take_equal(
                [export["radio_static"] for export in exports], "radio config"
            ),
            _sum_cells([export["sent_checkpoint"] for export in exports]),
        ),
        "maintenance": maintenance,
        "coordinator": _take_equal(
            [export["coordinator_epoch"] for export in exports], "epoch"
        ),
    }


def merged_state_digest(exports: Iterable[dict]) -> StateDigest:
    """The :class:`StateDigest` of the merged shard states.

    Component-for-component comparable with — and for a conforming
    sharded run, equal to — the reference runtime's ``state_digest()``.
    """
    structures = merge_shard_states(exports)
    components = {name: _hexdigest(value) for name, value in structures.items()}
    whole = _hexdigest(tuple(sorted(components.items())))
    return StateDigest(components=components, whole=whole)
