"""Deterministic checkpoint/restore with canonical state digests.

``save_checkpoint``/``load_checkpoint`` freeze a live simulation — the
full object graph: clock, event queue, RNG streams, protocol nodes,
model caches, batteries, radio state, metrics — to a versioned on-disk
file and restore it such that a resumed run is bit-identical,
event-for-event, to an uninterrupted one.  ``state_digest`` fingerprints
the same state canonically, per component and whole-sim, for divergence
detection and golden pinning.  See DESIGN.md §13.
"""

from repro.persist.checkpoint import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointError,
    CheckpointIntegrityError,
    CheckpointVersionError,
    load_checkpoint,
    read_header,
    save_checkpoint,
)
from repro.persist.digest import (
    RoundDigestRecorder,
    StateDigest,
    callback_descriptor,
    canonical_bytes,
    digest_components,
    state_digest,
)
from repro.persist.merge import (
    export_shard_state,
    merge_shard_states,
    merged_state_digest,
)
from repro.persist.ring import CheckpointRing

__all__ = [
    "CheckpointRing",
    "FORMAT_VERSION",
    "MAGIC",
    "CheckpointError",
    "CheckpointIntegrityError",
    "CheckpointVersionError",
    "load_checkpoint",
    "read_header",
    "save_checkpoint",
    "RoundDigestRecorder",
    "StateDigest",
    "callback_descriptor",
    "canonical_bytes",
    "digest_components",
    "export_shard_state",
    "merge_shard_states",
    "merged_state_digest",
    "state_digest",
]
