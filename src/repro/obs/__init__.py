"""Observability: metrics registry, span tracing, profiling, run reports.

The measurement substrate every experiment and perf PR reads from:

* :class:`~repro.obs.registry.MetricsRegistry` — labeled counters,
  gauges, and fixed-bucket histograms with an O(1) record path and a
  guarded near-zero-cost fast path when disabled;
* :class:`~repro.obs.spans.SpanTracer` — sim-time spans (election
  rounds, maintenance rounds, query executions) layered on the trace
  log as balanced begin/end records;
* :class:`~repro.obs.profiler.EventProfiler` — wall-clock time per
  event kind in the simulation engine, with a top-K hot-handler view;
* :class:`~repro.obs.report.RunReport` — any run rendered to
  JSONL/CSV plus a human summary (``repro report`` on the CLI).
"""

from repro.obs.profiler import EventProfiler, ProfileEntry
from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramCell,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.report import RunReport
from repro.obs.spans import NULL_SPAN, Span, SpanTracer
from repro.obs.stream import JsonlRing

__all__ = [
    "JsonlRing",
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "HistogramCell",
    "SpanTracer",
    "Span",
    "NULL_SPAN",
    "EventProfiler",
    "ProfileEntry",
    "RunReport",
]
