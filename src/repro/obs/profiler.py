"""Wall-clock profiling of the discrete-event hot loop.

The simulator fires millions of events per experiment; knowing *which
handlers* the wall time goes to is what every perf PR needs before
touching code.  :class:`EventProfiler` accumulates per-event-kind
cumulative wall time and counts — the *kind* is an event label's prefix
up to the first ``:`` (so ``deliver:Heartbeat`` and
``deliver:Invitation`` both accumulate under ``deliver``, while the
full label is kept for the top-K hot-handler view).

The profiler is off by default: the engine only wraps event firing in
``perf_counter`` calls when one is attached
(:meth:`~repro.simulation.engine.Simulator.enable_profiling`), so the
un-profiled hot loop is untouched.

Example
-------

>>> profiler = EventProfiler()
>>> profiler.record("deliver:Heartbeat", 0.25)
>>> profiler.record("deliver:Invitation", 0.50)
>>> profiler.record("election:invite", 0.125)
>>> [(kind, entry.seconds) for kind, entry in profiler.by_kind()]
[('deliver', 0.75), ('election', 0.125)]
>>> profiler.top(1)[0].label
'deliver:Invitation'
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EventProfiler", "ProfileEntry"]


@dataclass
class ProfileEntry:
    """Cumulative wall time of one label or kind."""

    label: str
    seconds: float = 0.0
    events: int = 0

    @property
    def mean_seconds(self) -> float:
        """Average wall time per event."""
        return self.seconds / self.events if self.events else 0.0


def kind_of(label: str) -> str:
    """An event label's kind: the prefix before the first ``:``."""
    if not label:
        return "(unlabeled)"
    head, _, _ = label.partition(":")
    return head


class EventProfiler:
    """Accumulates wall time per event label and per event kind."""

    def __init__(self) -> None:
        self._by_label: dict[str, ProfileEntry] = {}
        self._by_kind: dict[str, ProfileEntry] = {}

    def record(self, label: str, seconds: float) -> None:
        """Charge ``seconds`` of wall time to ``label`` (O(1))."""
        entry = self._by_label.get(label)
        if entry is None:
            entry = self._by_label[label] = ProfileEntry(label)
        entry.seconds += seconds
        entry.events += 1
        kind = kind_of(label)
        entry = self._by_kind.get(kind)
        if entry is None:
            entry = self._by_kind[kind] = ProfileEntry(kind)
        entry.seconds += seconds
        entry.events += 1

    # -- read side ---------------------------------------------------------

    def total_seconds(self) -> float:
        """Wall time spent inside event handlers so far."""
        return sum(entry.seconds for entry in self._by_kind.values())

    def total_events(self) -> int:
        """Events profiled so far."""
        return sum(entry.events for entry in self._by_kind.values())

    def by_kind(self) -> list[tuple[str, ProfileEntry]]:
        """Per-kind entries, hottest first (ties by name)."""
        return sorted(
            self._by_kind.items(), key=lambda item: (-item[1].seconds, item[0])
        )

    def top(self, k: int = 10) -> list[ProfileEntry]:
        """The ``k`` hottest individual handlers (full labels)."""
        ranked = sorted(
            self._by_label.values(), key=lambda entry: (-entry.seconds, entry.label)
        )
        return ranked[:k]

    def format_table(self, k: int = 10) -> str:
        """A human-readable hot-handler table."""
        total = self.total_seconds()
        lines = ["event kind         cum secs      events    share"]
        for kind, entry in self.by_kind():
            share = entry.seconds / total if total else 0.0
            lines.append(
                f"{kind:<18} {entry.seconds:9.4f} {entry.events:>11,} {share:>7.1%}"
            )
        lines.append(f"top {k} handlers:")
        for entry in self.top(k):
            lines.append(
                f"  {entry.label:<24} {entry.seconds:9.4f}s over {entry.events:,} events"
            )
        return "\n".join(lines)

    def rows(self) -> list[dict]:
        """Export rows for the run report (per-kind cumulative times)."""
        return [
            {
                "record": "profile",
                "kind": kind,
                "seconds": entry.seconds,
                "events": entry.events,
            }
            for kind, entry in self.by_kind()
        ]

    def clear(self) -> None:
        """Reset all accumulated timings."""
        self._by_label.clear()
        self._by_kind.clear()
