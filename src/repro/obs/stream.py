"""A pollable on-disk JSONL ring for long-running deployments.

The fleet layer (``repro.fleet``) streams per-slice status records,
metrics snapshots, span timelines and SLO violations into a
:class:`JsonlRing`: an append-only JSONL file that rotates into a new
segment every ``max_records`` records, keeping only the most recent
``keep_segments`` segments on disk.  External observers tail the
newest segment (or :meth:`read_all`) without any coordination — every
record is one fsync-free ``write + flush`` of a complete JSON line, so
a concurrent reader sees only whole records.

The ring is an *output device*, deliberately kept out of the
checkpointed object graph (open file handles do not pickle); a fleet
restored from a checkpoint simply appends to the next segment index.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Any, Iterator, Optional

__all__ = ["JsonlRing"]

_SEGMENT_RE = re.compile(r"^(?P<prefix>.+)-(?P<index>\d{6})\.jsonl$")


class JsonlRing:
    """Rotating JSONL segments under one directory.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.
    prefix:
        Segment filename prefix (``<prefix>-000042.jsonl``).
    max_records:
        Records per segment before rotating to the next index.
    keep_segments:
        Segments retained on disk; older ones are deleted at rotation.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        prefix: str = "stream",
        max_records: int = 4096,
        keep_segments: int = 8,
    ) -> None:
        if max_records < 1:
            raise ValueError(f"max_records must be >= 1, got {max_records}")
        if keep_segments < 1:
            raise ValueError(f"keep_segments must be >= 1, got {keep_segments}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.prefix = prefix
        self.max_records = max_records
        self.keep_segments = keep_segments
        self.records_written = 0
        # Resume past any existing segments rather than appending into
        # one whose record count we no longer know.
        existing = self._indices()
        self._index = (existing[-1] + 1) if existing else 0
        self._count = 0
        self._handle = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        """Append one record (a JSON-serializable dict) to the ring."""
        if self._handle is None:
            self._handle = open(self._segment_path(self._index), "a", encoding="utf-8")
            # Prune only once the new segment exists on disk, so the
            # retained count includes the active segment.
            self._prune()
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self._count += 1
        self.records_written += 1
        if self._count >= self.max_records:
            self._rotate()

    def _rotate(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._index += 1
        self._count = 0

    def _prune(self) -> None:
        indices = self._indices()
        for index in indices[: -self.keep_segments]:
            self._segment_path(index).unlink(missing_ok=True)

    def close(self) -> None:
        """Flush and close the active segment (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlRing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"{self.prefix}-{index:06d}.jsonl"

    def _indices(self) -> list[int]:
        indices = []
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match and match.group("prefix") == self.prefix:
                indices.append(int(match.group("index")))
        return sorted(indices)

    def segment_paths(self) -> list[Path]:
        """Paths of the retained segments, oldest first."""
        return [self._segment_path(index) for index in self._indices()]

    def iter_records(self) -> Iterator[dict[str, Any]]:
        """Every retained record, oldest first (tolerates a torn tail)."""
        for path in self.segment_paths():
            try:
                text = path.read_text(encoding="utf-8")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    continue  # a reader racing the writer's final line

    def read_all(self, kind: Optional[str] = None) -> list[dict[str, Any]]:
        """All retained records, optionally filtered by ``record`` kind."""
        records = list(self.iter_records())
        if kind is None:
            return records
        return [record for record in records if record.get("record") == kind]
