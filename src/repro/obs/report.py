"""Run reports: one run rendered to JSONL/CSV and a human summary.

A :class:`RunReport` is a *pure data* snapshot of a run: a ``meta``
dict (seed, node counts, sim time, protocol kinds) plus flat ``rows``
— one per metric cell, profile entry, or sample series.  Everything
derived from a report (:meth:`summary`, :meth:`format_summary`) reads
only ``meta`` and ``rows``, which is what makes the JSONL round trip
exact: ``RunReport.from_jsonl(report.to_jsonl())`` produces the
identical summary (differential-tested in ``tests/obs``).

The summary carries the paper's headline quantities: protocol messages
per node per maintenance round (Figure 15), coverage area under the
curve (Figure 10), energy spent by category (§6.2), election and
re-election counts (Table 2), and model-cache hit ratios (§4).

Example
-------

>>> report = RunReport(meta={"seed": 1, "n_nodes": 2},
...                    rows=[{"record": "counter",
...                           "name": "net.messages.sent",
...                           "labels": {"node": 0, "kind": "Heartbeat"},
...                           "value": 3}])
>>> RunReport.from_jsonl(report.to_jsonl()).summary() == report.summary()
True
>>> report.summary()["messages_total"]
3
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = ["RunReport"]

#: Column order of the CSV export; complex fields are JSON-encoded.
CSV_COLUMNS = (
    "record",
    "name",
    "labels",
    "value",
    "count",
    "sum",
    "uppers",
    "counts",
    "kind",
    "seconds",
    "events",
    "samples",
)


@dataclass
class RunReport:
    """A run's metrics, profile, and sample series as flat rows."""

    meta: dict[str, Any] = field(default_factory=dict)
    rows: list[dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        runtime,
        coverage=None,
        meta: Optional[dict[str, Any]] = None,
    ) -> "RunReport":
        """Snapshot ``runtime`` (a :class:`~repro.core.runtime.SnapshotRuntime`).

        Pulls every cell of the runtime's metrics registry, the
        engine's wall-clock profile (when profiling was enabled), and
        an optional :class:`~repro.query.coverage.CoverageSeries` as a
        ``series`` row.  Extra ``meta`` entries override the captured
        defaults.
        """
        from repro.network.stats import PROTOCOL_KINDS

        simulator = runtime.simulator
        captured_meta: dict[str, Any] = {
            "seed": getattr(runtime, "seed", None),
            "n_nodes": len(runtime.nodes),
            "n_alive": sum(1 for node in runtime.nodes.values() if node.alive),
            "sim_time": simulator.now,
            "maintenance_rounds": runtime.maintenance.rounds_completed,
            "reelections": sum(node.reelections for node in runtime.nodes.values()),
            "protocol_kinds": sorted(PROTOCOL_KINDS),
        }
        if meta:
            captured_meta.update(meta)
        rows = list(simulator.metrics.rows())
        if simulator.profiler is not None:
            rows.extend(simulator.profiler.rows())
        if coverage is not None:
            rows.append(
                {
                    "record": "series",
                    "name": "query.coverage_series",
                    "samples": [float(sample) for sample in coverage.samples],
                }
            )
        return cls(meta=captured_meta, rows=rows)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line: the meta record, then every row."""
        lines = [json.dumps({"record": "meta", **self.meta}, sort_keys=True)]
        lines.extend(json.dumps(row, sort_keys=True) for row in self.rows)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "RunReport":
        """Parse a report back from :meth:`to_jsonl` output."""
        meta: dict[str, Any] = {}
        rows: list[dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("record") == "meta":
                meta = {k: v for k, v in record.items() if k != "record"}
            else:
                rows.append(record)
        return cls(meta=meta, rows=rows)

    def to_csv(self) -> str:
        """The rows as CSV; list/dict fields are JSON-encoded cells."""
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=CSV_COLUMNS, extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            flat = {}
            for column in CSV_COLUMNS:
                value = row.get(column)
                if isinstance(value, (dict, list)):
                    value = json.dumps(value, sort_keys=True)
                flat[column] = value
            writer.writerow(flat)
        return buffer.getvalue()

    # ------------------------------------------------------------------
    # derived views (read only meta + rows, never the live runtime)
    # ------------------------------------------------------------------

    def _rows_named(self, name: str) -> Iterable[dict[str, Any]]:
        return (row for row in self.rows if row.get("name") == name)

    def _counter_total(self, name: str) -> float:
        return sum(row["value"] for row in self._rows_named(name))

    def _histogram_stats(self, name: str) -> tuple[int, float]:
        count, total = 0, 0.0
        for row in self._rows_named(name):
            count += row["count"]
            total += row["sum"]
        return count, total

    def coverage_series(self) -> Optional[list[float]]:
        """The captured coverage samples, or ``None`` if absent."""
        for row in self._rows_named("query.coverage_series"):
            return list(row["samples"])
        return None

    def summary(self) -> dict[str, Any]:
        """The headline quantities, derived purely from meta + rows."""
        messages_total = self._counter_total("net.messages.sent")
        protocol_kinds = set(self.meta.get("protocol_kinds", ()))
        protocol_total = sum(
            row["value"]
            for row in self._rows_named("net.messages.sent")
            if row["labels"].get("kind") in protocol_kinds
        )
        round_count, round_sum = self._histogram_stats("maintenance.msgs_per_node")
        per_node_per_round = round_sum / round_count if round_count else 0.0

        estimate_hits = sum(
            row["value"]
            for row in self._rows_named("cache.estimate")
            if row["labels"].get("outcome") == "hit"
        )
        estimate_total = self._counter_total("cache.estimate")
        hit_ratio = estimate_hits / estimate_total if estimate_total else None

        samples = self.coverage_series()
        coverage_auc = float(sum(samples)) if samples is not None else None
        coverage_mean = (
            coverage_auc / len(samples) if samples else None
        )

        energy_by_category: dict[str, float] = {}
        for row in self._rows_named("energy.draw"):
            category = row["labels"].get("category", "?")
            energy_by_category[category] = (
                energy_by_category.get(category, 0.0) + row["value"]
            )

        return {
            "seed": self.meta.get("seed"),
            "n_nodes": self.meta.get("n_nodes"),
            "n_alive": self.meta.get("n_alive"),
            "sim_time": self.meta.get("sim_time"),
            "messages_total": messages_total,
            "protocol_messages_total": protocol_total,
            "maintenance_rounds": self.meta.get("maintenance_rounds"),
            "messages_per_node_per_round": per_node_per_round,
            "elections": self._counter_total("election.rounds"),
            "reelections": self.meta.get("reelections"),
            "energy_total": sum(energy_by_category.values()),
            "energy_by_category": dict(sorted(energy_by_category.items())),
            "cache_observations": self._counter_total("cache.observe"),
            "cache_hit_ratio": hit_ratio,
            "queries": self._counter_total("query.executed"),
            "coverage_auc": coverage_auc,
            "coverage_mean": coverage_mean,
        }

    def format_summary(self) -> str:
        """A human-readable rendering of :meth:`summary`."""
        s = self.summary()
        lines = [
            f"run seed={s['seed']} nodes={s['n_nodes']} "
            f"(alive {s['n_alive']}) sim_time={s['sim_time']}",
            f"  messages: {s['messages_total']} total, "
            f"{s['protocol_messages_total']} protocol",
            f"  maintenance: {s['maintenance_rounds']} rounds, "
            f"{s['messages_per_node_per_round']:.3f} protocol msgs/node/round (Fig. 15)",
            f"  elections: {s['elections']} global, {s['reelections']} local re-elections",
            f"  energy: {s['energy_total']:.1f} total "
            + " ".join(
                f"{category}={value:.1f}"
                for category, value in s["energy_by_category"].items()
            ),
        ]
        if s["cache_hit_ratio"] is not None:
            lines.append(
                f"  cache: {s['cache_observations']} observations, "
                f"estimate hit ratio {s['cache_hit_ratio']:.3f}"
            )
        else:
            lines.append(f"  cache: {s['cache_observations']} observations")
        if s["coverage_auc"] is not None:
            lines.append(
                f"  queries: {s['queries']} executed, coverage AUC "
                f"{s['coverage_auc']:.2f} mean {s['coverage_mean']:.3f} (Fig. 10)"
            )
        else:
            lines.append(f"  queries: {s['queries']} executed")
        profile_rows = [row for row in self.rows if row.get("record") == "profile"]
        if profile_rows:
            lines.append("  hot event kinds (wall clock):")
            for row in profile_rows[:5]:
                lines.append(
                    f"    {row['kind']:<16} {row['seconds']:.4f}s "
                    f"over {row['events']} events"
                )
        return "\n".join(lines)
