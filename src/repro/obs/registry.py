"""Labeled counters, gauges and histograms with an O(1) record path.

Every quantity the paper's evaluation reports — messages per node
(Figure 15, Table 2), snapshot size over time (Figure 14), coverage
under node death (Figure 10) — is a per-run accumulation.  The
:class:`MetricsRegistry` is the one place those accumulations live:
subsystems record into named metrics at O(1) cost, and the
:class:`~repro.obs.report.RunReport` exporter reads everything back out
without knowing who recorded what.

Two properties drive the design:

* **O(1) record.**  A counter cell is one ``Counter`` increment keyed
  by a small label tuple; a histogram observation is one ``bisect``
  plus two additions.  No locks, no string formatting, no allocation
  beyond the key tuple the caller already holds.
* **Near-zero overhead when disabled.**  Every record method starts
  with a guarded fast path: when the registry is disabled the call
  returns after two attribute loads and a branch.  *Essential* metrics
  — accounting the protocol itself reads back, like
  :class:`~repro.network.stats.MessageStats`'s windowed counters that
  drive Figure 15's per-round costs — opt out of the gate entirely so
  disabling observability can never change simulation behavior.

Example
-------

>>> registry = MetricsRegistry()
>>> sent = registry.counter("demo.sent", labels=("node",))
>>> sent.inc(3)
>>> sent.inc(3)
>>> sent.inc(7, amount=2)
>>> sent.value(3), sent.value(7), sent.total()
(2, 2, 4)
>>> latency = registry.histogram("demo.latency", buckets=(1.0, 10.0))
>>> for sample in (0.5, 3.0, 25.0):
...     latency.observe(sample)
>>> cell = latency.cell()
>>> cell.counts, cell.count, cell.sum
([1, 1, 1], 3, 28.5)

Disabling the registry freezes every non-essential metric:

>>> registry.enabled = False
>>> sent.inc(3)
>>> sent.total()
4
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence

__all__ = [
    "MetricsRegistry",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "HistogramCell",
]


def _label_dict(label_names: tuple[str, ...], key: Any) -> dict[str, Any]:
    """Map a cell key back to ``{label_name: value}`` for export."""
    if not label_names:
        return {}
    if len(label_names) == 1:
        return {label_names[0]: key}
    return dict(zip(label_names, key))


class _Metric:
    """Shared naming/labeling/gating machinery of all metric types."""

    kind = "metric"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        label_names: tuple[str, ...],
        essential: bool,
    ) -> None:
        self.name = name
        self.label_names = label_names
        #: ``None`` for essential metrics — they record unconditionally,
        #: so turning observability off cannot change protocol behavior.
        self._gate: Optional[MetricsRegistry] = None if essential else registry

    @property
    def essential(self) -> bool:
        """Whether this metric ignores the registry's ``enabled`` flag."""
        return self._gate is None

    def label_values(self, key: Any) -> dict[str, Any]:
        """The ``{label: value}`` mapping a cell key encodes."""
        return _label_dict(self.label_names, key)

    def _check_signature(
        self, label_names: tuple[str, ...], essential: bool, kind: str
    ) -> None:
        if kind != self.kind:
            raise ValueError(
                f"metric {self.name!r} is a {self.kind}, requested as {kind}"
            )
        if label_names != self.label_names:
            raise ValueError(
                f"metric {self.name!r} has labels {self.label_names}, "
                f"requested with {label_names}"
            )
        if essential != self.essential:
            raise ValueError(
                f"metric {self.name!r} has essential={self.essential}, "
                f"requested with essential={essential}"
            )


class CounterMetric(_Metric):
    """A monotonically increasing count, one cell per label key.

    Keys are the label values themselves: a bare value for one label, a
    tuple in declaration order for several, ``()`` for none.  ``cells``
    is a plain :class:`collections.Counter`, so legacy accounting code
    (``MessageStats``) can hold it directly and keep its byte-identical
    read side while the registry exports the same storage.
    """

    kind = "counter"

    def __init__(self, registry, name, label_names, essential) -> None:
        super().__init__(registry, name, label_names, essential)
        self.cells: Counter[Any] = Counter()

    def inc(self, key: Any = (), amount: int | float = 1) -> None:
        """Add ``amount`` to the cell at ``key`` (O(1))."""
        gate = self._gate
        if gate is not None and not gate.enabled:
            return
        self.cells[key] += amount

    def inc_by(self, key: Any, n: int | float) -> None:
        """Add ``n`` to the cell at ``key`` — the bulk spelling of
        :meth:`inc` for batched producers (one call per label key per
        flush instead of one per event)."""
        gate = self._gate
        if gate is not None and not gate.enabled:
            return
        self.cells[key] += n

    def value(self, key: Any = ()) -> int | float:
        """Current count of the cell at ``key`` (0 if never incremented)."""
        return self.cells[key]

    def total(self) -> int | float:
        """Sum over all cells."""
        return sum(self.cells.values())

    def clear(self) -> None:
        """Drop every cell."""
        self.cells.clear()


class GaugeMetric(_Metric):
    """A point-in-time value, one cell per label key."""

    kind = "gauge"

    def __init__(self, registry, name, label_names, essential) -> None:
        super().__init__(registry, name, label_names, essential)
        self.cells: dict[Any, float] = {}

    def set(self, value: float, key: Any = ()) -> None:
        """Record the current value of the cell at ``key``."""
        gate = self._gate
        if gate is not None and not gate.enabled:
            return
        self.cells[key] = value

    def value(self, key: Any = ()) -> Optional[float]:
        """Last recorded value at ``key``, or ``None`` if never set."""
        return self.cells.get(key)

    def clear(self) -> None:
        """Drop every cell."""
        self.cells.clear()


@dataclass
class HistogramCell:
    """One label key's bucket counts.

    ``counts[i]`` holds observations ``<= uppers[i]``; the final slot is
    the overflow bucket for values above the last upper bound.  The
    invariant ``sum(counts) == count`` holds after every observation
    (property-tested in ``tests/obs``).
    """

    counts: list[int]
    count: int = 0
    sum: float = 0.0

    @property
    def mean(self) -> float:
        """Average observed value (0 for an empty cell)."""
        return self.sum / self.count if self.count else 0.0


class HistogramMetric(_Metric):
    """Fixed-bucket histogram; buckets are shared by every label key."""

    kind = "histogram"

    def __init__(self, registry, name, label_names, essential, buckets) -> None:
        super().__init__(registry, name, label_names, essential)
        uppers = tuple(float(b) for b in buckets)
        if not uppers:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        if any(b >= a for b, a in zip(uppers, uppers[1:])):
            raise ValueError(
                f"histogram {name!r} buckets must be strictly increasing: {uppers}"
            )
        self.uppers = uppers
        self.cells: dict[Any, HistogramCell] = {}

    def observe(self, value: float, key: Any = ()) -> None:
        """Record one observation at ``key`` (O(log #buckets))."""
        gate = self._gate
        if gate is not None and not gate.enabled:
            return
        cell = self.cells.get(key)
        if cell is None:
            cell = self.cells[key] = HistogramCell([0] * (len(self.uppers) + 1))
        cell.counts[bisect_left(self.uppers, value)] += 1
        cell.count += 1
        cell.sum += value

    def cell(self, key: Any = ()) -> HistogramCell:
        """The cell at ``key`` (an empty cell if nothing was observed)."""
        existing = self.cells.get(key)
        if existing is not None:
            return existing
        return HistogramCell([0] * (len(self.uppers) + 1))

    def quantile(self, q: float, key: Any = ()) -> float:
        """Estimate the ``q``-quantile of the cell at ``key``.

        Linear interpolation within the bucket holding the target rank,
        assuming non-negative observations (bucket 0 spans ``[0,
        uppers[0]]``) — the shape of every latency/size histogram the
        serving layer reports p50/p99 from.  Observations in the
        overflow bucket are clamped to the last finite bound, so the
        estimate is a lower bound there.  An empty cell estimates 0.

        >>> registry = MetricsRegistry()
        >>> h = registry.histogram("q.demo", buckets=(1.0, 2.0, 4.0))
        >>> for sample in (0.5, 1.5, 1.5, 3.0):
        ...     h.observe(sample)
        >>> h.quantile(0.5)
        1.5
        >>> h.quantile(1.0)
        4.0
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        cell = self.cells.get(key)
        if cell is None or cell.count == 0:
            return 0.0
        rank = q * cell.count
        seen = 0.0
        lower = 0.0
        for upper, count in zip(self.uppers, cell.counts):
            if count and seen + count >= rank:
                fraction = (rank - seen) / count
                return lower + fraction * (upper - lower)
            seen += count
            lower = upper
        return self.uppers[-1]

    def merged(self) -> HistogramCell:
        """All cells folded into one (for whole-run summaries)."""
        merged = HistogramCell([0] * (len(self.uppers) + 1))
        for cell in self.cells.values():
            for index, count in enumerate(cell.counts):
                merged.counts[index] += count
            merged.count += cell.count
            merged.sum += cell.sum
        return merged

    def clear(self) -> None:
        """Drop every cell."""
        self.cells.clear()


@dataclass
class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Parameters
    ----------
    enabled:
        Gates every non-essential metric's record path.  Flipping it at
        runtime is allowed (a run can enable observability only for a
        phase of interest); essential metrics are unaffected.
    """

    enabled: bool = True
    _metrics: dict[str, _Metric] = field(default_factory=dict, repr=False)

    # -- registration ------------------------------------------------------

    def counter(
        self,
        name: str,
        labels: Sequence[str] = (),
        essential: bool = False,
    ) -> CounterMetric:
        """Get or create the counter ``name`` (labels must match)."""
        return self._get_or_create(CounterMetric, name, labels, essential)

    def gauge(
        self,
        name: str,
        labels: Sequence[str] = (),
        essential: bool = False,
    ) -> GaugeMetric:
        """Get or create the gauge ``name``."""
        return self._get_or_create(GaugeMetric, name, labels, essential)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        labels: Sequence[str] = (),
        essential: bool = False,
    ) -> HistogramMetric:
        """Get or create the histogram ``name`` (buckets must match)."""
        label_names = tuple(labels)
        existing = self._metrics.get(name)
        if existing is not None:
            existing._check_signature(label_names, essential, "histogram")
            assert isinstance(existing, HistogramMetric)
            if existing.uppers != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name!r} has buckets {existing.uppers}, "
                    f"requested with {tuple(buckets)}"
                )
            return existing
        metric = HistogramMetric(self, name, label_names, essential, buckets)
        self._metrics[name] = metric
        return metric

    def _get_or_create(self, cls, name, labels, essential):
        label_names = tuple(labels)
        existing = self._metrics.get(name)
        if existing is not None:
            existing._check_signature(label_names, essential, cls.kind)
            return existing
        metric = cls(self, name, label_names, essential)
        self._metrics[name] = metric
        return metric

    # -- read side ---------------------------------------------------------

    def metric(self, name: str) -> _Metric:
        """The registered metric called ``name`` (KeyError if absent)."""
        return self._metrics[name]

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def rows(self) -> Iterator[dict[str, Any]]:
        """Flat export rows, one per cell, in sorted metric/key order.

        Counters and gauges yield ``{"record", "name", "labels",
        "value"}``; histograms add ``"uppers"``, ``"counts"``,
        ``"count"`` and ``"sum"``.  This is the exact line schema of
        :meth:`~repro.obs.report.RunReport.to_jsonl`.
        """
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            cells = sorted(metric.cells.items(), key=lambda item: repr(item[0]))
            if isinstance(metric, HistogramMetric):
                for key, cell in cells:
                    yield {
                        "record": "histogram",
                        "name": name,
                        "labels": metric.label_values(key),
                        "uppers": list(metric.uppers),
                        "counts": list(cell.counts),
                        "count": cell.count,
                        "sum": cell.sum,
                    }
            else:
                record = metric.kind
                for key, value in cells:
                    yield {
                        "record": record,
                        "name": name,
                        "labels": metric.label_values(key),
                        "value": value,
                    }

    def reset(self) -> None:
        """Clear every metric's cells (definitions survive)."""
        for metric in self._metrics.values():
            metric.clear()
