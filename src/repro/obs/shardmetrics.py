"""Export / merge of :class:`~repro.obs.registry.MetricsRegistry` state.

The sharded engine (``simulation.sharded``) runs each partition's
metrics in its own registry; proving the merged run equal to the
single-process reference requires folding those registries back into
one whose export rows are *identical* to the reference's.  That works
because every metric the simulation records is mergeable by key-wise
summation without float error:

* counter cells are integers (message counts, round counts) or floats
  accumulated by a single owning shard (``energy.draw`` cells are keyed
  by node, and all of a node's events fire in its owner shard);
* histogram observations are integer-valued (``net.fanout``) or emitted
  only by the shard-0 spine (``span.duration``);
* ``maintenance.msgs_per_node`` is the one genuinely global histogram —
  the merge rebuilds it from the merged per-round costs instead of
  summing cells (see :func:`merge_metrics`'s ``maintenance_costs``).

Gauges cannot be summed; the merge requires shards to agree on any
gauge cell they share.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.obs.registry import (
    CounterMetric,
    GaugeMetric,
    HistogramCell,
    HistogramMetric,
    MetricsRegistry,
)

__all__ = ["export_metrics", "merge_metrics"]


def export_metrics(registry: MetricsRegistry) -> dict[str, Any]:
    """A picklable snapshot of every metric definition and cell."""
    metrics = {}
    for name in registry.names():
        metric = registry.metric(name)
        entry: dict[str, Any] = {
            "kind": metric.kind,
            "labels": metric.label_names,
            "essential": metric.essential,
        }
        if isinstance(metric, HistogramMetric):
            entry["uppers"] = metric.uppers
            entry["cells"] = {
                key: (list(cell.counts), cell.count, cell.sum)
                for key, cell in metric.cells.items()
            }
        else:
            entry["cells"] = dict(metric.cells)
        metrics[name] = entry
    return {"enabled": registry.enabled, "metrics": metrics}


def _define(registry: MetricsRegistry, name: str, entry: dict[str, Any]):
    if entry["kind"] == "counter":
        return registry.counter(name, labels=entry["labels"], essential=entry["essential"])
    if entry["kind"] == "gauge":
        return registry.gauge(name, labels=entry["labels"], essential=entry["essential"])
    return registry.histogram(
        name, entry["uppers"], labels=entry["labels"], essential=entry["essential"]
    )


def merge_metrics(
    exports: Iterable[dict[str, Any]],
    maintenance_costs: Optional[list[float]] = None,
) -> MetricsRegistry:
    """Fold per-shard registry exports into one equivalent registry.

    Parameters
    ----------
    exports:
        One :func:`export_metrics` snapshot per shard.
    maintenance_costs:
        The merged per-round Figure-15 costs; when given, the
        ``maintenance.msgs_per_node`` histogram is rebuilt by observing
        them in round order (matching the reference's chronological
        accumulation) instead of summing per-shard cells — the shards
        record raw ingredients, not finished costs.
    """
    exports = list(exports)
    if not exports:
        raise ValueError("need at least one metrics export to merge")
    enabled = {export["enabled"] for export in exports}
    if len(enabled) != 1:
        raise ValueError(f"shards disagree on metrics enablement: {enabled}")
    merged = MetricsRegistry(enabled=enabled.pop())
    rebuilt_cost_name = "maintenance.msgs_per_node"
    for export in exports:
        for name, entry in export["metrics"].items():
            metric = _define(merged, name, entry)
            if maintenance_costs is not None and name == rebuilt_cost_name:
                continue
            if isinstance(metric, CounterMetric):
                for key, value in entry["cells"].items():
                    metric.cells[key] += value
            elif isinstance(metric, GaugeMetric):
                for key, value in entry["cells"].items():
                    existing = metric.cells.get(key)
                    if existing is not None and existing != value:
                        raise ValueError(
                            f"gauge {name!r} cell {key!r} diverges across "
                            f"shards: {existing} != {value}"
                        )
                    metric.cells[key] = value
            else:
                assert isinstance(metric, HistogramMetric)
                for key, (counts, count, total) in entry["cells"].items():
                    cell = metric.cells.get(key)
                    if cell is None:
                        cell = metric.cells[key] = HistogramCell(
                            [0] * (len(metric.uppers) + 1)
                        )
                    for index, bucket_count in enumerate(counts):
                        cell.counts[index] += bucket_count
                    cell.count += count
                    cell.sum += total
    if maintenance_costs is not None:
        defined = any(
            rebuilt_cost_name in export["metrics"] for export in exports
        )
        if defined:
            first = next(
                export["metrics"][rebuilt_cost_name]
                for export in exports
                if rebuilt_cost_name in export["metrics"]
            )
            histogram = merged.histogram(
                rebuilt_cost_name,
                first["uppers"],
                labels=first["labels"],
                essential=first["essential"],
            )
            if merged.enabled:
                for cost in maintenance_costs:
                    histogram.observe(cost)
    return merged
