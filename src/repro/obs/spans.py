"""Span tracing layered on the :class:`~repro.simulation.tracing.TraceLog`.

A *span* is a named interval of simulated time — an election round, a
maintenance round, a query execution.  Opening a span emits a
``span.begin`` trace record and closing it emits ``span.end`` with the
sim-time duration, so any observer of the trace log sees a queryable
timeline; the registry additionally accumulates per-name counts and a
duration histogram for the run report.

Spans come in three shapes:

* ``with tracer.span("query", node=3): ...`` — synchronous work;
* ``handle = tracer.begin("election", epoch=2)`` ... ``handle.end()``
  — work spread over scheduled events (the coordinator opens the span
  at the invitation phase and closes it when modes settle);
* ``tracer.instant("cache.observe", node=3, action="shift")`` — a
  zero-duration event for hot-path occurrences where a begin/end pair
  would be pure noise.

Every ``begin`` is guaranteed a matching ``end`` with the same unique
``span`` id (``end`` is idempotent), which is the balance invariant the
chaos-matrix tests assert.  When the owning registry is disabled the
tracer hands out a shared no-op span and emits nothing.

Example
-------

>>> from repro.obs.registry import MetricsRegistry
>>> from repro.simulation.tracing import TraceLog
>>> class _Clock:
...     now = 0.0
>>> clock = _Clock()
>>> tracer = SpanTracer(TraceLog(), clock, MetricsRegistry())
>>> with tracer.span("election", epoch=1):
...     clock.now = 2.5
>>> tracer.trace.count("span.begin"), tracer.trace.count("span.end")
(1, 1)
>>> tracer.trace.of_kind("span.end")[0].payload["duration"]
2.5
"""

from __future__ import annotations

from typing import Any, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["Span", "SpanTracer", "NULL_SPAN"]

#: Sim-time duration buckets of the ``span.duration`` histogram.  The
#: paper's runs span four decades of time units (phase spacings ~1,
#: heartbeat periods ~100, lifetimes ~10k).
DURATION_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0)


class Span:
    """An open interval; ``end()`` closes it (idempotently)."""

    __slots__ = ("_tracer", "span_id", "name", "labels", "started_at", "ended_at")

    def __init__(
        self, tracer: "SpanTracer", span_id: int, name: str, labels: dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.labels = labels
        self.started_at = tracer.now()
        self.ended_at: Optional[float] = None

    @property
    def open(self) -> bool:
        """Whether the span has not been ended yet."""
        return self.ended_at is None

    @property
    def duration(self) -> Optional[float]:
        """Sim-time length, or ``None`` while still open."""
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at

    def end(self) -> None:
        """Close the span; emits ``span.end``.  Safe to call twice."""
        if self.ended_at is not None:
            return
        self.ended_at = self._tracer.now()
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class _NullSpan:
    """Shared no-op span handed out while tracing is disabled."""

    __slots__ = ()
    span_id = -1
    name = ""
    labels: dict[str, Any] = {}
    started_at = 0.0
    ended_at = 0.0
    open = False
    duration = 0.0

    def end(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanTracer:
    """Emits begin/end/instant span records into a trace log.

    Parameters
    ----------
    trace:
        The pub/sub sink begin/end records go to.
    clock:
        Anything with a ``now`` attribute in simulated time (the
        engine passes its :class:`~repro.simulation.clock.SimulationClock`).
    registry:
        Optional metrics registry; when given, span counts and duration
        histograms accumulate there, and the registry's ``enabled``
        flag gates the tracer entirely.
    """

    def __init__(self, trace, clock, registry: Optional[MetricsRegistry] = None) -> None:
        self.trace = trace
        self._clock = clock
        self._registry = registry
        self._next_id = 0
        if registry is not None:
            self._count = registry.counter("span.count", labels=("name",))
            self._durations = registry.histogram(
                "span.duration", DURATION_BUCKETS, labels=("name",)
            )
        else:
            self._count = None
            self._durations = None

    @property
    def enabled(self) -> bool:
        """Whether spans are being recorded (follows the registry)."""
        return self._registry is None or self._registry.enabled

    def now(self) -> float:
        """Current simulated time."""
        return self._clock.now

    def span(self, name: str, **labels: Any) -> Span | _NullSpan:
        """Open a span for a ``with`` block; closed on exit."""
        return self.begin(name, **labels)

    def begin(self, name: str, **labels: Any) -> Span | _NullSpan:
        """Open a span now; the caller must ``end()`` it.

        Emits ``span.begin`` with a unique ``span`` id, the name, and
        the labels; the matching ``span.end`` carries the same id.
        """
        if not self.enabled:
            return NULL_SPAN
        self._next_id += 1
        span = Span(self, self._next_id, name, labels)
        self.trace.emit(
            span.started_at, "span.begin", span=span.span_id, name=name, **labels
        )
        return span

    def instant(self, name: str, **labels: Any) -> None:
        """Emit a single zero-duration ``span.instant`` record."""
        if not self.enabled:
            return
        self.trace.emit(self._clock.now, "span.instant", name=name, **labels)

    def _finish(self, span: Span) -> None:
        duration = span.ended_at - span.started_at
        self.trace.emit(
            span.ended_at,
            "span.end",
            span=span.span_id,
            name=span.name,
            duration=duration,
            **span.labels,
        )
        if self._count is not None:
            self._count.inc(span.name)
            self._durations.observe(duration, span.name)
