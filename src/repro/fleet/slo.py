"""Windowed service-level objectives over a running deployment.

The paper argues its headline claims as *sustained* properties: the
snapshot keeps answering queries at high coverage over the network's
lifetime (Figure 10) and maintenance stays within a small per-node
message budget per round (Figure 15, Table 2).  The
:class:`SLOMonitor` turns those into operational objectives a fleet
evaluates at every slice boundary:

* **coverage floor** — trailing-window mean of the probe-query
  coverage samples must stay at or above ``coverage_floor``;
* **messages/node/round ceiling** — the per-round mean of the
  ``maintenance.msgs_per_node`` histogram, windowed over the rounds
  completed since the previous evaluation;
* **serving p99** — wall-clock p99 latency from an attached
  :class:`~repro.serving.frontend.QueryFrontEnd`'s stats, when one is
  serving traffic.

Violations are machine-readable dicts (``record="slo_violation"``)
accumulated on the monitor and returned per evaluation, so they can be
streamed to the fleet's JSONL ring and asserted on by tests.  The
monitor is pure picklable state and evaluation only *reads* the
runtime, so an armed monitor never perturbs the trajectory — it rides
inside fleet checkpoints like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["SLOConfig", "SLOMonitor"]


@dataclass(frozen=True)
class SLOConfig:
    """Objectives a fleet run is held to; ``None`` disables an objective."""

    #: Minimum trailing-window mean probe coverage (Fig. 10 accounting).
    coverage_floor: Optional[float] = None
    #: Probe samples in the trailing coverage window.
    coverage_window: int = 8
    #: Ceiling on mean protocol messages per node per maintenance round
    #: (Fig. 15 accounting), over rounds since the last evaluation.
    max_messages_per_node_per_round: Optional[float] = None
    #: Ceiling on the serving front-end's wall-clock p99 latency.
    max_p99_seconds: Optional[float] = None


class SLOMonitor:
    """Evaluate an :class:`SLOConfig` at slice boundaries."""

    def __init__(self, config: Optional[SLOConfig] = None) -> None:
        self.config = config if config is not None else SLOConfig()
        self.violations: list[dict[str, Any]] = []
        self.evaluations = 0
        # (count, sum) of maintenance.msgs_per_node at the previous
        # evaluation, for windowed per-round deltas.
        self._round_mark: tuple[float, float] = (0.0, 0.0)

    # ------------------------------------------------------------------

    def _violation(
        self, objective: str, slice_index: int, sim_time: float,
        value: float, limit: float,
    ) -> dict[str, Any]:
        return {
            "record": "slo_violation",
            "objective": objective,
            "slice": slice_index,
            "sim_time": sim_time,
            "value": value,
            "limit": limit,
        }

    def evaluate(
        self,
        runtime,
        coverage_samples,
        slice_index: int,
        frontend_stats: Optional[dict] = None,
    ) -> list[dict[str, Any]]:
        """Check every enabled objective; returns (and records) violations."""
        config = self.config
        now = runtime.simulator.now
        found: list[dict[str, Any]] = []

        if config.coverage_floor is not None and coverage_samples:
            window = list(coverage_samples)[-config.coverage_window:]
            mean = sum(window) / len(window)
            if mean < config.coverage_floor:
                found.append(
                    self._violation(
                        "coverage_floor", slice_index, now,
                        mean, config.coverage_floor,
                    )
                )

        if (
            config.max_messages_per_node_per_round is not None
            and "maintenance.msgs_per_node" in runtime.metrics
        ):
            cell = runtime.metrics.metric("maintenance.msgs_per_node").cell()
            prev_count, prev_sum = self._round_mark
            delta_count = cell.count - prev_count
            delta_sum = cell.sum - prev_sum
            self._round_mark = (cell.count, cell.sum)
            if delta_count > 0:
                per_round = delta_sum / delta_count
                if per_round > config.max_messages_per_node_per_round:
                    found.append(
                        self._violation(
                            "messages_per_node_per_round", slice_index, now,
                            per_round, config.max_messages_per_node_per_round,
                        )
                    )

        if (
            config.max_p99_seconds is not None
            and frontend_stats is not None
            and frontend_stats.get("served", 0) > 0
        ):
            p99 = frontend_stats["p99_seconds"]
            if p99 > config.max_p99_seconds:
                found.append(
                    self._violation(
                        "serving_p99", slice_index, now,
                        p99, config.max_p99_seconds,
                    )
                )

        self.evaluations += 1
        self.violations.extend(found)
        return found
