"""Long-running fleet mode: continuous operation with rolling change.

Composes the persistence, observability, fault-injection and serving
subsystems into an operable deployment: :class:`FleetState` is the
checkpointable state of a continuously running network,
:class:`FleetRunner` drives it in bounded sim-time slices (optionally
on a background thread) with rotating checkpoints, a pollable JSONL
stream, an optional background chaos schedule and **rolling
reconfiguration** (checkpoint → mutate → restore at slice boundaries),
and :class:`SLOMonitor` holds the run to the paper's sustained claims
(coverage floor per Fig. 10, messages/node/round ceiling per Fig. 15,
serving p99 when a front end is attached).  See DESIGN.md §18 and the
differential proof layer in ``tests/fleet/``.
"""

from repro.fleet.runner import (
    MUTABLE_PROTOCOL_FIELDS,
    FleetRunner,
    FleetState,
    apply_change,
)
from repro.fleet.service import (
    poll_commands,
    read_status,
    submit_command,
    write_status,
)
from repro.fleet.slo import SLOConfig, SLOMonitor

__all__ = [
    "MUTABLE_PROTOCOL_FIELDS",
    "FleetRunner",
    "FleetState",
    "SLOConfig",
    "SLOMonitor",
    "apply_change",
    "poll_commands",
    "read_status",
    "submit_command",
    "write_status",
]
