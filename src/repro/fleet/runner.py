"""Continuous fleet operation: bounded slices, rolling reconfiguration.

The paper's deployment model is a *service*, not a batch job: the
snapshot answers queries for the network's lifetime while maintenance
adapts the structure underneath.  This module makes the reproduction
operable that way:

* :class:`FleetState` — the checkpointable heart of a deployment: the
  runtime plus its probe-coverage series, :class:`~repro.fleet.slo.SLOMonitor`,
  optional :class:`~repro.faults.background.BackgroundChaos` schedule,
  and the log of applied reconfigurations.  One picklable graph, so the
  whole operating deployment freezes/restores through ``persist/``.
* :func:`apply_change` — the rolling-reconfiguration mutation: swap the
  loss model, the per-node cache policy (rebuilding the batched-round
  fleet), or the protocol's rotation/expiry/snoop knobs on a *live*
  runtime at a slice boundary.
* :class:`FleetRunner` — drives a :class:`FleetState` in bounded
  sim-time slices, optionally on a background thread, checkpointing to
  a rotating :class:`~repro.persist.ring.CheckpointRing`, streaming
  slice records / metrics snapshots / span timelines / SLO violations
  to a :class:`~repro.obs.stream.JsonlRing`, and applying requested
  reconfigurations as **checkpoint → mutate → restore** so every
  change lands on a state that provably round-trips.

Determinism argument (proven by ``tests/fleet/``): slicing only calls
``advance_to`` at intermediate times, which fires the identical event
sequence the single-shot run fires; probes draw from a runtime-owned
RNG stream that rides inside checkpoints; digesting, checkpointing and
JSONL streaming are pure reads.  A reconfiguration applied after a
checkpoint/restore round trip is therefore field-identical to the same
mutation applied directly to the live runtime at the same boundary.
"""

from __future__ import annotations

import dataclasses
import os
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Optional

from repro.faults.background import BackgroundChaos
from repro.faults.chaos import ChaosConfig
from repro.faults.injector import _FaultOverlayLoss
from repro.fleet.slo import SLOConfig, SLOMonitor
from repro.network.links import GlobalLoss, LossModel
from repro.obs.report import RunReport
from repro.obs.stream import JsonlRing
from repro.persist.checkpoint import load_checkpoint, save_checkpoint
from repro.persist.ring import CheckpointRing
from repro.query.coverage import CoverageSeries

__all__ = [
    "FleetRunner",
    "FleetState",
    "MUTABLE_PROTOCOL_FIELDS",
    "apply_change",
]

#: Protocol knobs a rolling reconfiguration may change mid-flight.
#: Timing knobs (heartbeat_period, reply windows) are excluded: armed
#: periodic tasks already captured them, so changing them would not
#: take effect until re-election and would only mislead.
MUTABLE_PROTOCOL_FIELDS = (
    "rotation_probability",
    "member_expiry_periods",
    "snoop_probability",
)


def apply_change(target: Any, change: dict[str, Any]) -> None:
    """Apply one rolling-reconfiguration ``change`` to a live runtime.

    ``target`` is a runtime or anything exposing one via ``.runtime``
    (a :class:`FleetState`).  Recognized keys:

    ``loss``
        New global loss probability; replaces the base loss model
        *under* any armed fault overlay, so in-flight bursts and
        partitions keep composing over the new floor.
    ``loss_model``
        A :class:`~repro.network.links.LossModel` instance (programmatic
        variant of ``loss``).
    ``rotation_probability`` / ``member_expiry_periods`` / ``snoop_probability``
        Protocol knobs, rebound on the runtime, every node, the
        coordinator and the maintenance manager (the config dataclass
        is frozen, so a replaced copy is installed everywhere the old
        one was shared).
    ``cache_policy`` (with optional ``cache_bytes``)
        Swap every node's cache policy for a freshly built one
        (``"model-aware"`` or ``"round-robin"``) and rebuild the
        batched-round fleet to match.  Models are rebuilt from scratch
        — the new policy re-learns from post-change traffic.

    Raises ``ValueError`` on unknown keys and ``RuntimeError`` if a
    cache swap is attempted while the observation router holds pending
    observations (not a slice boundary).
    """
    runtime = getattr(target, "runtime", target)
    change = dict(change)
    recognized = set(MUTABLE_PROTOCOL_FIELDS) | {
        "loss", "loss_model", "cache_policy", "cache_bytes",
    }
    unknown = sorted(set(change) - recognized)
    if unknown:
        raise ValueError(f"unknown reconfiguration keys {unknown}; "
                         f"choose from {sorted(recognized)}")
    if "loss" in change and "loss_model" in change:
        raise ValueError("give either 'loss' or 'loss_model', not both")
    if "cache_bytes" in change and "cache_policy" not in change:
        raise ValueError("'cache_bytes' requires 'cache_policy'")

    if "loss" in change or "loss_model" in change:
        new_loss: LossModel = (
            change["loss_model"]
            if "loss_model" in change
            else GlobalLoss(float(change["loss"]))
        )
        current = runtime.radio.loss_model
        if isinstance(current, _FaultOverlayLoss):
            current.base = new_loss
        else:
            runtime.radio.loss_model = new_loss

    protocol_updates = {
        key: change[key] for key in MUTABLE_PROTOCOL_FIELDS if key in change
    }
    if protocol_updates:
        new_config = dataclasses.replace(runtime.config, **protocol_updates)
        runtime.config = new_config
        for node in runtime.nodes.values():
            node.config = new_config
            if "snoop_probability" in protocol_updates:
                node.snoop_probability = new_config.snoop_probability
        runtime.coordinator.config = new_config
        runtime.maintenance.config = new_config

    if "cache_policy" in change:
        from repro.core.runtime import DEFAULT_CACHE_BYTES
        from repro.experiments.harness import make_cache_factory
        from repro.models.estimator import NeighborModelStore

        router = runtime.observation_router
        if router is not None and router.pending:
            raise RuntimeError(
                "cache policy swap requires a quiescent observation "
                "router (reconfigure at a slice boundary)"
            )
        factory = make_cache_factory(
            change["cache_policy"],
            int(change.get("cache_bytes", DEFAULT_CACHE_BYTES)),
        )
        for node_id in sorted(runtime.nodes):
            runtime.nodes[node_id].store = NeighborModelStore(factory())
        if router is not None:
            # None => the router falls back to scalar application (the
            # round-robin path); fresh model-aware caches re-vectorize.
            router.fleet = runtime._build_fleet()


class FleetState:
    """The checkpointable state of one continuously operating deployment."""

    def __init__(
        self,
        runtime,
        slo: Optional[SLOConfig] = None,
        probe_area: Optional[float] = 0.4,
    ) -> None:
        self.runtime = runtime
        self.monitor = SLOMonitor(slo)
        self.coverage = CoverageSeries()
        self.slices_done = 0
        self.reconfigurations: list[dict[str, Any]] = []
        self.chaos: Optional[BackgroundChaos] = None
        self.probe_area = probe_area

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------

    def attach_chaos(
        self,
        config: ChaosConfig,
        interval: Optional[float] = None,
        first_delay: Optional[float] = None,
        transient_only: bool = True,
    ) -> BackgroundChaos:
        """Arm a deterministic background fault schedule (see faults/)."""
        if self.chaos is not None and self.chaos.running:
            raise RuntimeError("a background chaos schedule is already armed")
        self.chaos = BackgroundChaos(
            self.runtime, config, interval=interval, transient_only=transient_only
        )
        self.chaos.start(first_delay=first_delay)
        return self.chaos

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def _probe(self) -> Optional[float]:
        """One coverage probe: a random snapshot query over the deployment.

        The region comes from a runtime-owned RNG stream, so probes are
        part of the deterministic trajectory and ride in checkpoints.
        """
        from repro.query.ast import Query
        from repro.query.executor import QueryExecutor
        from repro.query.spatial import random_square

        region = random_square(
            self.probe_area, self.runtime.simulator.random.stream("fleet.probes")
        )
        try:
            result = QueryExecutor(self.runtime).execute(
                Query(region=region, use_snapshot=True)
            )
        except RuntimeError:
            return None  # every node dead — no sample, still a valid state
        return self.coverage.record(result)

    def step(
        self,
        slice_length: float,
        frontend_stats: Optional[dict] = None,
    ) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """Run one bounded slice; returns (slice record, new violations)."""
        runtime = self.runtime
        end = runtime.run_slice(slice_length)
        sample = self._probe() if self.probe_area is not None else None
        violations = self.monitor.evaluate(
            runtime, self.coverage.samples, self.slices_done,
            frontend_stats=frontend_stats,
        )
        record = {
            "record": "slice",
            "index": self.slices_done,
            "sim_time": end,
            "events_processed": runtime.simulator.events_processed,
            "epoch": runtime.current_epoch,
            "alive": len(runtime.alive_ids()),
            "coverage": sample,
            "violations": len(violations),
        }
        self.slices_done += 1
        return record, violations

    def reconfigure(self, change: dict[str, Any]) -> None:
        """Apply ``change`` to the live runtime and log it."""
        apply_change(self, change)
        self.reconfigurations.append(
            {"slice": self.slices_done, "change": dict(change)}
        )

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """A point-in-time, JSON-serializable view of the deployment."""
        runtime = self.runtime
        status = {
            "record": "status",
            "sim_time": runtime.simulator.now,
            "slices_done": self.slices_done,
            "events_processed": runtime.simulator.events_processed,
            "epoch": runtime.current_epoch,
            "structure_version": list(runtime.structure_version()),
            "n_nodes": len(runtime.nodes),
            "alive": len(runtime.alive_ids()),
            "maintenance_rounds": runtime.maintenance.rounds_completed,
            "messages_sent": sum(runtime.stats.sent.values()),
            "probes": len(self.coverage),
            "coverage_mean": self.coverage.mean,
            "violations": len(self.monitor.violations),
            "reconfigurations": len(self.reconfigurations),
            "rotation_probability": runtime.config.rotation_probability,
            "cache_policy": type(
                next(iter(runtime.nodes.values())).store.policy
            ).__name__ if runtime.nodes else None,
        }
        if self.coverage.samples:
            status["coverage_last"] = self.coverage.samples[-1]
        if self.chaos is not None:
            status["chaos_plans_armed"] = self.chaos.plans_armed
        return status

    def digest_extra(self) -> dict[str, Any]:
        """Fleet-level state folded into the whole-sim digest."""
        extra = {
            "fleet": (
                self.slices_done,
                self.probe_area,
                tuple(self.coverage.samples),
                tuple(
                    (entry["slice"], tuple(sorted(entry["change"].items())))
                    for entry in self.reconfigurations
                ),
                self.monitor.config,
                self.monitor.evaluations,
                tuple(
                    tuple(sorted(violation.items()))
                    for violation in self.monitor.violations
                ),
            )
        }
        if self.chaos is not None:
            extra.update(self.chaos.digest_extra())
        return extra


class FleetRunner:
    """Drive a :class:`FleetState` in slices, optionally on a thread.

    Parameters
    ----------
    state:
        The deployment to operate.
    slice_length:
        Sim-time per slice.
    directory:
        Fleet home; enables the checkpoint ring (``checkpoints/``) and
        the JSONL stream (``stream/``) when given.
    checkpoint_every:
        Checkpoint to the ring every N slices (0 disables periodic
        checkpoints; reconfiguration round trips still happen, through
        a scratch file when no ring exists).
    frontend:
        An attached :class:`~repro.serving.frontend.QueryFrontEnd`;
        slices and reconfigurations run under its runtime lock so
        serving stays race-free, and its stats feed the p99 SLO.
    pace:
        Wall-clock seconds to sleep between background-thread slices.
    max_slices:
        Stop the background loop after this many total slices.
    stream_trace:
        Also stream new trace records (span timelines) each slice;
        requires the runtime to keep trace records.
    """

    def __init__(
        self,
        state: FleetState,
        slice_length: float,
        directory: Optional[str | os.PathLike] = None,
        *,
        checkpoint_every: int = 0,
        keep_checkpoints: int = 4,
        frontend=None,
        pace: float = 0.0,
        max_slices: Optional[int] = None,
        stream_trace: bool = False,
        metrics_every: int = 1,
    ) -> None:
        if slice_length <= 0:
            raise ValueError(f"slice_length must be positive, got {slice_length}")
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        self.state = state
        self.slice_length = float(slice_length)
        self.directory = Path(directory) if directory is not None else None
        self.checkpoint_every = int(checkpoint_every)
        self.ring: Optional[CheckpointRing] = None
        self.stream: Optional[JsonlRing] = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.ring = CheckpointRing(
                self.directory / "checkpoints", keep=keep_checkpoints
            )
            self.stream = JsonlRing(self.directory / "stream")
        self.frontend = frontend
        self.pace = float(pace)
        self.max_slices = max_slices
        self.stream_trace = bool(stream_trace)
        self.metrics_every = int(metrics_every)
        self.last_error: Optional[BaseException] = None
        self._pending: deque[dict[str, Any]] = deque()
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._trace_streamed = 0

    # ------------------------------------------------------------------
    # streaming helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _jsonable(value: Any) -> Any:
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        if isinstance(value, dict):
            return {str(k): FleetRunner._jsonable(v) for k, v in value.items()}
        if isinstance(value, (list, tuple, set, frozenset)):
            return [FleetRunner._jsonable(v) for v in value]
        return repr(value)

    def _emit(self, record: dict[str, Any]) -> None:
        if self.stream is not None:
            self.stream.append(self._jsonable(record))

    def _stream_slice(self, record: dict, violations: list[dict]) -> None:
        if self.stream is None:
            return
        self._emit(record)
        for violation in violations:
            self._emit(violation)
        index = record["index"]
        if self.metrics_every and index % self.metrics_every == 0:
            report = RunReport.capture(
                self.state.runtime, meta={"slice": index}
            )
            self._emit(
                {"record": "metrics", "slice": index, "summary": report.summary()}
            )
        if self.stream_trace:
            trace = self.state.runtime.simulator.trace
            for entry in trace.records[self._trace_streamed:]:
                self._emit(
                    {
                        "record": "trace",
                        "time": entry.time,
                        "kind": entry.kind,
                        "payload": entry.payload,
                    }
                )
            self._trace_streamed = len(trace.records)

    # ------------------------------------------------------------------
    # rolling reconfiguration
    # ------------------------------------------------------------------

    def request_reconfigure(self, change: dict[str, Any]) -> None:
        """Queue ``change`` for the next slice boundary (thread-safe)."""
        with self._lock:
            self._pending.append(dict(change))

    def _roundtrip_reconfigure(self, change: dict[str, Any]) -> None:
        """checkpoint → mutate → restore: the rolling-reconfig contract.

        The mutation is applied to a state that just survived a full
        freeze/restore cycle, so (a) the pre-change state is durably on
        disk in the ring, and (b) determinism is preserved by
        construction — the differential suite proves the round trip is
        trajectory-neutral.
        """
        if self.ring is not None:
            path = self.ring.save(
                self.state, meta={"reconfigure": self._jsonable(change)}
            )
            new_state = load_checkpoint(path, verify=True)
        else:
            with tempfile.TemporaryDirectory() as scratch:
                path = os.path.join(scratch, "reconfigure.ckpt")
                save_checkpoint(self.state, path)
                new_state = load_checkpoint(path, verify=True)
        new_state.reconfigure(change)
        self.state = new_state
        if self.frontend is not None:
            self.frontend.rebind(new_state.runtime)
        self._emit(
            {
                "record": "reconfigure",
                "slice": new_state.slices_done,
                "sim_time": new_state.runtime.simulator.now,
                "change": change,
            }
        )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def run_slice(self) -> dict[str, Any]:
        """Apply pending reconfigurations, run one slice, stream, checkpoint."""
        with self._lock:
            frontend_lock = (
                self.frontend.runtime_lock if self.frontend is not None
                else _NULL_LOCK
            )
            with frontend_lock:
                while self._pending:
                    self._roundtrip_reconfigure(self._pending.popleft())
                stats = (
                    self.frontend.stats() if self.frontend is not None else None
                )
                record, violations = self.state.step(
                    self.slice_length, frontend_stats=stats
                )
            self._stream_slice(record, violations)
            if (
                self.ring is not None
                and self.checkpoint_every
                and self.state.slices_done % self.checkpoint_every == 0
            ):
                self.ring.save(
                    self.state, meta={"slice": self.state.slices_done}
                )
            return record

    def run(self, n_slices: int) -> list[dict[str, Any]]:
        """Run ``n_slices`` slices in the calling thread."""
        return [self.run_slice() for _ in range(n_slices)]

    # ------------------------------------------------------------------
    # background thread
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        try:
            while not self._stop.is_set():
                if (
                    self.max_slices is not None
                    and self.state.slices_done >= self.max_slices
                ):
                    break
                self.run_slice()
                if self.pace > 0:
                    self._stop.wait(self.pace)
        except BaseException as error:  # surfaced via status()/stop()
            self.last_error = error

    def start(self) -> "FleetRunner":
        """Start slicing on a daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-fleet", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Stop the background loop and join it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
        if self.stream is not None:
            self.stream.close()
        if self.last_error is not None:
            raise self.last_error

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def __enter__(self) -> "FleetRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def status(self) -> dict[str, Any]:
        """The in-process status endpoint (thread-safe, read-only)."""
        with self._lock:
            status = self.state.status()
            status["running"] = self.running
            status["slice_length"] = self.slice_length
            status["pending_reconfigurations"] = len(self._pending)
            if self.max_slices is not None:
                status["max_slices"] = self.max_slices
            if self.ring is not None:
                status["checkpoints"] = [str(path) for path in self.ring.paths()]
            if self.stream is not None:
                status["stream_segments"] = [
                    str(path) for path in self.stream.segment_paths()
                ]
                status["stream_records"] = self.stream.records_written
            if self.frontend is not None:
                status["serving"] = self.frontend.stats()
            if self.last_error is not None:
                status["error"] = repr(self.last_error)
            return status


class _NullLock:
    """Stand-in context manager when no front end is attached."""

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_LOCK = _NullLock()
