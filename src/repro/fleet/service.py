"""File-based control plane for a fleet running in another process.

``repro fleet start`` operates a deployment out of one *fleet
directory*; sibling CLI invocations (``status`` / ``reconfigure`` /
``stop``) talk to it through that directory alone — no sockets, no
PID files:

* ``status.json`` — the runner's latest status, rewritten atomically
  (tmp + rename) after every slice, so a reader always sees a complete
  document;
* ``control/cmd-<sequence>.json`` — one file per submitted command,
  named by a monotonically increasing sequence so the runner consumes
  them in submission order and deletes each after applying it;
* ``stream/`` and ``checkpoints/`` — the runner's JSONL ring and
  checkpoint ring (owned by :class:`~repro.fleet.runner.FleetRunner`).

Commands are plain dicts: ``{"command": "stop"}`` or
``{"command": "reconfigure", "change": {...}}``.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "poll_commands",
    "read_status",
    "submit_command",
    "write_status",
]

_CMD_RE = re.compile(r"^cmd-(?P<seq>\d+)\.json$")


def _control_dir(directory: str | os.PathLike) -> Path:
    return Path(directory) / "control"


def status_path(directory: str | os.PathLike) -> Path:
    return Path(directory) / "status.json"


def write_status(directory: str | os.PathLike, status: dict[str, Any]) -> Path:
    """Atomically replace ``status.json`` with ``status``."""
    path = status_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(status, sort_keys=True, indent=2), encoding="utf-8")
    os.replace(tmp, path)
    return path


def read_status(directory: str | os.PathLike) -> Optional[dict[str, Any]]:
    """The runner's last written status, or ``None`` if none exists yet."""
    path = status_path(directory)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except json.JSONDecodeError:
        return None  # racing the atomic replace on a non-POSIX filesystem


def submit_command(directory: str | os.PathLike, command: dict[str, Any]) -> Path:
    """Drop one command file for the running fleet to consume.

    The sequence number is ``time_ns`` bumped past any existing file,
    so concurrent submitters cannot collide and ordering follows
    submission order.
    """
    control = _control_dir(directory)
    control.mkdir(parents=True, exist_ok=True)
    sequence = time.time_ns()
    existing = _command_sequences(control)
    if existing and sequence <= existing[-1]:
        sequence = existing[-1] + 1
    path = control / f"cmd-{sequence}.json"
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(command, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)
    return path


def _command_sequences(control: Path) -> list[int]:
    if not control.is_dir():
        return []
    sequences = []
    for entry in control.iterdir():
        match = _CMD_RE.match(entry.name)
        if match:
            sequences.append(int(match.group("seq")))
    return sorted(sequences)


def poll_commands(directory: str | os.PathLike) -> list[dict[str, Any]]:
    """Consume (read + delete) all pending commands, in sequence order."""
    control = _control_dir(directory)
    commands = []
    for sequence in _command_sequences(control):
        path = control / f"cmd-{sequence}.json"
        try:
            command = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            continue
        path.unlink(missing_ok=True)
        commands.append(command)
    return commands
