"""Protocol configuration.

Collects every tunable of the snapshot protocol in one frozen value
object.  Defaults follow the paper where it states them (sse metric,
``T = 1``); timing constants are expressed in the same abstract time
units as the simulation and are sized so that one complete election
(four phases plus refinement cascades) settles well within a couple of
time units, as implied by the paper's "up to six messages" budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.models.metrics import ErrorMetric, SumSquaredError

__all__ = ["ProtocolConfig"]


@dataclass(frozen=True)
class ProtocolConfig:
    """All knobs of the election + maintenance protocol.

    Attributes
    ----------
    threshold:
        The error threshold ``T`` of the representability test.
    metric:
        Error metric ``d``; the paper's experiments all use sse.
    phase_spacing:
        Time between the election phases (invitation → model
        evaluation → initial selection → refinement).
    ack_delay:
        Debounce delay before a representative broadcasts its Rule-3
        acknowledgment, so one broadcast covers all StayActive
        requesters of the round (footnote a of Figure 5).
    max_wait:
        ``MAX_WAIT`` of Rule-4: how long after refinement starts an
        UNDEFINED node waits before the randomized fallback.
    rule4_retry:
        Period between Rule-4 reconsiderations ("WAIT(1) — reconsider
        in next time unit").
    p_wait:
        ``P_wait`` of Rule-4: the probability of *waiting* another
        round instead of going ACTIVE (the paper's
        ``if rand() > P_wait: ACTIVE``).  Each wait re-runs the rule
        loop (re-sending a lost Rule-3 request), so a high value makes
        the refinement robust to message loss at the cost of a longer
        worst-case settle time; the paper leaves the value unstated and
        we default to 0.95.
    reply_window:
        How long a maintenance inviter collects candidate offers before
        selecting a representative.  Must exceed ``offer_batch_delay``
        (plus radio latency) or offers arrive after selection.
    offer_batch_delay:
        How long a responder accumulates concurrently heard maintenance
        invitations before broadcasting one combined candidate list.
        Batching is what keeps Figure 15's per-update message cost
        around 2–4.5 messages per node instead of one offer broadcast
        per (inviter, responder) pair.
    heartbeat_period:
        Period of the passive nodes' heartbeats / lone-active
        invitations (§5.1).
    lone_invite_probability:
        Probability that an ACTIVE node representing only itself
        broadcasts its periodic invitation in a given maintenance round.
        Randomizing prevents the all-inviting deadlock where every lone
        node awaits offers and none responds (the same style of fix as
        Rule-4's ``P_wait``).
    heartbeat_timeout:
        How long a passive node waits for its representative's reply
        before declaring it unreachable and re-electing.
    snoop_probability:
        Probability of feeding an *overheard* data report into the
        model cache (the paper's §6.3 run uses 5%; model-training
        phases use 1.0).
    energy_resign_fraction:
        Battery fraction below which a representative hands off its
        members (§5.1); set to 0 to disable.
    rotation_probability:
        Per-maintenance-round probability that a representative resigns
        to rotate the role, LEACH-style (§5.1); 0 disables.
    selection_policy:
        How a node picks among representation offers: ``"longest-list"``
        (the paper's rule — most candidates, largest id breaks ties) or
        ``"random"`` (a uniformly random offer; the ablation baseline
        showing why consolidation matters).
    member_expiry_periods:
        A representative drops its claim on a member it has not heard a
        heartbeat from for this many heartbeat periods (§3's
        timestamp-based filtering of spurious representation; matters
        under mobility and loss).  0 — the default — disables expiry:
        the paper's lifetime experiment relies on representatives
        answering for *dead* members indefinitely, so expiry is opt-in
        for mobile deployments.
    observe_node_label:
        Whether the ``cache.observe`` counter keys each increment by
        ``(node, action)`` (the default, handy for per-node debugging)
        or by ``action`` alone.  The per-node key is a label-cardinality
        footgun at scale — N × |actions| counter cells at N nodes — so
        large-deployment benches set this to ``False``.
    rng_discipline:
        How simulation randomness is streamed.  ``"shared"`` (the
        default) draws protocol, radio and maintenance randomness from
        three process-wide streams — the historical behaviour every
        golden trace pins.  ``"per-entity"`` gives each entity its own
        named stream (``radio.<sender>``, ``protocol.<node>``,
        ``maintenance.<node>``) and makes the radio sample loss for
        *every* in-range receiver, dead or alive (dead receivers are
        then filtered — and accounted — at delivery time).  Per-entity
        draws are independent of interleaving and of remote node state,
        which is what lets the sharded engine reproduce a single-process
        run bit-for-bit; see DESIGN.md §17.
    """

    threshold: float = 1.0
    metric: ErrorMetric = field(default_factory=SumSquaredError)
    phase_spacing: float = 0.1
    ack_delay: float = 0.05
    max_wait: float = 1.0
    rule4_retry: float = 1.0
    p_wait: float = 0.95
    reply_window: float = 3.0
    offer_batch_delay: float = 2.0
    heartbeat_period: float = 100.0
    heartbeat_timeout: float = 0.5
    lone_invite_probability: float = 0.5
    selection_policy: str = "longest-list"
    member_expiry_periods: float = 0.0
    snoop_probability: float = 1.0
    energy_resign_fraction: float = 0.0
    rotation_probability: float = 0.0
    observe_node_label: bool = True
    rng_discipline: str = "shared"

    def __post_init__(self) -> None:
        if self.rng_discipline not in ("shared", "per-entity"):
            raise ValueError(
                f"unknown rng_discipline {self.rng_discipline!r}; "
                f"expected 'shared' or 'per-entity'"
            )
        if self.threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {self.threshold}")
        for name in (
            "phase_spacing",
            "ack_delay",
            "max_wait",
            "rule4_retry",
            "reply_window",
            "offer_batch_delay",
            "heartbeat_period",
            "heartbeat_timeout",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.member_expiry_periods < 0:
            raise ValueError(
                f"member_expiry_periods must be non-negative, got "
                f"{self.member_expiry_periods}"
            )
        if self.selection_policy not in ("longest-list", "random"):
            raise ValueError(
                f"unknown selection_policy {self.selection_policy!r}; "
                f"expected 'longest-list' or 'random'"
            )
        if self.reply_window <= self.offer_batch_delay:
            raise ValueError(
                f"reply_window ({self.reply_window}) must exceed "
                f"offer_batch_delay ({self.offer_batch_delay}), or batched "
                f"offers arrive after the inviter has already selected"
            )
        for name in (
            "p_wait",
            "snoop_probability",
            "energy_resign_fraction",
            "rotation_probability",
            "lone_invite_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
