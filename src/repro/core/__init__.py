"""The paper's primary contribution: snapshot election and maintenance.

Implements §5's localized representative election (Table 2's phases and
Figure 5's refinement rules), §5.1's maintenance (heartbeats,
re-election, energy hand-off, LEACH-style rotation), §3's snapshot view
with spurious-representative auditing, and the §3.1 multi-resolution /
per-query-threshold extensions.
"""

from repro.core.config import ProtocolConfig
from repro.core.election import ElectionCoordinator
from repro.core.maintenance import MaintenanceManager
from repro.core.multi_resolution import MultiResolutionSnapshot
from repro.core.protocol import MemberInfo, ProtocolNode
from repro.core.runtime import DEFAULT_CACHE_BYTES, SnapshotRuntime
from repro.core.snapshot import SnapshotView, SpuriousAudit
from repro.core.status import NodeMode

__all__ = [
    "DEFAULT_CACHE_BYTES",
    "ElectionCoordinator",
    "MaintenanceManager",
    "MemberInfo",
    "MultiResolutionSnapshot",
    "NodeMode",
    "ProtocolConfig",
    "ProtocolNode",
    "SnapshotRuntime",
    "SnapshotView",
    "SpuriousAudit",
]
