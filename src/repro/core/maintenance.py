"""Snapshot maintenance scheduling (§5.1).

Each maintenance round:

* every PASSIVE node heartbeats its representative (which replies with
  its estimate; a bad or missing reply triggers a localized
  re-election);
* every ACTIVE node that represents only itself broadcasts an
  invitation, trying to fold itself under an existing representative;
* representatives run the energy check (hand-off below the battery
  threshold) and, optionally, the LEACH-style random rotation.

Heartbeats are *staggered*: each node's periodic task starts with a
random offset inside the first period, so concurrent invitations do not
collide (two lone actives inviting at the same instant would refuse to
adopt each other) and the radio load is spread — the same reason LEACH
randomizes cluster-head self-election.

The manager also keeps per-round message accounting for Figure 15: call
``round_message_costs`` after a run to get the average number of
protocol messages per node per maintenance round.
"""

from __future__ import annotations

from functools import partial
from typing import Mapping

from repro.core.config import ProtocolConfig
from repro.core.protocol import ProtocolNode
from repro.core.status import NodeMode
from repro.network.stats import MessageStats
from repro.simulation.engine import PeriodicTask, Simulator

__all__ = ["MaintenanceManager"]

#: Buckets of the ``maintenance.msgs_per_node`` histogram, framing the
#: 2–4.5 messages/node band Figure 15 reports per update.
COST_BUCKETS = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 12.0)


class MaintenanceManager:
    """Drives the periodic §5.1 maintenance over all protocol nodes."""

    def __init__(
        self,
        simulator: Simulator,
        nodes: Mapping[int, ProtocolNode],
        config: ProtocolConfig,
        stats: MessageStats,
        staggered: bool = True,
        router=None,
    ) -> None:
        self.simulator = simulator
        self.nodes = nodes
        self.config = config
        self.stats = stats
        self.staggered = staggered
        #: Optional :class:`~repro.core.round_batch.BatchedObservationRouter`;
        #: round close flushes it defensively so the Fig-15 accounting
        #: and round trace never straddle an un-applied batch.
        self.router = router
        self._tasks: list[PeriodicTask] = []
        self._rng = simulator.random.stream("maintenance")
        self._entity_rngs: dict[int, object] = {}
        self._per_entity = config.rng_discipline == "per-entity"
        #: Sharded engine wiring: the full topology's node ids (this
        #: manager's ``nodes`` holds only the local shard's subset).
        #: Iterating the *global* list in :meth:`start` keeps every
        #: shard's root-event numbering aligned — remote nodes consume a
        #: lineage root slot without scheduling anything locally.
        self.global_node_ids = None
        #: When true, :meth:`_close_round` records raw per-shard
        #: ``(window_total, n_alive)`` pairs instead of finished Fig-15
        #: costs; the digest merge reconstructs the global costs.
        self.shard_accounting = False
        self._round_costs: list[float] = []
        self._rounds = 0
        self._rounds_counter = simulator.metrics.counter("maintenance.rounds")
        self._cost_histogram = simulator.metrics.histogram(
            "maintenance.msgs_per_node", COST_BUCKETS
        )
        self._round_span = None

    def _node_rng(self, node_id: int):
        """The stream maintenance draws for ``node_id`` come from.

        Under the default shared discipline every node draws from the
        single ``maintenance`` stream (draws interleave in iteration
        order); under ``per-entity`` each node owns
        ``maintenance.<id>``, so a shard holding only a subset of the
        fleet still draws exactly what the reference drew for each node.
        """
        if not self._per_entity:
            return self._rng
        rng = self._entity_rngs.get(node_id)
        if rng is None:
            rng = self.simulator.random.stream(f"maintenance.{node_id}")
            self._entity_rngs[node_id] = rng
        return rng

    @property
    def running(self) -> bool:
        """Whether maintenance tasks are armed."""
        return any(not task.stopped for task in self._tasks)

    @property
    def rounds_completed(self) -> int:
        """Number of maintenance rounds that have run."""
        return self._rounds

    def start(self) -> None:
        """Arm the periodic maintenance tasks.

        With ``staggered=True`` (default) each node acts at its own
        random offset within every period; otherwise all nodes act
        together each period (plus a small deterministic per-node
        stagger to avoid simultaneous invitations).
        """
        if self.running:
            raise RuntimeError("maintenance already started")
        period = self.config.heartbeat_period
        if self.global_node_ids is not None:
            node_ids = list(self.global_node_ids)
        else:
            node_ids = sorted(self.nodes)
        n = max(1, len(node_ids))
        # Cluster each round's actions into a tight burst: heartbeats,
        # timeouts and the resulting re-election invitations then all
        # fall inside one offer-batching window, so every responder
        # sends at most one combined CandidateList per round — the
        # precondition for Figure 15's 2–4.5 messages/node per update.
        window = min(1.0, period / 4)
        for index, node_id in enumerate(node_ids):
            if node_id not in self.nodes:
                # Remote shard owns this node; burn the lineage root slot
                # its per-node task would have taken so root numbering
                # stays aligned with the single-process reference.
                self.simulator.lineage.skip_root()
                continue
            if self.staggered:
                offset = float(self._node_rng(node_id).uniform(0.0, window))
            else:
                offset = window * index / n
            task = self.simulator.every(
                period,
                partial(self._node_action, node_id),
                label=f"maintenance:{node_id}",
                first_delay=offset,
            )
            self._tasks.append(task)
        # Round bookkeeping task: checkpoints message counters at each
        # period boundary so Figure 15's per-update costs are exact.
        self.stats.checkpoint()
        self._tasks.append(
            self.simulator.every(
                period, self._close_round, label="maintenance:round", first_delay=period
            )
        )
        if self.simulator.shared_emitter:
            self._round_span = self.simulator.spans.begin(
                "maintenance.round", index=self._rounds + 1
            )

    def stop(self, close_partial=None) -> None:
        """Disarm all maintenance tasks, closing the open accounting window.

        Idempotent: stopping an already-stopped (or never-started)
        manager is a no-op.  The partial round in flight at stop time is
        recorded if it carried any traffic — otherwise its messages
        silently vanish from :meth:`round_message_costs` *and* a
        subsequent :meth:`start` re-checkpoints mid-window, folding the
        orphaned messages into the next round's cost (skewing Figure 15
        upward).

        ``close_partial`` overrides the traffic check: the sharded
        controller passes the *global* verdict so every shard closes (or
        skips) the partial round together even when its local window is
        empty, keeping per-shard cost indices aligned for the merge.
        """
        if not self._tasks:
            return
        for task in self._tasks:
            task.stop()
        self._tasks.clear()
        if close_partial is None:
            close_partial = bool(self.stats.window_protocol_total())
        if close_partial:
            self._close_round()
        if self._round_span is not None:
            self._round_span.end()
            self._round_span = None

    def _node_action(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if not node.alive:
            return
        rng = self._node_rng(node_id)
        node.check_energy()
        if self.config.member_expiry_periods > 0:
            node.expire_stale_members(
                self.config.member_expiry_periods * self.config.heartbeat_period
            )
        if (
            node.mode is NodeMode.ACTIVE
            and node.represented
            and self.config.rotation_probability > 0
            and rng.random() < self.config.rotation_probability
        ):
            node.resign()
            return
        if node.mode is NodeMode.PASSIVE:
            node.send_heartbeat()
        elif node.mode is NodeMode.ACTIVE and not node.represented:
            # Randomized so concurrent lone actives take turns
            # inviting vs responding; otherwise a round where every
            # lone node awaits offers leaves no one to answer.
            if rng.random() < self.config.lone_invite_probability:
                node.lone_active_invite()

    def _close_round(self) -> None:
        """Record this round's per-node protocol message cost (Fig. 15)."""
        # Defensive: the engine's barrier has already flushed before
        # this (priority-0) event fires; a direct _close_round call from
        # stop() must not straddle a pending batch either.
        if self.router is not None and self.router.pending:
            self.router.flush()
        n_alive = sum(1 for node in self.nodes.values() if node.alive)
        if self.shard_accounting:
            # Record the raw local ingredients every round (even empty
            # ones) so the merge can align rounds by index and rebuild
            # the global cost as sum(totals) / sum(alive).
            self._round_costs.append(
                (self.stats.window_protocol_total(), n_alive)
            )
        elif n_alive > 0:
            cost = self.stats.window_protocol_per_node(n_alive)
            self._round_costs.append(cost)
            self._cost_histogram.observe(cost)
        self.stats.checkpoint()
        self._rounds += 1
        if self.simulator.shared_emitter:
            self._rounds_counter.inc()
            if self._round_span is not None:
                self._round_span.end()
                self._round_span = None
            self.simulator.trace.emit(
                self.simulator.now, "maintenance.round", index=self._rounds
            )
            # Re-open for the next round while the periodic tasks are
            # still armed; the stop() path clears the task list first,
            # so no span is left dangling at shutdown.
            if self._tasks:
                self._round_span = self.simulator.spans.begin(
                    "maintenance.round", index=self._rounds + 1
                )

    def round_message_costs(self) -> list[float]:
        """Protocol messages per node for each completed round."""
        return list(self._round_costs)

    def average_messages_per_node(self) -> float:
        """Mean per-round protocol messages per node (Figure 15's y-axis)."""
        if not self._round_costs:
            return 0.0
        return sum(self._round_costs) / len(self._round_costs)
