"""Network-wide election rounds.

The coordinator schedules the four phases of Table 2 on every alive
node: invitation at ``t0``, model evaluation one phase-spacing later,
initial selection after two, refinement after three.  Phases are global
wall-clock instants — the paper's nodes are loosely synchronized (via
TinyOS clocks or a continuous query's epoch id, §3) — while everything
*within* a phase travels as real, lossy radio messages.

The coordinator is only a scheduler: all protocol logic lives in
:class:`~repro.core.protocol.ProtocolNode`.  After
``settle_delay`` time units, every node has resolved its mode with
overwhelming probability (Rule-4 resolves geometrically); the runtime's
``run_election`` helper simply runs the simulator that far.
"""

from __future__ import annotations

from functools import partial
from typing import Mapping, Optional

from repro.core.config import ProtocolConfig
from repro.core.protocol import ProtocolNode
from repro.simulation.engine import Simulator

__all__ = ["ElectionCoordinator"]

#: Rule-4 retries allowed for in ``settle_delay``; with the default
#: ``P_wait = 0.95`` the probability a node is still UNDEFINED after 120
#: retries is below 0.3% even when every retry message is lost.  A node
#: that somehow is still UNDEFINED at capture time is treated as ACTIVE
#: (the protocol's own bias), so the tail is harmless.
_RULE4_RETRIES_BUDGET = 120


class _ElectionRound:
    """One scheduled election round's phase callbacks.

    A plain object (not closures) so the pending phase events — and any
    checkpoint taken mid-election — pickle cleanly.  The open span
    handle lives on the round, exactly as the former closure's ``handle``
    dict did.
    """

    __slots__ = ("coordinator", "epoch", "_span")

    def __init__(self, coordinator: "ElectionCoordinator", epoch: int) -> None:
        self.coordinator = coordinator
        self.epoch = epoch
        self._span = None

    def run_phase(self, method_name: str) -> None:
        # Branch the lineage per node id: a shard iterating only its
        # local subset then mints the same stamps the single-process
        # reference minted for those nodes' follow-up events.
        simulator = self.coordinator.simulator
        with simulator.fanout():
            for node in self.coordinator.nodes.values():
                if node.alive:
                    with simulator.branch(node.node_id):
                        getattr(node, method_name)()

    def begin(self) -> None:
        simulator = self.coordinator.simulator
        if simulator.shared_emitter:
            self.coordinator._rounds.inc()
            self._span = simulator.spans.begin("election", epoch=self.epoch)
        with simulator.fanout():
            for node in self.coordinator.nodes.values():
                if node.alive:
                    with simulator.branch(node.node_id):
                        node.reset_round(self.epoch)
        self.run_phase("phase_invite")
        if simulator.shared_emitter:
            simulator.trace.emit(
                simulator.now, "election.started", epoch=self.epoch
            )

    def settle(self) -> None:
        self.run_phase("end_refinement")
        span, self._span = self._span, None
        if span is not None:
            span.end()


class ElectionCoordinator:
    """Schedules global election rounds over a set of protocol nodes."""

    def __init__(
        self,
        simulator: Simulator,
        nodes: Mapping[int, ProtocolNode],
        config: ProtocolConfig,
    ) -> None:
        self.simulator = simulator
        self.nodes = nodes
        self.config = config
        self.epoch = 0
        self._rounds = simulator.metrics.counter("election.rounds")

    @property
    def settle_delay(self) -> float:
        """Time from round start until all modes have settled (w.h.p.)."""
        return (
            3 * self.config.phase_spacing
            + self.config.max_wait
            + _RULE4_RETRIES_BUDGET * self.config.rule4_retry
        )

    def start_round(self, at: Optional[float] = None) -> int:
        """Schedule one full election round; returns its epoch number.

        Parameters
        ----------
        at:
            Absolute start time; defaults to the current simulated time.
        """
        t0 = self.simulator.now if at is None else at
        if t0 < self.simulator.now:
            raise ValueError(
                f"cannot start an election in the past ({t0} < {self.simulator.now})"
            )
        self.epoch += 1
        epoch = self.epoch
        spacing = self.config.phase_spacing

        # The span opens at the invitation phase and closes when modes
        # have settled; the begin/end pair brackets the whole timeline
        # of Table 2's phases in the trace.
        round_ = _ElectionRound(self, epoch)

        self.simulator.schedule_at(t0, round_.begin, label="election:invite")
        self.simulator.schedule_at(
            t0 + spacing,
            partial(round_.run_phase, "phase_evaluate"),
            label="election:evaluate",
        )
        self.simulator.schedule_at(
            t0 + 2 * spacing,
            partial(round_.run_phase, "phase_select"),
            label="election:select",
        )
        self.simulator.schedule_at(
            t0 + 3 * spacing,
            partial(round_.run_phase, "phase_refine"),
            label="election:refine",
        )
        self.simulator.schedule_at(
            t0 + self.settle_delay,
            round_.settle,
            label="election:end",
        )
        return epoch

    def all_settled(self) -> bool:
        """Whether every alive node has resolved ACTIVE or PASSIVE."""
        return all(
            node.mode.settled for node in self.nodes.values() if node.alive
        )
