"""Batched application of overheard measurement observations.

During a maintenance round every node overhears its neighbors'
measurement broadcasts and feeds each sample to its model-aware cache
(§4).  The scalar path applies every observation inside the delivery
event that carried it — one ``cache.observe`` call at a time — which
leaves the cross-cache fleet engine (``models.soa``) idle exactly where
the simulation spends its time.

:class:`BatchedObservationRouter` collects those observations instead:
delivery handlers :meth:`enqueue` the ``(node, neighbor, own, value)``
sample, and the simulator's observation barrier (see
``Simulator.observation_barrier``) :meth:`flush`-es the batch before the
next event that is not part of the same same-instant delivery burst.
Fleet-backed caches are swept in *waves* through
:meth:`~repro.models.soa.ModelAwareCacheFleet.observe_lanes` — wave *k*
carries each lane's *k*-th pending sample, so per-lane order (the only
order the cache state depends on; lanes are independent) is preserved
exactly.  Everything else falls back to per-node scalar application in
arrival order.

Equivalence contract — the batched run must be bit-identical to the
scalar run:

* **When to flush.** The barrier flushes before any event except a
  delivery (priority ``DELIVERY_PRIORITY``) at the batch's own
  timestamp, i.e. the continuation of the very burst that enqueued the
  samples.  Flushing mid-burst would also be safe (the scalar path
  applies even earlier); deferring past the burst would not, because a
  later event could read a cache that scalar execution had already
  updated.
* **Ordering fallback.** A handler that *reads* its own store inside
  the burst (``_on_heartbeat`` records a sample and immediately serves
  an estimate from it) first calls :meth:`sync`, which applies that
  node's pending samples scalarly, in arrival order, with their
  effects, and tombstones them.
* **Effects.** The ``cache.observe`` counter and the ``cache.admit``
  span instants are emitted in global arrival order during the flush —
  the counter through one :meth:`~repro.obs.registry.CounterMetric.inc_by`
  per label key (cells appear in first-touch order, matching scalar
  insertion order), the spans through the same
  ``SpanTracer.instant`` call the scalar path uses.  The §6.2 CPU cost
  is charged at enqueue time by the caller, keeping the battery/ledger
  timeline untouched.  The router registers no metrics of its own.

The router is plain picklable state (pending samples reference protocol
nodes already in the checkpoint graph), so a mid-run checkpoint carries
the un-flushed batch and the restored run flushes it exactly where the
uninterrupted run would have.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.models.policy import Action
from repro.models.soa import ACTION_NAMES, ModelAwareCacheFleet
from repro.network.radio import DELIVERY_PRIORITY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.protocol import ProtocolNode
    from repro.simulation.engine import Simulator

__all__ = ["BatchedObservationRouter"]


class BatchedObservationRouter:
    """Collects per-delivery cache observations and applies them in bulk.

    Parameters
    ----------
    simulator:
        The engine whose barrier hook drives :meth:`flush`.
    fleet:
        The shared :class:`~repro.models.soa.ModelAwareCacheFleet`
        backing the deployment's caches, or ``None`` when the cache
        policy is not fleet-capable (the router then applies every
        sample scalarly — still batched at the same barrier, just
        without the vectorized sweep).
    node_label:
        Mirrors ``ProtocolConfig.observe_node_label``: whether the
        ``cache.observe`` counter keys on ``(node, action)`` or just
        ``action``.
    """

    def __init__(
        self,
        simulator: "Simulator",
        fleet: Optional[ModelAwareCacheFleet] = None,
        node_label: bool = True,
    ) -> None:
        self.simulator = simulator
        self.fleet = fleet
        self.node_label = node_label
        #: Pending samples, ``[node, neighbor_id, own_value, neighbor_value]``
        #: in arrival order.  The list itself is the barrier's truthy
        #: ``pending`` attribute; :meth:`sync` tombstones consumed
        #: entries by nulling the node slot.
        self.pending: list[list] = []
        self._pending_time = -1.0
        # The same get-or-create the protocol nodes perform — the
        # counter already exists by the time the router is built, so
        # nothing new is registered (digested registry rows must match
        # a scalar run, which has no router at all).
        labels = ("node", "action") if node_label else ("action",)
        self._counter = simulator.metrics.counter("cache.observe", labels=labels)
        # Per-node routing memo: ``node -> (lane, n_measurements)`` for
        # fleet-backed stores, ``()`` for scalar fallback.  Safe to
        # memoize because lanes are bound once at runtime construction
        # and never rebound (crashes clear cache *contents*, not the
        # policy binding).
        self._route: dict = {}

    # ------------------------------------------------------------------
    # producer side (delivery handlers)
    # ------------------------------------------------------------------

    def enqueue(
        self,
        node: "ProtocolNode",
        neighbor_id: int,
        own_value: float,
        neighbor_value: float,
    ) -> None:
        """Queue one overheard sample for the next flush."""
        pending = self.pending
        if not pending:
            self._pending_time = self.simulator.now
        pending.append([node, neighbor_id, own_value, neighbor_value])

    def sync(self, node: "ProtocolNode") -> None:
        """Apply (and tombstone) ``node``'s pending samples scalarly.

        Called by handlers that read their own store mid-burst; the
        samples land in arrival order with their full effects, exactly
        as the scalar path would have applied them.
        """
        pending = self.pending
        if not pending:
            return
        record = node.store.record
        for entry in pending:
            if entry[0] is node:
                action = record(entry[1], entry[2], entry[3])
                self._effect(node, entry[1], action)
                entry[0] = None

    # ------------------------------------------------------------------
    # barrier side (engine hook)
    # ------------------------------------------------------------------

    def before_event(self, time: float, priority: int) -> None:
        """Flush unless the upcoming event continues the same burst."""
        if time == self._pending_time and priority == DELIVERY_PRIORITY:
            return
        self.flush()

    def flush(self) -> None:
        """Apply every pending sample and emit its effects."""
        entries = self.pending
        if not entries:
            return
        self.pending = []
        self._pending_time = -1.0
        actions: list = [None] * len(entries)
        fleet = self.fleet
        if fleet is None:
            for i, entry in enumerate(entries):
                node = entry[0]
                if node is not None:
                    actions[i] = node.store.record(entry[1], entry[2], entry[3])
        else:
            lanes_l: list[int] = []
            js_l: list[int] = []
            xs_l: list[float] = []
            ys_l: list[float] = []
            pos_l: list[int] = []
            route = self._route
            for i, entry in enumerate(entries):
                node = entry[0]
                if node is None:
                    continue
                way = route.get(node)
                if way is None:
                    store = node.store
                    policy = store.policy
                    if getattr(policy, "_fleet", None) is fleet:
                        way = (policy._lane, store.n_measurements)
                    else:
                        way = ()
                    route[node] = way
                if way:
                    lanes_l.append(way[0])
                    # NeighborModelStore._key(j, 0), inlined columnar.
                    js_l.append(entry[1] * way[1])
                    xs_l.append(entry[2])
                    ys_l.append(entry[3])
                    pos_l.append(i)
                else:
                    actions[i] = node.store.record(entry[1], entry[2], entry[3])
            if lanes_l:
                self._flush_fleet(entries, actions, lanes_l, js_l, xs_l, ys_l, pos_l)
        self._emit(entries, actions)

    def _flush_fleet(
        self,
        entries: list[list],
        actions: list,
        lanes_l: list[int],
        js_l: list[int],
        xs_l: list[float],
        ys_l: list[float],
        pos_l: list[int],
    ) -> None:
        """Sweep fleet-backed samples in per-lane-order-preserving waves.

        Wave *k* carries each lane's *k*-th sample; within a wave, lanes
        are distinct, so the kernel rows are independent and intra-wave
        order is irrelevant.  The rank-within-lane is computed with a
        stable sort (no per-wave Python scan), and the waves are the
        contiguous equal-rank runs of the rank-sorted columns.
        """
        fleet = self.fleet
        lanes = np.array(lanes_l, dtype=np.int64)
        if lanes.size == 1:
            i = pos_l[0]
            entry = entries[i]
            actions[i] = entry[0].store.record(entry[1], entry[2], entry[3])
            return
        order = np.argsort(lanes, kind="stable")
        sorted_lanes = lanes[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_lanes[1:] != sorted_lanes[:-1]))
        )
        counts = np.diff(np.append(starts, sorted_lanes.size))
        rank = np.empty(lanes.size, dtype=np.int64)
        rank[order] = np.arange(lanes.size) - np.repeat(starts, counts)
        perm = np.argsort(rank, kind="stable")
        lanes_p = lanes[perm]
        js_p = np.array(js_l, dtype=np.int64)[perm]
        xs_p = np.array(xs_l, dtype=np.float64)[perm]
        ys_p = np.array(ys_l, dtype=np.float64)[perm]
        rank_p = rank[perm]
        wave_starts = np.flatnonzero(
            np.concatenate(([True], rank_p[1:] != rank_p[:-1]))
        ).tolist()
        wave_ends = wave_starts[1:] + [int(rank_p.size)]
        codes = np.empty(lanes.size, dtype=np.int8)
        for s, e in zip(wave_starts, wave_ends):
            codes[s:e] = fleet.observe_lanes(
                lanes_p[s:e], js_p[s:e], xs_p[s:e], ys_p[s:e]
            )
        if not self.simulator.spans.enabled:
            # _emit is a no-op with the registry disabled — the action
            # strings would be built only to be dropped.
            return
        names = ACTION_NAMES
        pos = np.array(pos_l, dtype=np.int64)[perm]
        for i, code in zip(pos.tolist(), codes.tolist()):
            actions[i] = names[code]

    # ------------------------------------------------------------------
    # effects (identical to ProtocolNode._record_observation's)
    # ------------------------------------------------------------------

    def _effect(self, node: "ProtocolNode", neighbor_id: int, action: str) -> None:
        """Scalar-path effects for one sample (used by :meth:`sync`)."""
        key = (node.node_id, action) if self.node_label else action
        self._counter.inc(key)
        if action != Action.REJECT:
            self.simulator.spans.instant(
                "cache.admit", node=node.node_id, neighbor=neighbor_id, action=action
            )

    def _emit(self, entries: list[list], actions: list) -> None:
        """Emit counter/span effects for a flushed batch in arrival order."""
        spans = self.simulator.spans
        if not spans.enabled:
            # The scalar path's counter and instants are both gated on
            # the registry; with it disabled there is nothing to emit.
            return
        node_label = self.node_label
        instant = spans.instant
        agg: dict = {}
        for entry, action in zip(entries, actions):
            node = entry[0]
            if node is None:
                continue
            key = (node.node_id, action) if node_label else action
            agg[key] = agg.get(key, 0) + 1
            if action != Action.REJECT:
                instant(
                    "cache.admit",
                    node=node.node_id,
                    neighbor=entry[1],
                    action=action,
                )
        inc_by = self._counter.inc_by
        for key, count in agg.items():
            inc_by(key, count)

    def __repr__(self) -> str:
        return (
            f"BatchedObservationRouter(pending={len(self.pending)}, "
            f"fleet={'yes' if self.fleet is not None else 'no'})"
        )
