"""The network snapshot: a global view over the protocol state.

A *snapshot* is the set of representative (ACTIVE) nodes together with
the assignment of every node to its representative (§3, Figure 1).
:class:`SnapshotView` captures that view from the per-node protocol
state, exactly the way an observer walking the network would, and
implements the paper's spurious-representative audit:

    "node N_i may never hear the messages sent by node N_j ...  It may
    thus assume that it still represents node N_j while the network has
    elected another representative.  This can be detected and corrected
    by having time-stamps describing the time that a node N_i was
    elected as the representative of N_j and using the latest
    representative based on these time-stamps."  (§3)

A representative's claim on node ``j`` is *stale* when ``j`` itself
points to a different (or no) representative; ``audit`` counts such
claims and the representatives carrying them (Figure 13's metric), and
``corrected_assignment`` resolves conflicts by the freshest election
timestamp, which coincides with each node's own pointer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.protocol import ProtocolNode
from repro.core.status import NodeMode

__all__ = ["SnapshotView", "SpuriousAudit"]


@dataclass(frozen=True)
class SpuriousAudit:
    """Result of the stale-claim audit.

    Attributes
    ----------
    stale_claims:
        ``(representative, member)`` pairs where the member no longer
        points back at the representative.
    spurious_representatives:
        Representatives carrying at least one stale claim.
    """

    stale_claims: tuple[tuple[int, int], ...]
    spurious_representatives: tuple[int, ...]

    @property
    def n_spurious(self) -> int:
        """Number of spurious representatives (Figure 13's y-axis)."""
        return len(self.spurious_representatives)


@dataclass(frozen=True)
class SnapshotView:
    """An immutable capture of the snapshot structure.

    Attributes
    ----------
    representatives:
        Ids of ACTIVE nodes, ascending.
    assignment:
        ``node -> representative`` for every alive node (self-mapping
        for representatives and unresolved nodes).
    claims:
        ``representative -> members it believes it represents``.
    modes:
        Each alive node's settled mode.
    """

    representatives: tuple[int, ...]
    assignment: Mapping[int, int]
    claims: Mapping[int, tuple[int, ...]]
    modes: Mapping[int, NodeMode] = field(default_factory=dict)

    @classmethod
    def capture(cls, nodes: Mapping[int, ProtocolNode]) -> "SnapshotView":
        """Read the current snapshot out of the protocol nodes.

        Dead nodes are excluded entirely.  A node still UNDEFINED (e.g.
        mid-re-election) is conservatively treated as self-represented:
        it would answer queries itself, which is the protocol's bias
        (Rule-4 defaults to ACTIVE).
        """
        representatives = []
        assignment: dict[int, int] = {}
        claims: dict[int, tuple[int, ...]] = {}
        modes: dict[int, NodeMode] = {}
        for node_id in sorted(nodes):
            node = nodes[node_id]
            if not node.alive:
                continue
            modes[node_id] = node.mode
            if node.mode is NodeMode.PASSIVE and node.representative_id is not None:
                assignment[node_id] = node.representative_id
            else:
                assignment[node_id] = node_id
            if node.mode is not NodeMode.PASSIVE:
                representatives.append(node_id)
                claims[node_id] = tuple(sorted(node.represented))
        return cls(
            representatives=tuple(representatives),
            assignment=assignment,
            claims=claims,
            modes=modes,
        )

    @property
    def size(self) -> int:
        """The snapshot size ``n1`` — the number of representatives."""
        return len(self.representatives)

    @property
    def n_nodes(self) -> int:
        """Alive nodes covered by this view."""
        return len(self.assignment)

    def fraction(self) -> float:
        """Snapshot size as a fraction of the alive network."""
        if not self.assignment:
            return 0.0
        return self.size / self.n_nodes

    def representative_of(self, node_id: int) -> int:
        """The representative answering for ``node_id``."""
        return self.assignment[node_id]

    def members_of(self, representative: int) -> tuple[int, ...]:
        """Nodes whose own pointer selects ``representative`` (incl. itself)."""
        return tuple(
            sorted(
                node
                for node, rep in self.assignment.items()
                if rep == representative
            )
        )

    def audit(self) -> SpuriousAudit:
        """Find stale claims and the spurious representatives holding them."""
        stale: list[tuple[int, int]] = []
        spurious: list[int] = []
        for representative, members in sorted(self.claims.items()):
            bad = [
                member
                for member in members
                if self.assignment.get(member) != representative
            ]
            if bad:
                spurious.append(representative)
                stale.extend((representative, member) for member in bad)
        return SpuriousAudit(
            stale_claims=tuple(stale),
            spurious_representatives=tuple(spurious),
        )

    def corrected_assignment(self) -> dict[int, int]:
        """The assignment after timestamp arbitration of conflicting claims.

        Each node's own pointer reflects its most recent election, so
        the timestamp-latest claim is exactly the pointer; stale claims
        are simply dropped.
        """
        return dict(self.assignment)
