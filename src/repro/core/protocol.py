"""Per-node snapshot protocol state machine (§5 and §5.1 of the paper).

:class:`ProtocolNode` implements everything one sensor runs:

**Global election** (Table 2), driven phase-by-phase by the
:class:`~repro.core.election.ElectionCoordinator`:

1. *invitation* — broadcast our current measurement, collecting the
   neighbors' invitations as they arrive;
2. *model evaluation* — estimate each inviter's value with our cached
   model and broadcast the list ``Cand_nodes`` of those within the
   threshold;
3. *initial selection* — accept the offer with the longest candidate
   list (largest id breaks ties) and inform the chosen representative;
4. *refinement* — apply Rules 0–4 of Figure 5, exchanging at most two
   more messages per node, until every node settles ACTIVE or PASSIVE.

**Maintenance** (§5.1): passive nodes heartbeat their representative
and re-elect on a bad estimate or a timeout; lone actives periodically
invite; representatives can resign (energy hand-off, LEACH-style
rotation).  Maintenance selection ranks offers by
``len(Cand_nodes) + |already represented|``.

The refinement rules are evaluated as a message-driven fixpoint:
``_reconsider`` re-applies the rule list whenever local knowledge
changes (a recall arrives, a stay-active request arrives, ...), exactly
reproducing the cascade of the paper's running example (Figures 3→4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.config import ProtocolConfig
from repro.core.status import NodeMode
from repro.models.estimator import NeighborModelStore
from repro.models.policy import Action
from repro.network.messages import (
    Accept,
    AckRepresenting,
    CandidateList,
    DataReport,
    Heartbeat,
    HeartbeatReply,
    Invitation,
    Message,
    Recall,
    Resign,
    StayActive,
)
from repro.network.radio import Radio
from repro.simulation.events import Event

__all__ = ["ProtocolNode", "MemberInfo"]


@dataclass
class MemberInfo:
    """What a representative knows about a node it represents.

    The location travels inside the Accept message so the
    representative can evaluate spatial predicates on the member's
    behalf (§3.1); the timestamps support spurious-representative
    arbitration and stale-claim expiry (§3's "filtering and
    self-correction ... performed by the network").
    """

    location: Optional[tuple[float, float]]
    accepted_at: float
    last_heard: float = 0.0

    def __post_init__(self) -> None:
        if self.last_heard < self.accepted_at:
            self.last_heard = self.accepted_at


class ProtocolNode:
    """The snapshot protocol instance running on one sensor node."""

    def __init__(
        self,
        node_id: int,
        radio: Radio,
        store: NeighborModelStore,
        config: ProtocolConfig,
        value_fn: Callable[[], float],
        location: tuple[float, float],
    ) -> None:
        self.node_id = node_id
        self.radio = radio
        self.store = store
        self.config = config
        self.value_fn = value_fn
        self.location = location
        self.simulator = radio.simulator
        # Per-entity RNG discipline gives each node its own stream so a
        # sharded run draws identically to the single-process reference
        # regardless of how node events interleave across shards.
        if config.rng_discipline == "per-entity":
            self._rng = self.simulator.random.stream(f"protocol.{node_id}")
        else:
            self._rng = self.simulator.random.stream("protocol")

        # public protocol state
        self.mode = NodeMode.UNDEFINED
        self.representative_id: Optional[int] = None
        self.represented: dict[int, MemberInfo] = {}
        self.epoch = 0

        # election-round scratch state
        self._collecting_invitations = False
        self._heard_invitations: dict[int, float] = {}
        self._heard_list_lengths: dict[int, int] = {}
        self._offers: dict[int, int] = {}
        self._my_list_length = 0
        self._refining = False
        self._sent_recall = False
        self._sent_stay_active = False
        self._ack_pending = False
        self._rule4_event: Optional[Event] = None

        # maintenance scratch state
        self._awaiting_offers = False
        self._await_reply = False
        self._reply_timeout_event: Optional[Event] = None
        self._resigning = False
        self._pending_invitations: dict[int, tuple[float, int]] = {}
        self._offer_flush_scheduled = False

        # Snoop probability is mutable so training phases can override
        # the configured rate (the runtime's ``train`` sets it to 1).
        self.snoop_probability = config.snoop_probability

        # statistics
        self.reelections = 0
        self._reelections_counter = self.simulator.metrics.counter(
            "election.reelections", labels=("node",)
        )
        # Per-(node, action) cells are a cardinality footgun at large N
        # (N × |actions| series); ``observe_node_label=False`` collapses
        # the key to the action alone.
        self._observe_counter = self.simulator.metrics.counter(
            "cache.observe",
            labels=("node", "action") if config.observe_node_label else ("action",),
        )

        self.device = radio.node(node_id)
        self.device.attach(self._on_message)

    # ------------------------------------------------------------------
    # public read side
    # ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the underlying device still has battery."""
        return self.device.alive

    @property
    def is_representative(self) -> bool:
        """ACTIVE nodes are the snapshot's representatives."""
        return self.mode is NodeMode.ACTIVE

    def covered_nodes(self) -> set[int]:
        """Node ids this node answers snapshot queries for.

        An ACTIVE node covers itself and every node it represents; a
        PASSIVE (or undefined) node covers nothing.
        """
        if self.mode is not NodeMode.ACTIVE:
            return set()
        return {self.node_id} | set(self.represented)

    def member_location(self, member_id: int) -> Optional[tuple[float, float]]:
        """Known location of a represented node (``None`` if never learned)."""
        info = self.represented.get(member_id)
        return None if info is None else info.location

    def estimate_for(self, member_id: int) -> Optional[float]:
        """Model estimate of a represented node's current value."""
        if member_id == self.node_id:
            return self.value_fn()
        return self.store.estimate(member_id, self.value_fn())

    # ------------------------------------------------------------------
    # global election phases (called by the coordinator)
    # ------------------------------------------------------------------

    def reset_round(self, epoch: int) -> None:
        """Clear all round state and start collecting invitations."""
        self.epoch = epoch
        self.mode = NodeMode.UNDEFINED
        self.representative_id = None
        self.represented.clear()
        self._heard_invitations.clear()
        self._heard_list_lengths.clear()
        self._offers.clear()
        self._my_list_length = 0
        self._refining = False
        self._sent_recall = False
        self._sent_stay_active = False
        self._ack_pending = False
        self._collecting_invitations = True
        self._awaiting_offers = False
        self._await_reply = False
        self._resigning = False
        self._pending_invitations.clear()
        self._offer_flush_scheduled = False
        self._cancel_event("_rule4_event")
        self._cancel_event("_reply_timeout_event")

    def phase_invite(self) -> None:
        """Invitation phase: broadcast our current measurement."""
        if not self.alive:
            return
        self.radio.broadcast(
            Invitation(sender=self.node_id, value=self.value_fn(), epoch=self.epoch)
        )

    def phase_evaluate(self) -> None:
        """Model-evaluation phase: broadcast the list of nodes we can represent."""
        if not self.alive:
            return
        self._collecting_invitations = False
        own_value = self.value_fn()
        candidates = tuple(
            j
            for j in sorted(self._heard_invitations)
            if self.store.can_represent(
                j,
                self._heard_invitations[j],
                own_value,
                self.config.metric,
                self.config.threshold,
            )
        )
        self._my_list_length = len(candidates)
        self.radio.broadcast(
            CandidateList(
                sender=self.node_id,
                candidates=candidates,
                epoch=self.epoch,
                already_representing=0,
            )
        )

    def phase_select(self) -> None:
        """Initial selection: accept the best offer, or represent ourselves."""
        if not self.alive:
            return
        choice = self._best_offer()
        if choice is None:
            self.representative_id = self.node_id
        else:
            self.representative_id = choice
            self._send_accept(choice)

    def phase_refine(self) -> None:
        """Start the Figure 5 refinement fixpoint plus the Rule-4 timer."""
        if not self.alive:
            return
        self._refining = True
        self._reconsider()
        if not self.mode.settled:
            self._rule4_event = self.simulator.schedule(
                self.config.max_wait, self._rule4_tick, label="rule4"
            )

    def end_refinement(self) -> None:
        """Close the global round's refinement (scheduled by the coordinator).

        After this, the Figure 5 rules stop re-firing on incoming
        messages and the maintenance semantics (e.g. the PASSIVE
        role-taking flip on Accept) fully apply.
        """
        self._refining = False

    def reboot(self) -> None:
        """Cold-start recovery after a crash-and-revival (fault injection).

        A revived node keeps its trained neighbor models (flash survives
        a reboot) but forgets all volatile protocol state: the members
        it claimed, its representative pointer, and every in-flight flag
        and timer.  Without this reset, a node that crashed while
        ``_awaiting_offers`` was set would come back permanently mute —
        never answering invitations and never finishing its own
        re-election — because ``_finish_reelection`` fired while it was
        down.  It then rejoins the structure through an ordinary §5.1
        re-election, announcing itself to the neighborhood.
        """
        self.mode = NodeMode.UNDEFINED
        self.representative_id = None
        self.represented.clear()
        self._collecting_invitations = False
        self._heard_invitations.clear()
        self._heard_list_lengths.clear()
        self._offers.clear()
        self._my_list_length = 0
        self._refining = False
        self._sent_recall = False
        self._sent_stay_active = False
        self._ack_pending = False
        self._awaiting_offers = False
        self._await_reply = False
        self._resigning = False
        self._pending_invitations.clear()
        self._offer_flush_scheduled = False
        self._cancel_event("_rule4_event")
        self._cancel_event("_reply_timeout_event")
        self.simulator.trace.emit(
            self.simulator.now, "protocol.reboot", node=self.node_id
        )
        self.start_reelection()

    # ------------------------------------------------------------------
    # refinement rules (Figure 5)
    # ------------------------------------------------------------------

    def _reconsider(self) -> None:
        """Apply Rules 0–3 against current knowledge (idempotent)."""
        if not self._refining or not self.alive:
            return

        # Rule-0: break mutual-representation ties by list length, then id.
        rep = self.representative_id
        if (
            not self.mode.settled
            and rep is not None
            and rep != self.node_id
            and rep in self.represented
        ):
            their_length = self._heard_list_lengths.get(rep, 0)
            if self._my_list_length > their_length or (
                self._my_list_length == their_length and self.node_id > rep
            ):
                self._settle(NodeMode.ACTIVE)

        # Rule-1: nodes that represent themselves stay ACTIVE.
        if not self.mode.settled and self.representative_id == self.node_id:
            self._settle(NodeMode.ACTIVE)

        # Rule-2: an ACTIVE node recalls its own (redundant) representative.
        if (
            self.mode is NodeMode.ACTIVE
            and self.representative_id is not None
            and self.representative_id != self.node_id
            and not self._sent_recall
        ):
            old_rep = self.representative_id
            self._sent_recall = True
            self.representative_id = self.node_id
            self.radio.unicast(
                Recall(sender=self.node_id, target=old_rep, epoch=self.epoch), old_rep
            )

        # Rule-3: represented, representing no one -> request the
        # representative to stay ACTIVE; PASSIVE follows its ack.
        if (
            not self.mode.settled
            and self.representative_id is not None
            and self.representative_id != self.node_id
            and not self.represented
            and not self._sent_stay_active
        ):
            self._sent_stay_active = True
            self.radio.unicast(
                StayActive(
                    sender=self.node_id,
                    target=self.representative_id,
                    epoch=self.epoch,
                ),
                self.representative_id,
            )

    def _rule4_tick(self) -> None:
        """Rule-4: timed-out UNDEFINED nodes go ACTIVE with prob ``1 - P_wait``.

        The ELSE branch of Figure 5 "reconsiders in the next time unit":
        the node re-enters the rule loop, which in particular re-sends
        its Rule-3 StayActive request.  Under message loss this retry is
        what lets most represented nodes still settle PASSIVE (the
        robustness Figure 7 demonstrates up to ~80% loss); without loss
        no node ever reaches Rule-4 and the at-most-two refinement
        messages of Table 2 hold.
        """
        self._rule4_event = None
        if not self.alive or self.mode.settled:
            return
        if self._rng.random() > self.config.p_wait:
            self._settle(NodeMode.ACTIVE)
            self._reconsider()
        else:
            # Retry Rule-3: a lost StayActive or acknowledgment is the
            # usual reason we are still UNDEFINED.
            self._sent_stay_active = False
            self._reconsider()
            self._rule4_event = self.simulator.schedule(
                self.config.rule4_retry, self._rule4_tick, label="rule4"
            )

    def _settle(self, mode: NodeMode) -> None:
        """Resolve UNDEFINED to ``mode``; settled modes never flip in-round."""
        if self.mode.settled:
            return
        self.mode = mode
        self.simulator.trace.emit(
            self.simulator.now, "protocol.settled",
            node=self.node_id, mode=mode.value, epoch=self.epoch,
        )

    # ------------------------------------------------------------------
    # maintenance (§5.1)
    # ------------------------------------------------------------------

    def send_heartbeat(self) -> None:
        """Passive node: probe the representative with our current value."""
        if not self.alive or self.mode is not NodeMode.PASSIVE:
            return
        rep = self.representative_id
        if rep is None or rep == self.node_id:
            return
        self.radio.unicast(
            Heartbeat(sender=self.node_id, target=rep, value=self.value_fn()), rep
        )
        self._await_reply = True
        self._cancel_event("_reply_timeout_event")
        self._reply_timeout_event = self.simulator.schedule(
            self.config.heartbeat_timeout, self._heartbeat_timeout, label="hb-timeout"
        )

    def _heartbeat_timeout(self) -> None:
        """No reply: the representative failed or is out of reach — re-elect."""
        self._reply_timeout_event = None
        if not self._await_reply or not self.alive:
            return
        if self.mode is not NodeMode.PASSIVE:
            # The node changed role while the probe was in flight (e.g.
            # it was chosen as a representative and took the role); the
            # stale timeout must not push it back into a re-election.
            self._await_reply = False
            return
        self._await_reply = False
        self.simulator.trace.emit(
            self.simulator.now, "maintenance.rep_unreachable",
            node=self.node_id, representative=self.representative_id,
        )
        self.start_reelection()

    def lone_active_invite(self) -> None:
        """ACTIVE node representing only itself periodically invites (§5.1)."""
        if (
            not self.alive
            or self.mode is not NodeMode.ACTIVE
            or self.represented
            or self._resigning
            or self._awaiting_offers
        ):
            return
        self.start_reelection(recall_old=False)

    def start_reelection(self, recall_old: bool = False) -> None:
        """Invite the neighborhood to (re-)represent us (§5.1 discovery).

        Parameters
        ----------
        recall_old:
            Send a Recall to the previous representative first (used
            when it is reachable but its model went stale, so it does
            not keep a spurious claim).
        """
        if not self.alive:
            return
        # Re-entrancy guard, uniform across every entry point (heartbeat
        # timeout, bad-estimate recall, Resign hand-off, lone-active
        # invite, reboot): a node already collecting offers — or cooling
        # down after a resignation — must not open a second overlapping
        # round.  The overlap would double-count ``reelections``, clear
        # ``_offers`` mid-collection, and send a second Invitation that
        # breaks Table 2's per-epoch message bound.
        if self._awaiting_offers or self._resigning:
            return
        # This round supersedes any in-flight heartbeat exchange: the
        # pending timeout would otherwise fire mid-election and re-enter
        # here through ``_heartbeat_timeout``.
        self._await_reply = False
        self._cancel_event("_reply_timeout_event")
        old_rep = self.representative_id
        if (
            recall_old
            and old_rep is not None
            and old_rep != self.node_id
        ):
            self.radio.unicast(
                Recall(sender=self.node_id, target=old_rep, epoch=self.epoch), old_rep
            )
        self.reelections += 1
        self._reelections_counter.inc(self.node_id)
        self.simulator.spans.instant("reelection", node=self.node_id, epoch=self.epoch)
        self.mode = NodeMode.UNDEFINED
        self.representative_id = None
        self._offers.clear()
        self._awaiting_offers = True
        self.radio.broadcast(
            Invitation(sender=self.node_id, value=self.value_fn(), epoch=self.epoch)
        )
        self.simulator.schedule(
            self.config.reply_window, self._finish_reelection, label="reelect-select"
        )

    def _finish_reelection(self) -> None:
        """Pick the best maintenance offer: ``len(list) + already_representing``."""
        if not self.alive or not self._awaiting_offers:
            return
        self._awaiting_offers = False
        choice = self._best_offer()
        # Rule-3's precondition holds in maintenance too: a node that
        # (meanwhile) represents others must stay ACTIVE, otherwise
        # chained adoptions could drain the network of representatives.
        if choice is None or self.represented:
            self.representative_id = self.node_id
            self.mode = NodeMode.ACTIVE
        else:
            self.representative_id = choice
            self._send_accept(choice)
            self.mode = NodeMode.PASSIVE
        self._offers.clear()

    def resign(self) -> None:
        """Hand the represented nodes back to the network (§5.1).

        Used both for the energy hand-off (battery below threshold) and
        for LEACH-style rotation.  The node ignores invitations until
        the next maintenance round so it is not immediately re-elected.
        """
        if not self.alive or self.mode is not NodeMode.ACTIVE or not self.represented:
            return
        members = tuple(sorted(self.represented))
        self._resigning = True
        self.radio.broadcast(Resign(sender=self.node_id, members=members))
        self.represented.clear()
        self.simulator.trace.emit(
            self.simulator.now, "maintenance.resigned",
            node=self.node_id, members=list(members),
        )
        self.simulator.schedule(
            self.config.heartbeat_period, self._clear_resigning, label="resign-cooldown"
        )

    def _clear_resigning(self) -> None:
        self._resigning = False

    def _energy_exhausted(self) -> bool:
        """Whether the battery is below the §5.1 hand-off threshold."""
        return (
            self.config.energy_resign_fraction > 0
            and self.device.battery.fraction_remaining
            < self.config.energy_resign_fraction
        )

    def check_energy(self) -> None:
        """Energy-aware hand-off: resign when below the battery threshold."""
        if self.mode is NodeMode.ACTIVE and self.represented and self._energy_exhausted():
            self.resign()

    def expire_stale_members(self, max_silence: float) -> list[int]:
        """Drop claims on members not heard from for ``max_silence``.

        A member that died, drifted out of range, or elected another
        representative stops heartbeating us; §3's timestamp-based
        self-correction says the stale claim should be filtered by the
        network.  Returns the expired member ids.
        """
        if self.mode is not NodeMode.ACTIVE or max_silence <= 0:
            return []
        now = self.simulator.now
        expired = [
            member
            for member, info in self.represented.items()
            if now - info.last_heard > max_silence
        ]
        for member in expired:
            del self.represented[member]
            self.simulator.trace.emit(
                now, "maintenance.member_expired",
                representative=self.node_id, member=member,
            )
        return expired

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------

    def _on_message(self, message: Message, overheard: bool) -> None:
        # Dispatch order follows traffic volume: measurement reports
        # dominate every phase (Fig 15), then the §5.1 heartbeat pair;
        # the election messages are a per-epoch trickle.
        if isinstance(message, DataReport):
            self._on_data_report(message)
        elif isinstance(message, Heartbeat):
            self._on_heartbeat(message)
        elif isinstance(message, HeartbeatReply):
            self._on_heartbeat_reply(message)
        elif isinstance(message, Invitation):
            self._on_invitation(message)
        elif isinstance(message, CandidateList):
            self._on_candidate_list(message)
        elif isinstance(message, Accept):
            self._on_accept(message)
        elif isinstance(message, Recall):
            self._on_recall(message)
        elif isinstance(message, StayActive):
            self._on_stay_active(message)
        elif isinstance(message, AckRepresenting):
            self._on_ack_representing(message)
        elif isinstance(message, Resign):
            self._on_resign(message)

    def _on_invitation(self, message: Invitation) -> None:
        if message.sender == self.node_id:
            return
        if self._collecting_invitations:
            self._heard_invitations[message.sender] = message.value
            return
        # Maintenance path: any settled node in the vicinity responds
        # (§5.1 — "the nodes in the vicinity respond as is summarized
        # in Table 2"), including PASSIVE ones, which become ACTIVE if
        # chosen.  A node mid-invitation must not mutually adopt a
        # concurrent inviter, and a node that is resigning or below the
        # energy hand-off threshold never volunteers for more work.
        # Concurrent invitations (e.g. the members of a resigned
        # representative all re-electing at once) are batched into a
        # single CandidateList broadcast, exactly as in the global
        # election's model-evaluation phase.
        if (
            not self.mode.settled
            or self._resigning
            or self._awaiting_offers
            or self._energy_exhausted()
        ):
            return
        self._pending_invitations[message.sender] = (message.value, message.epoch)
        if not self._offer_flush_scheduled:
            self._offer_flush_scheduled = True
            self.simulator.schedule(
                self.config.offer_batch_delay, self._flush_offers, label="offer-flush"
            )

    def _flush_offers(self) -> None:
        """Answer all recently heard invitations with one candidate list."""
        self._offer_flush_scheduled = False
        pending, self._pending_invitations = self._pending_invitations, {}
        if not pending or not self.alive:
            return
        if (
            not self.mode.settled
            or self._resigning
            or self._awaiting_offers
            or self._energy_exhausted()
        ):
            return
        own_value = self.value_fn()
        candidates = tuple(
            inviter
            for inviter in sorted(pending)
            if self.store.can_represent(
                inviter,
                pending[inviter][0],
                own_value,
                self.config.metric,
                self.config.threshold,
            )
        )
        if not candidates:
            return
        # Answer at the network's epoch, never below our own: an inviter
        # that rebooted with a stale epoch adopts ours from this list
        # (see ``_on_candidate_list``), re-synchronizing the epochs.
        epoch = max(self.epoch, max(epoch for __, epoch in pending.values()))
        self.radio.broadcast(
            CandidateList(
                sender=self.node_id,
                candidates=candidates,
                epoch=epoch,
                already_representing=len(self.represented),
            )
        )

    def _on_candidate_list(self, message: CandidateList) -> None:
        if message.epoch != self.epoch:
            # A node that was down during a global election re-invites
            # with a stale epoch; responders answer at the *network's*
            # epoch.  Adopting the newer epoch (monotone per node) is
            # what lets the revived node re-enter the structure — with
            # strict equality its Accept would be rejected by the chosen
            # representative and it would re-elect forever.  Older
            # epochs are still stale traffic and stay rejected.
            if not (self._awaiting_offers and message.epoch > self.epoch):
                return
            self.epoch = message.epoch
        self._heard_list_lengths[message.sender] = len(message.candidates)
        if self.node_id in message.candidates:
            self._offers[message.sender] = (
                len(message.candidates) + message.already_representing
            )

    def _on_accept(self, message: Accept) -> None:
        if message.representative != self.node_id or message.epoch < self.epoch:
            return
        # Newer epochs are adopted, not rejected (monotone per node):
        # the accepting member may have re-synchronized to the network's
        # epoch while we were down during an election.
        self.epoch = max(self.epoch, message.epoch)
        self.represented[message.sender] = MemberInfo(
            location=message.location, accepted_at=message.timestamp
        )
        # A PASSIVE node can only be the target of an Accept during
        # maintenance (the global round's Accepts all precede any mode
        # settling), so check the role-taking flip before refinement.
        if self.mode is NodeMode.PASSIVE:
            # Maintenance: a passive node chosen as representative takes
            # the role — it turns ACTIVE and recalls its own
            # representative (the Rule-2 clean-up, applied outside the
            # global round), keeping the representation structure flat.
            # Any heartbeat probe in flight is void with the role: its
            # timeout must not drag the new representative back into a
            # re-election of its own.
            self._await_reply = False
            self._cancel_event("_reply_timeout_event")
            self.mode = NodeMode.ACTIVE
            old_rep = self.representative_id
            self.representative_id = self.node_id
            if old_rep is not None and old_rep != self.node_id:
                self.radio.unicast(
                    Recall(sender=self.node_id, target=old_rep, epoch=self.epoch),
                    old_rep,
                )
        elif self._refining:
            self._reconsider()

    def _on_recall(self, message: Recall) -> None:
        if message.target != self.node_id:
            return
        self.represented.pop(message.sender, None)
        if self._refining:
            self._reconsider()

    def _on_stay_active(self, message: StayActive) -> None:
        if message.target != self.node_id:
            return
        if self.mode is NodeMode.PASSIVE:
            # Cannot honor without flipping modes; the requester falls
            # back to Rule-4 when no acknowledgment arrives.
            return
        if message.sender not in self.represented:
            # The Accept may have been lost; the StayActive itself
            # asserts the sender considers us its representative.
            self.represented[message.sender] = MemberInfo(
                location=None, accepted_at=self.simulator.now
            )
        if not self.mode.settled:
            self._settle(NodeMode.ACTIVE)
        self._schedule_ack()
        if self._refining:
            self._reconsider()

    def _on_ack_representing(self, message: AckRepresenting) -> None:
        if (
            self.mode.settled
            or not self._sent_stay_active
            or message.sender != self.representative_id
            or self.node_id not in message.represented
        ):
            return
        self._settle(NodeMode.PASSIVE)
        self._cancel_event("_rule4_event")

    def _on_heartbeat(self, message: Heartbeat) -> None:
        if message.target != self.node_id or not self.alive:
            return
        # Read-after-write fallback (batched rounds): this handler both
        # records an observation and immediately serves an estimate from
        # the store, so any samples this node has sitting in the batch
        # must land first — scalarly, in arrival order.
        router = self.radio.observation_router
        if router is not None:
            router.sync(self)
        own_value = self.value_fn()
        # The heartbeat doubles as a model fine-tuning sample (§3).
        self._record_observation(message.sender, own_value, message.value)
        if self.mode is NodeMode.ACTIVE and message.sender in self.represented:
            self.represented[message.sender].last_heard = self.simulator.now
            estimate = self.store.estimate(message.sender, own_value)
        else:
            # We are not actually this node's representative (a stale
            # pointer after churn): answer with no estimate so the
            # sender re-elects instead of trusting a broken structure.
            estimate = None
        self.radio.unicast(
            HeartbeatReply(
                sender=self.node_id, target=message.sender, estimate=estimate
            ),
            message.sender,
        )
        # Heartbeats arrive staggered across the whole maintenance
        # period, so checking here lets a draining representative hand
        # off (§5.1) before its battery actually empties, instead of
        # only at period boundaries.
        self.check_energy()

    def _on_heartbeat_reply(self, message: HeartbeatReply) -> None:
        if message.target != self.node_id or not self._await_reply:
            return
        if message.sender != self.representative_id:
            return
        self._await_reply = False
        self._cancel_event("_reply_timeout_event")
        current = self.value_fn()
        bad_estimate = message.estimate is None or not self.config.metric.within(
            current, message.estimate, self.config.threshold
        )
        if bad_estimate:
            self.simulator.trace.emit(
                self.simulator.now, "maintenance.model_stale",
                node=self.node_id, representative=message.sender,
            )
            # The representative is reachable but inaccurate: recall it
            # so no spurious claim lingers, then re-elect.
            self.start_reelection(recall_old=True)

    def _on_resign(self, message: Resign) -> None:
        if (
            self.mode is NodeMode.PASSIVE
            and message.sender == self.representative_id
            and self.node_id in message.members
        ):
            self.start_reelection()

    def _on_data_report(self, message: DataReport) -> None:
        if message.sender == self.node_id:
            return
        # Only model raw measurements the reporter took itself; estimates
        # produced on behalf of other nodes would poison the cache.
        if message.estimated or message.origin != message.sender:
            return
        probability = self.snoop_probability
        if probability <= 0:
            return
        if probability >= 1.0 or self._rng.random() < probability:
            router = self.radio.observation_router
            if router is not None:
                # Batched rounds: queue the sample for the burst-end
                # fleet sweep.  The CPU cost is charged now — it does
                # not depend on the cache's decision — so the battery
                # and ledger timelines match the scalar path exactly.
                router.enqueue(self, message.sender, self.value_fn(), message.value)
                self.radio.charge_cpu(self.node_id)
            else:
                self._record_observation(message.sender, self.value_fn(), message.value)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _best_offer(self) -> Optional[int]:
        """The §5 selection rule: longest candidate list, largest id on
        ties — or a uniformly random offer under the ablation policy."""
        if not self._offers:
            return None
        if self.config.selection_policy == "random":
            choices = sorted(self._offers)
            return int(choices[self._rng.integers(0, len(choices))])
        return max(self._offers.items(), key=lambda item: (item[1], item[0]))[0]

    def _send_accept(self, representative: int) -> None:
        self.radio.unicast(
            Accept(
                sender=self.node_id,
                representative=representative,
                epoch=self.epoch,
                location=self.location,
                timestamp=self.simulator.now,
            ),
            representative,
        )

    def _schedule_ack(self) -> None:
        """Debounced Rule-3 acknowledgment: one broadcast per burst."""
        if self._ack_pending:
            return
        self._ack_pending = True
        self.simulator.schedule(self.config.ack_delay, self._fire_ack, label="ack")

    def _fire_ack(self) -> None:
        self._ack_pending = False
        if not self.alive:
            return
        self.radio.broadcast(
            AckRepresenting(
                sender=self.node_id,
                represented=tuple(sorted(self.represented)),
                epoch=self.epoch,
            )
        )

    def _record_observation(
        self, neighbor_id: int, own_value: float, neighbor_value: float
    ) -> str:
        """Feed the cache and charge the §6.2 CPU cost for the update."""
        action = self.store.record(neighbor_id, own_value, neighbor_value)
        self._observe_counter.inc(
            (self.node_id, action) if self.config.observe_node_label else action
        )
        if action != Action.REJECT:
            # Admissions (append/shift/augment/newcomer) land on the
            # span timeline; rejects are counted but not timestamped.
            self.simulator.spans.instant(
                "cache.admit", node=self.node_id, neighbor=neighbor_id, action=action
            )
        self.radio.charge_cpu(self.node_id)
        return action

    def _cancel_event(self, attribute: str) -> None:
        event = getattr(self, attribute)
        if event is not None:
            self.simulator.cancel(event)
            setattr(self, attribute, None)

    def __repr__(self) -> str:
        return (
            f"ProtocolNode(id={self.node_id}, mode={self.mode.value}, "
            f"rep={self.representative_id}, members={sorted(self.represented)})"
        )
