"""The top-level facade: a snapshot-enabled sensor network.

:class:`SnapshotRuntime` wires every substrate together — simulator,
radio, batteries, model stores, protocol nodes, election coordinator,
maintenance manager — into the object users (and the experiment
harness) drive:

>>> from repro import (SnapshotRuntime, RandomWalkConfig, ProtocolConfig,
...                    generate_random_walk, uniform_random_topology)
>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> dataset, _ = generate_random_walk(RandomWalkConfig(n_nodes=20, n_classes=2), rng)
>>> topology = uniform_random_topology(20, transmission_range=1.5, rng=rng)
>>> net = SnapshotRuntime(topology, dataset, ProtocolConfig(threshold=1.0))
>>> net.train(duration=10)
>>> view = net.run_election()
>>> 1 <= view.size <= 20
True
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Optional

from repro.core.config import ProtocolConfig
from repro.core.election import ElectionCoordinator
from repro.core.maintenance import MaintenanceManager
from repro.core.protocol import ProtocolNode
from repro.core.round_batch import BatchedObservationRouter
from repro.core.snapshot import SnapshotView
from repro.data.series import Dataset
from repro.energy.costs import PAPER_COST_MODEL, EnergyCostModel
from repro.models.cache import pairs_for_budget
from repro.models.cache_manager import ModelAwareCache
from repro.models.soa import ModelAwareCacheFleet
from repro.models.estimator import NeighborModelStore
from repro.models.policy import CachePolicy
from repro.network.links import PERFECT_LINKS, LossModel
from repro.network.messages import DataReport
from repro.network.radio import Radio
from repro.network.topology import Topology
from repro.simulation.engine import Simulator

__all__ = ["SnapshotRuntime", "DEFAULT_CACHE_BYTES"]

#: The cache budget used everywhere the paper does not sweep it (§6.1).
DEFAULT_CACHE_BYTES = 2048


def _default_cache_factory() -> CachePolicy:
    """The model-aware manager at the paper's default budget.

    Module-level (not a lambda) so runtimes built with the default
    factory remain picklable for checkpoint/restore.
    """
    return ModelAwareCache(DEFAULT_CACHE_BYTES)


class _NodeValueReader:
    """A node's ``value_fn``: reads its ground-truth series at sim time.

    A callable object rather than a closure so protocol nodes — and the
    events that capture them — survive pickling.
    """

    __slots__ = ("runtime", "node_id")

    def __init__(self, runtime: "SnapshotRuntime", node_id: int) -> None:
        self.runtime = runtime
        self.node_id = node_id

    def __call__(self) -> float:
        return self.runtime.dataset.value(self.node_id, self.runtime.simulator.now)


class SnapshotRuntime:
    """A fully assembled snapshot-query sensor network.

    Parameters
    ----------
    topology:
        Node placement and transmission ranges.
    dataset:
        Ground-truth measurement series, one per node; must cover at
        least as many nodes as the topology.
    config:
        Protocol configuration (threshold, metric, timings, ...).
    seed:
        Root seed of all random streams.
    loss_model:
        Link loss (the paper's ``P_loss``); lossless by default.
    cache_factory:
        Builds each node's cache policy; defaults to the model-aware
        manager with the paper's 2,048-byte budget.
    battery_capacity:
        Initial per-node charge in transmission units, or ``None`` for
        infinite batteries (the §6.1 setting).
    cost_model:
        Energy prices (defaults to the paper's §6.2 accounting).
    batched_rounds:
        Collect overheard measurement observations into per-burst
        batches applied through one fleet sweep (see
        ``core.round_batch``) instead of one ``cache.observe`` call per
        delivery.  Bit-identical to the scalar path (proven by the
        differential suite in ``tests/persist/``); ``False`` keeps the
        scalar per-delivery path as the golden reference.
    """

    def __init__(
        self,
        topology: Topology,
        dataset: Dataset,
        config: Optional[ProtocolConfig] = None,
        seed: int = 0,
        loss_model: LossModel = PERFECT_LINKS,
        cache_factory: Optional[Callable[[], CachePolicy]] = None,
        battery_capacity: Optional[float] = None,
        cost_model: EnergyCostModel = PAPER_COST_MODEL,
        keep_trace_records: bool = False,
        metrics_enabled: bool = True,
        batched_rounds: bool = True,
        local_ids=None,
    ) -> None:
        if dataset.n_nodes < len(topology):
            raise ValueError(
                f"dataset has {dataset.n_nodes} series but the topology "
                f"has {len(topology)} nodes"
            )
        self.topology = topology
        self.dataset = dataset
        self.config = config if config is not None else ProtocolConfig()
        self.seed = seed
        #: Sharded-engine internal: when set, this runtime instantiates
        #: only the listed nodes (protocol state, devices, batteries,
        #: caches) while keeping the *full* topology for range/loss
        #: computations.  Requires the per-entity RNG discipline.
        self.local_ids = None if local_ids is None else frozenset(local_ids)
        if self.local_ids is not None and self.config.rng_discipline != "per-entity":
            raise ValueError(
                "a shard-local runtime requires rng_discipline='per-entity'"
            )
        self.simulator = Simulator(
            seed=seed,
            keep_trace_records=keep_trace_records,
            metrics_enabled=metrics_enabled,
        )
        self.radio = Radio(
            self.simulator,
            topology,
            loss_model=loss_model,
            cost_model=cost_model,
            rng_discipline=self.config.rng_discipline,
        )
        self.radio.populate(
            battery_capacity=battery_capacity,
            ids=None if self.local_ids is None else sorted(self.local_ids),
        )
        if cache_factory is None:
            cache_factory = _default_cache_factory

        self.nodes: dict[int, ProtocolNode] = {}
        for node_id in topology.node_ids:
            if self.local_ids is not None and node_id not in self.local_ids:
                continue
            store = NeighborModelStore(cache_factory())
            self.nodes[node_id] = ProtocolNode(
                node_id=node_id,
                radio=self.radio,
                store=store,
                config=self.config,
                value_fn=self._value_fn(node_id),
                location=topology.position(node_id),
            )
        self.batched_rounds = bool(batched_rounds)
        self.observation_router: Optional[BatchedObservationRouter] = None
        if self.batched_rounds:
            router = BatchedObservationRouter(
                self.simulator,
                fleet=self._build_fleet(),
                node_label=self.config.observe_node_label,
            )
            self.observation_router = router
            self.simulator.observation_barrier = router
            self.radio.observation_router = router

        #: Callables fired as ``hook(runtime, end_time)`` after every
        #: :meth:`run_slice` boundary (fleet-mode observation point).
        self.slice_hooks: list[Callable[["SnapshotRuntime", float], None]] = []
        self.coordinator = ElectionCoordinator(self.simulator, self.nodes, self.config)
        self.maintenance = MaintenanceManager(
            self.simulator,
            self.nodes,
            self.config,
            self.radio.stats,
            router=self.observation_router,
        )

    def _build_fleet(self) -> Optional[ModelAwareCacheFleet]:
        """A shared cache fleet with one lane per node, if the policy allows.

        Every cache must be an empty, vectorized
        :class:`~repro.models.cache_manager.ModelAwareCache` on a single
        byte budget; anything else (round-robin, mixed budgets,
        pre-warmed caches) returns ``None`` and the observation router
        falls back to scalar application — still batched at the same
        barrier, just without the vectorized sweep.  Lane order is
        ascending node id.
        """
        policies = []
        for node_id in sorted(self.nodes):
            policy = self.nodes[node_id].store.policy
            if (
                not isinstance(policy, ModelAwareCache)
                or not policy.vectorized
                or policy.total_pairs != 0
            ):
                return None
            policies.append(policy)
        if not policies:
            return None
        budgets = {policy.cache_bytes for policy in policies}
        if len(budgets) != 1:
            return None
        cache_bytes = budgets.pop()
        # A node only ever caches lines for senders it can hear, and a
        # scalar cache never holds more lines than its pair budget.
        max_degree = max(
            len(self.topology.in_neighbors(node_id)) for node_id in sorted(self.nodes)
        )
        lines = max(1, min(max_degree, pairs_for_budget(cache_bytes)))
        fleet = ModelAwareCacheFleet(
            len(policies), cache_bytes, max_lines=lines, ring_cap=8
        )
        for lane, policy in enumerate(policies):
            policy.bind_fleet(fleet, lane)
        # Materialize the dense id -> slot gather table while its
        # eventual F x n_nodes footprint stays modest (int32 entries;
        # the 32M-entry gate is ~128 MB).  Above that, observe_lanes
        # resolves slots through the per-cache dicts instead.
        if len(policies) * len(self.nodes) <= 32_000_000:
            fleet._ensure_idmap()
        return fleet

    def _value_fn(self, node_id: int) -> Callable[[], float]:
        return _NodeValueReader(self, node_id)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.simulator.now

    @property
    def stats(self):
        """Message counters (see :class:`~repro.network.MessageStats`)."""
        return self.radio.stats

    @property
    def ledger(self):
        """Energy ledger (see :class:`~repro.energy.EnergyLedger`)."""
        return self.radio.ledger

    @property
    def metrics(self):
        """The engine's :class:`~repro.obs.registry.MetricsRegistry`."""
        return self.simulator.metrics

    @property
    def current_epoch(self) -> int:
        """The protocol epoch the network is settled at.

        Bumps exactly when a global (re-)election round starts — the
        only time the representative set is rebuilt wholesale — so
        snapshot answers computed at epoch ``e`` stay structurally
        valid while ``current_epoch == e``.  Taken as the max over the
        coordinator and every node: a node revived mid-election may
        briefly lag, but the network-wide epoch is monotone.
        """
        node_max = max((node.epoch for node in self.nodes.values()), default=0)
        return max(self.coordinator.epoch, node_max)

    def structure_version(self) -> tuple[int, int]:
        """Invalidation key for epoch-scoped result caches.

        ``(current_epoch, total local re-elections)``: the epoch covers
        global rounds, the re-election counter covers the §5.1
        maintenance repairs that can reshape individual representative
        sets *within* an epoch.  Any change to the representation
        structure changes this tuple, so a cache keyed on it can never
        serve an answer across a structural change.
        """
        reelections = sum(node.reelections for node in self.nodes.values())
        return (self.current_epoch, reelections)

    def value_of(self, node_id: int) -> float:
        """Ground-truth measurement of ``node_id`` right now."""
        return self.dataset.value(node_id, self.simulator.now)

    def alive_ids(self) -> list[int]:
        """Ids of nodes still holding charge."""
        return self.radio.alive_ids()

    # ------------------------------------------------------------------
    # driving the network
    # ------------------------------------------------------------------

    def train(
        self,
        start: Optional[float] = None,
        duration: float = 10.0,
        interval: float = 1.0,
    ) -> None:
        """Run the §6.1 warm-up: a query selecting every node's value.

        For ``duration`` time units, every alive node broadcasts a data
        report each ``interval``; neighbors cache every report they
        hear (snoop probability 1 during training), building their
        correlation models.  The simulator is advanced past the end of
        the window.
        """
        end = self._schedule_train(start=start, duration=duration, interval=interval)
        self.simulator.run_until(end)

    def _schedule_train(
        self,
        start: Optional[float] = None,
        duration: float = 10.0,
        interval: float = 1.0,
    ) -> float:
        """Schedule the training window's events; returns its end time.

        Split from :meth:`train` so the sharded engine can plant the
        identical event schedule in every shard and then advance them
        under its window protocol instead of ``run_until``.
        """
        if duration <= 0 or interval <= 0:
            raise ValueError("training duration and interval must be positive")
        t0 = self.simulator.now if start is None else start
        saved = {node_id: node.snoop_probability for node_id, node in self.nodes.items()}

        self.simulator.schedule_at(
            t0, partial(self._set_snoop, None), label="train:snoop-on"
        )
        tick = t0
        end = t0 + duration
        while tick < end:
            self.simulator.schedule_at(
                tick, self._train_broadcast, label="train:broadcast"
            )
            tick += interval
        self.simulator.schedule_at(
            end, partial(self._set_snoop, saved), label="train:snoop-restore"
        )
        return end

    def _set_snoop(self, probability: Optional[dict[int, float]]) -> None:
        """Set every node's snoop probability (``None`` = 1.0, training)."""
        for node_id, node in self.nodes.items():
            node.snoop_probability = (
                1.0 if probability is None else probability[node_id]
            )

    def _train_broadcast(self) -> None:
        """One training tick: every alive node broadcasts a data report."""
        simulator = self.simulator
        with simulator.fanout():
            for node_id in sorted(self.nodes):
                node = self.nodes[node_id]
                if node.alive:
                    with simulator.branch(node_id):
                        self.radio.broadcast(
                            DataReport(
                                sender=node_id,
                                query_id=0,
                                origin=node_id,
                                value=node.value_fn(),
                            )
                        )

    def run_election(self, at: Optional[float] = None) -> SnapshotView:
        """Run one global election and return the settled snapshot."""
        t0 = self.simulator.now if at is None else at
        self.coordinator.start_round(at=t0)
        self.simulator.run_until(t0 + self.coordinator.settle_delay)
        return self.snapshot()

    def snapshot(self) -> SnapshotView:
        """Capture the current snapshot structure."""
        return SnapshotView.capture(self.nodes)

    def start_maintenance(self) -> None:
        """Arm the periodic §5.1 maintenance."""
        self.maintenance.start()

    def advance_to(self, time: float) -> None:
        """Run the simulation up to absolute ``time``."""
        self.simulator.run_until(time)

    def idle_until(self, time: float) -> None:
        """Alias of :meth:`advance_to` for readability in experiments."""
        self.advance_to(time)

    def run_slice(self, duration: float) -> float:
        """Advance one bounded slice of ``duration``; returns its end time.

        The fleet layer's unit of progress: equivalent to
        ``advance_to(now + duration)`` — slicing a run this way fires
        the identical event sequence the uninterrupted run fires
        (proven by ``tests/fleet/``) — and then fires any registered
        ``slice_hooks`` with ``(runtime, end_time)``.  Hooks must be
        picklable read-only observers if the runtime is checkpointed
        while they are registered.
        """
        if duration <= 0:
            raise ValueError(f"slice duration must be positive, got {duration}")
        end = self.simulator.now + duration
        self.simulator.run_until(end)
        for hook in self.slice_hooks:
            hook(self, end)
        return end

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def state_digest(self):
        """Canonical per-component + whole-sim digest of the current state."""
        from repro.persist import state_digest

        return state_digest(self)

    def checkpoint(self, path, meta: Optional[dict] = None):
        """Freeze the complete network state to ``path``.

        Everything behavior-relevant is serialized — pending events,
        RNG stream states, every node's election/maintenance state,
        model caches, batteries, loss-overlay state, metrics — such
        that :meth:`restore` resumes on the *identical* trajectory the
        uninterrupted run would have taken (proven by the differential
        suite in ``tests/persist/``).  Returns the saved digest.
        """
        from repro.persist import save_checkpoint

        return save_checkpoint(self, path, meta=meta)

    @classmethod
    def restore(cls, path, verify: bool = True) -> "SnapshotRuntime":
        """Load a runtime previously saved with :meth:`checkpoint`."""
        from repro.persist import load_checkpoint

        obj = load_checkpoint(path, verify=verify)
        if not isinstance(obj, cls):
            raise TypeError(
                f"checkpoint at {path} holds a {type(obj).__name__}, "
                f"expected a {cls.__name__}"
            )
        return obj
