"""Node status flags (§5 of the paper).

Each node carries a status flag that is initially undefined and settles
to ACTIVE or PASSIVE during an election:

* an **ACTIVE** node represents a non-empty set of nodes (including, by
  default, itself) and responds to snapshot queries involving any of
  them;
* a **PASSIVE** node is represented by another node and does not respond
  to snapshot queries (under severe energy constraints it may ask its
  representative to replace it on *all* queries).

Within one election nodes never flip between ACTIVE and PASSIVE — only
UNDEFINED resolves.
"""

from __future__ import annotations

import enum

__all__ = ["NodeMode"]


class NodeMode(enum.Enum):
    """The tri-state status flag of Figure 5."""

    UNDEFINED = "undefined"
    ACTIVE = "active"
    PASSIVE = "passive"

    @property
    def settled(self) -> bool:
        """Whether the flag has resolved (Rule-4's exit condition)."""
        return self is not NodeMode.UNDEFINED
