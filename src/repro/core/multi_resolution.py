"""Multi-resolution snapshots and per-query thresholds (§1 and §3.1).

The paper sketches two extensions implemented here:

* **Multiple thresholds.**  "One can extend this technique and use
  multiple threshold values.  Each set of representatives, compiled for
  a value of T, is essentially a 'snapshot' of the network at a
  different 'resolution'" (§1).  :class:`MultiResolutionSnapshot` runs
  one election per threshold over the *same* trained network (models
  are shared — "the data models ... will be shared among all running
  queries", §3.1) and exposes the per-resolution views.

* **Snapshot reuse across queries.**  "Given queries Q1, Q2, ... with
  error thresholds T1 <= T2 <= ... we can obtain a single set of
  representatives for the most tight threshold T1 and use them for
  answering all other queries" (§3.1).  :meth:`view_for_threshold`
  implements that rule: a query with threshold ``T`` is served by the
  *coarsest* snapshot whose election threshold does not exceed ``T`` —
  any such snapshot satisfies the error bound, and the coarsest one
  has the fewest participating representatives; a query tighter than
  every snapshot gets ``None`` (it needs its own election).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.core.runtime import SnapshotRuntime
from repro.core.snapshot import SnapshotView

__all__ = ["MultiResolutionSnapshot"]


class MultiResolutionSnapshot:
    """A family of snapshots at increasing error thresholds.

    Parameters
    ----------
    runtime:
        A trained :class:`SnapshotRuntime`; its protocol configuration
        supplies every parameter except the threshold.
    thresholds:
        The resolutions, strictly increasing and positive.
    """

    def __init__(self, runtime: SnapshotRuntime, thresholds: Sequence[float]) -> None:
        if not thresholds:
            raise ValueError("need at least one threshold")
        ordered = list(thresholds)
        if any(t <= 0 for t in ordered):
            raise ValueError(f"thresholds must be positive, got {ordered}")
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError(f"thresholds must be strictly increasing, got {ordered}")
        self.runtime = runtime
        self.thresholds = tuple(ordered)
        self._views: dict[float, SnapshotView] = {}

    def build(self) -> dict[float, SnapshotView]:
        """Run one election per threshold; returns ``threshold -> view``.

        Elections run sequentially on the shared runtime; each election
        re-resolves every node's mode, so the views are captured
        immediately after their own round settles.  Each round costs
        the usual at-most-five messages per node (§3.1 calls this "a
        reasonable startup cost").
        """
        base_config = self.runtime.config
        try:
            for threshold in self.thresholds:
                scoped = replace(base_config, threshold=threshold)
                for node in self.runtime.nodes.values():
                    node.config = scoped
                self.runtime.coordinator.config = scoped
                view = self.runtime.run_election()
                self._views[threshold] = view
        finally:
            # Restore the runtime's configured threshold even when an
            # election raises mid-loop — otherwise every node is left
            # pointing at the scoped config and the runtime silently
            # keeps electing at the wrong threshold.
            for node in self.runtime.nodes.values():
                node.config = base_config
            self.runtime.coordinator.config = base_config
        return dict(self._views)

    @property
    def views(self) -> dict[float, SnapshotView]:
        """Views built so far, by threshold."""
        return dict(self._views)

    def view_for_threshold(self, query_threshold: float) -> Optional[SnapshotView]:
        """The §3.1 reuse rule: the coarsest snapshot with ``T <= query T``.

        Returns ``None`` when the query is tighter than every built
        snapshot — it must trigger its own election.
        """
        usable = [t for t in self._views if t <= query_threshold]
        if not usable:
            return None
        # coarsest usable snapshot => fewest participating nodes
        return self._views[max(usable)]

    def sizes(self) -> dict[float, int]:
        """Snapshot size per threshold (the shape of Figure 11)."""
        return {threshold: view.size for threshold, view in self._views.items()}
