"""Coverage tracking over a network's lifetime (Figure 10).

The paper's lifetime experiment fires a stream of random spatial
queries at a battery-powered network and tracks *coverage*: the number
of node measurements available to each query over the number of nodes
that would have responded given infinite battery capacity.  "For
instance, if four nodes are within the spatial filter of the query and
one of them has died, coverage is 75%.  For the same query on the
snapshot, the representative of the node that died might be available
and in that case coverage will be 100%."

:class:`CoverageSeries` accumulates per-query coverage and exposes the
summary the paper argues from: the area under the coverage curve
("What is important is the area below each curve, which in the case of
snapshot queries is significantly larger").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.executor import QueryResult

__all__ = ["CoverageSeries"]


@dataclass
class CoverageSeries:
    """Per-query coverage samples in execution order."""

    samples: list[float] = field(default_factory=list)

    def record(self, result: QueryResult) -> float:
        """Append the coverage of ``result``; returns it."""
        value = result.coverage()
        self.samples.append(value)
        return value

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def area(self) -> float:
        """Area under the coverage curve (sum of samples; unit x-step)."""
        return float(sum(self.samples))

    @property
    def mean(self) -> float:
        """Average coverage over the run."""
        if not self.samples:
            return 0.0
        return self.area / len(self.samples)

    def first_below(self, level: float) -> int | None:
        """Index of the first query whose coverage fell below ``level``."""
        for index, value in enumerate(self.samples):
            if value < level:
                return index
        return None

    def smoothed(self, window: int = 10) -> list[float]:
        """Trailing moving average, for plotting the Figure 10 curves."""
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        output = []
        for index in range(len(self.samples)):
            start = max(0, index - window + 1)
            chunk = self.samples[start : index + 1]
            output.append(sum(chunk) / len(chunk))
        return output
