"""Energy-based query planning (§3.1's optimizer remark).

The paper observes that embedded query processors "can provide
energy-based query optimization because of their tight integration with
the node's operations".  :class:`QueryPlanner` is that optimizer for
snapshot queries: given a query, it estimates the transmission cost of
both execution modes from information a base station legitimately has —
node locations (carried by the Accept messages), the current snapshot
structure, and the radio ranges — and picks the cheaper plan.

The estimates deliberately ignore measurement values (the planner
cannot see live data): a value predicate makes both estimates upper
bounds, which keeps the regular-vs-snapshot comparison fair.

The planner also applies the §3.1 per-query-threshold rules: a
``USE SNAPSHOT WITH ERROR t`` query is routed to the coarsest usable
multi-resolution view, and a query tighter than every available
snapshot is flagged as needing its own election.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.multi_resolution import MultiResolutionSnapshot
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.query.ast import Query
from repro.query.executor import QueryExecutor, QueryResult

__all__ = ["QueryPlan", "QueryCostEstimate", "QueryPlanner"]

#: Byte model of the dispatch cost estimates, in the style of the
#: distributed query-cost exemplars: a fixed per-message envelope plus
#: eight bytes per numeric field and one per flag.
MESSAGE_HEADER_BYTES = 12
FIELD_BYTES = 8
FLAG_BYTES = 1

#: One drill-through measurement report: query id, origin, value + the
#: ``estimated`` flag.
REPORT_BYTES = MESSAGE_HEADER_BYTES + 3 * FIELD_BYTES + FLAG_BYTES

#: One partial aggregate: query id, count, total, minimum, maximum.
AGGREGATE_BYTES = MESSAGE_HEADER_BYTES + 5 * FIELD_BYTES


@dataclass(frozen=True)
class QueryCostEstimate:
    """Pre-dispatch resource estimate for one query execution.

    The serving front-end admits or rejects queries on these numbers
    (cost-based admission): everything is computable from information a
    base station legitimately has — node locations, the snapshot
    structure, radio ranges — before any message is sent.

    Attributes
    ----------
    use_snapshot:
        The execution mode the estimate describes.
    responders:
        Nodes expected to produce measurements (upper bound: tree
        membership and model misses can only shrink it).
    nodes_touched:
        Expected distinct participants — responders plus routing nodes
        on their tree paths, capped at the alive population.
    bytes_on_network:
        Expected bytes transmitted over all sampling rounds.
    selectivity:
        Fraction of alive nodes inside the query's spatial predicate.
    transmissions:
        Expected transmissions per sampling round (the
        :class:`QueryPlan` cost model).
    rounds:
        Sampling rounds the acquisition clauses imply.
    """

    use_snapshot: bool
    responders: int
    nodes_touched: int
    bytes_on_network: float
    selectivity: float
    transmissions: float
    rounds: int

    @property
    def total_transmissions(self) -> float:
        """Transmissions over the query's whole lifetime."""
        return self.transmissions * self.rounds


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision and its cost model.

    Attributes
    ----------
    use_snapshot:
        The chosen execution mode.
    estimated_regular_cost:
        Estimated transmissions per round for regular execution.
    estimated_snapshot_cost:
        Estimated transmissions per round for snapshot execution
        (``inf`` when the snapshot cannot serve the query).
    needs_election:
        The query's error threshold is tighter than every available
        snapshot; it must trigger an election before snapshot execution.
    reason:
        Human-readable justification.
    """

    use_snapshot: bool
    estimated_regular_cost: float
    estimated_snapshot_cost: float
    needs_election: bool
    reason: str


class QueryPlanner:
    """Chooses between regular and snapshot execution by estimated cost."""

    def __init__(
        self,
        runtime: SnapshotRuntime,
        executor: Optional[QueryExecutor] = None,
        multi: Optional[MultiResolutionSnapshot] = None,
    ) -> None:
        self.runtime = runtime
        self.executor = executor if executor is not None else QueryExecutor(runtime)
        self.multi = multi

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------

    def _mean_hops(self) -> float:
        """Expected tree-path length: mean pairwise distance over range."""
        topology = self.runtime.topology
        if not len(topology):
            raise ValueError(
                "cannot estimate hop counts over an empty topology "
                "(no nodes, hence no transmission ranges)"
            )
        reach = min(topology.range_of(node) for node in topology.node_ids)
        # expected distance between two uniform points on the unit
        # square is ~0.52; every hop covers at most one range
        return max(1.0, 0.52 / reach)

    def regular_responders(self, query: Query) -> frozenset[int]:
        """Alive nodes inside the spatial predicate (regular execution).

        A value predicate can only shrink the actual responder set, so
        this is an upper bound on who reports.
        """
        topology = self.runtime.topology
        return frozenset(
            node_id
            for node_id in self.runtime.alive_ids()
            if query.region.contains(*topology.position(node_id))
        )

    def snapshot_responders(self, query: Query) -> frozenset[int]:
        """Non-passive alive nodes covering the region (snapshot execution).

        A node covers the query when its own location matches or, for a
        representative, when any member location learned from the
        Accept messages matches (§3.1).  Tree membership, value
        predicates and model-estimate misses can only shrink the actual
        responder set, so the planned set is a superset of the
        executed one (property-tested in ``tests/query``).
        """
        responders = []
        for node_id, node in self.runtime.nodes.items():
            if not node.alive or node.mode is NodeMode.PASSIVE:
                continue
            x, y = node.location
            covers = query.region.contains(x, y)
            if not covers and node.mode is NodeMode.ACTIVE:
                covers = any(
                    location is not None and query.region.contains(*location)
                    for location in (
                        node.member_location(member) for member in node.represented
                    )
                )
            if covers:
                responders.append(node_id)
        return frozenset(responders)

    def _transmissions_per_round(self, query: Query, responders: int) -> float:
        if query.is_aggregate:
            # TAG: one message per participant; routers shared
            return responders + self._mean_hops()
        return responders * (1.0 + self._mean_hops())

    def estimate_regular_cost(self, query: Query) -> float:
        """Transmissions per round: every matching alive node reports."""
        return self._transmissions_per_round(query, len(self.regular_responders(query)))

    def estimate_snapshot_cost(self, query: Query) -> float:
        """Transmissions per round: covering representatives report."""
        return self._transmissions_per_round(
            query, len(self.snapshot_responders(query))
        )

    def spatial_selectivity(self, query: Query) -> float:
        """Fraction of alive nodes the spatial predicate selects.

        The planner evaluates the predicate against the known node
        locations rather than integrating region areas, so irregular
        deployments are estimated exactly.  An empty network has
        selectivity 0 by convention.
        """
        alive = self.runtime.alive_ids()
        if not alive:
            return 0.0
        topology = self.runtime.topology
        matching = sum(
            1 for node_id in alive if query.region.contains(*topology.position(node_id))
        )
        return matching / len(alive)

    def estimate_cost(
        self, query: Query, use_snapshot: Optional[bool] = None
    ) -> QueryCostEstimate:
        """Full pre-dispatch estimate for ``query`` in one execution mode.

        ``use_snapshot`` defaults to the mode the query itself asks for;
        the serving front-end passes the planned mode.  Bytes follow the
        distributed query-cost byte model (header + fields per message);
        node counts are capped at the alive population.
        """
        if use_snapshot is None:
            use_snapshot = query.use_snapshot
        responder_ids = (
            self.snapshot_responders(query)
            if use_snapshot
            else self.regular_responders(query)
        )
        responders = len(responder_ids)
        hops = self._mean_hops()
        n_alive = len(self.runtime.alive_ids())
        if query.is_aggregate:
            routers = hops  # one shared path of partial aggregates
            bytes_per_round = responders * REPORT_BYTES + routers * AGGREGATE_BYTES
        else:
            routers = responders * hops  # every bundle forwarded hop-by-hop
            bytes_per_round = responders * (1.0 + hops) * REPORT_BYTES
        return QueryCostEstimate(
            use_snapshot=use_snapshot,
            responders=responders,
            nodes_touched=min(n_alive, responders + math.ceil(routers)),
            bytes_on_network=bytes_per_round * query.rounds,
            selectivity=self.spatial_selectivity(query),
            transmissions=self._transmissions_per_round(query, responders),
            rounds=query.rounds,
        )

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(self, query: Query) -> QueryPlan:
        """Choose the cheaper execution mode for ``query``.

        An explicit ``USE SNAPSHOT`` is treated as advisory: the
        planner may still run regularly when the snapshot would not be
        cheaper (e.g. a tiny region containing one unrepresented node),
        and conversely a plain query is upgraded to snapshot execution
        when that saves transmissions and the snapshot's threshold
        permits it.
        """
        regular_cost = self.estimate_regular_cost(query)
        needs_election = False
        snapshot_threshold_ok = True

        if query.snapshot_threshold is not None:
            if self.multi is not None:
                view = self.multi.view_for_threshold(query.snapshot_threshold)
                needs_election = view is None
            else:
                snapshot_threshold_ok = (
                    query.snapshot_threshold >= self.runtime.config.threshold
                )
                needs_election = not snapshot_threshold_ok

        if needs_election:
            return QueryPlan(
                use_snapshot=False,
                estimated_regular_cost=regular_cost,
                estimated_snapshot_cost=math.inf,
                needs_election=True,
                reason=(
                    f"query threshold {query.snapshot_threshold} is tighter "
                    f"than every available snapshot; answering regularly "
                    f"(or elect at the tighter threshold first)"
                ),
            )

        snapshot_cost = self.estimate_snapshot_cost(query)
        use_snapshot = snapshot_cost < regular_cost
        if use_snapshot:
            reason = (
                f"snapshot execution (~{snapshot_cost:.1f} tx/round) beats "
                f"regular (~{regular_cost:.1f} tx/round)"
            )
        else:
            reason = (
                f"regular execution (~{regular_cost:.1f} tx/round) is not "
                f"beaten by the snapshot (~{snapshot_cost:.1f} tx/round)"
            )
        return QueryPlan(
            use_snapshot=use_snapshot,
            estimated_regular_cost=regular_cost,
            estimated_snapshot_cost=snapshot_cost,
            needs_election=False,
            reason=reason,
        )

    def rewrite(self, query: Query, plan: QueryPlan) -> Query:
        """Rewrite ``query`` to the mode ``plan`` chose.

        When a :class:`MultiResolutionSnapshot` resolved the query's
        threshold to a view, the threshold is *dropped* from the planned
        query: the planner already routed the query to a usable
        resolution, and keeping the raw threshold would trip the
        executor's single-snapshot reuse check whenever the resolved
        view is tighter than the runtime's own election threshold.
        """
        from dataclasses import replace

        keep_threshold = plan.use_snapshot and self.multi is None
        return replace(
            query,
            use_snapshot=plan.use_snapshot,
            snapshot_threshold=query.snapshot_threshold if keep_threshold else None,
        )

    def execute(self, query: Query, **kwargs) -> tuple[QueryPlan, QueryResult]:
        """Plan, rewrite the query to the chosen mode, and execute it."""
        plan = self.plan(query)
        result = self.executor.execute(self.rewrite(query, plan), **kwargs)
        return plan, result
