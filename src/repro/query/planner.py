"""Energy-based query planning (§3.1's optimizer remark).

The paper observes that embedded query processors "can provide
energy-based query optimization because of their tight integration with
the node's operations".  :class:`QueryPlanner` is that optimizer for
snapshot queries: given a query, it estimates the transmission cost of
both execution modes from information a base station legitimately has —
node locations (carried by the Accept messages), the current snapshot
structure, and the radio ranges — and picks the cheaper plan.

The estimates deliberately ignore measurement values (the planner
cannot see live data): a value predicate makes both estimates upper
bounds, which keeps the regular-vs-snapshot comparison fair.

The planner also applies the §3.1 per-query-threshold rules: a
``USE SNAPSHOT WITH ERROR t`` query is routed to the coarsest usable
multi-resolution view, and a query tighter than every available
snapshot is flagged as needing its own election.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.multi_resolution import MultiResolutionSnapshot
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.query.ast import Query
from repro.query.executor import QueryExecutor, QueryResult

__all__ = ["QueryPlan", "QueryPlanner"]


@dataclass(frozen=True)
class QueryPlan:
    """The planner's decision and its cost model.

    Attributes
    ----------
    use_snapshot:
        The chosen execution mode.
    estimated_regular_cost:
        Estimated transmissions per round for regular execution.
    estimated_snapshot_cost:
        Estimated transmissions per round for snapshot execution
        (``inf`` when the snapshot cannot serve the query).
    needs_election:
        The query's error threshold is tighter than every available
        snapshot; it must trigger an election before snapshot execution.
    reason:
        Human-readable justification.
    """

    use_snapshot: bool
    estimated_regular_cost: float
    estimated_snapshot_cost: float
    needs_election: bool
    reason: str


class QueryPlanner:
    """Chooses between regular and snapshot execution by estimated cost."""

    def __init__(
        self,
        runtime: SnapshotRuntime,
        executor: Optional[QueryExecutor] = None,
        multi: Optional[MultiResolutionSnapshot] = None,
    ) -> None:
        self.runtime = runtime
        self.executor = executor if executor is not None else QueryExecutor(runtime)
        self.multi = multi

    # ------------------------------------------------------------------
    # cost model
    # ------------------------------------------------------------------

    def _mean_hops(self) -> float:
        """Expected tree-path length: mean pairwise distance over range."""
        topology = self.runtime.topology
        reach = min(topology.range_of(node) for node in topology.node_ids)
        # expected distance between two uniform points on the unit
        # square is ~0.52; every hop covers at most one range
        return max(1.0, 0.52 / reach)

    def estimate_regular_cost(self, query: Query) -> float:
        """Transmissions per round: every matching alive node reports."""
        topology = self.runtime.topology
        alive = set(self.runtime.alive_ids())
        responders = sum(
            1
            for node_id in alive
            if query.region.contains(*topology.position(node_id))
        )
        if query.is_aggregate:
            # TAG: one message per participant; routers shared
            return responders + self._mean_hops()
        return responders * (1.0 + self._mean_hops())

    def estimate_snapshot_cost(self, query: Query) -> float:
        """Transmissions per round: covering representatives report."""
        responders = 0
        for node in self.runtime.nodes.values():
            if not node.alive or node.mode is NodeMode.PASSIVE:
                continue
            x, y = node.location
            covers = query.region.contains(x, y)
            if not covers and node.mode is NodeMode.ACTIVE:
                covers = any(
                    location is not None and query.region.contains(*location)
                    for location in (
                        node.member_location(member) for member in node.represented
                    )
                )
            if covers:
                responders += 1
        if query.is_aggregate:
            return responders + self._mean_hops()
        return responders * (1.0 + self._mean_hops())

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def plan(self, query: Query) -> QueryPlan:
        """Choose the cheaper execution mode for ``query``.

        An explicit ``USE SNAPSHOT`` is treated as advisory: the
        planner may still run regularly when the snapshot would not be
        cheaper (e.g. a tiny region containing one unrepresented node),
        and conversely a plain query is upgraded to snapshot execution
        when that saves transmissions and the snapshot's threshold
        permits it.
        """
        regular_cost = self.estimate_regular_cost(query)
        needs_election = False
        snapshot_threshold_ok = True

        if query.snapshot_threshold is not None:
            if self.multi is not None:
                view = self.multi.view_for_threshold(query.snapshot_threshold)
                needs_election = view is None
            else:
                snapshot_threshold_ok = (
                    query.snapshot_threshold >= self.runtime.config.threshold
                )
                needs_election = not snapshot_threshold_ok

        if needs_election:
            return QueryPlan(
                use_snapshot=False,
                estimated_regular_cost=regular_cost,
                estimated_snapshot_cost=math.inf,
                needs_election=True,
                reason=(
                    f"query threshold {query.snapshot_threshold} is tighter "
                    f"than every available snapshot; answering regularly "
                    f"(or elect at the tighter threshold first)"
                ),
            )

        snapshot_cost = self.estimate_snapshot_cost(query)
        use_snapshot = snapshot_cost < regular_cost
        if use_snapshot:
            reason = (
                f"snapshot execution (~{snapshot_cost:.1f} tx/round) beats "
                f"regular (~{regular_cost:.1f} tx/round)"
            )
        else:
            reason = (
                f"regular execution (~{regular_cost:.1f} tx/round) is not "
                f"beaten by the snapshot (~{snapshot_cost:.1f} tx/round)"
            )
        return QueryPlan(
            use_snapshot=use_snapshot,
            estimated_regular_cost=regular_cost,
            estimated_snapshot_cost=snapshot_cost,
            needs_election=False,
            reason=reason,
        )

    def execute(self, query: Query, **kwargs) -> tuple[QueryPlan, QueryResult]:
        """Plan, rewrite the query to the chosen mode, and execute it."""
        plan = self.plan(query)
        from dataclasses import replace

        planned_query = replace(
            query,
            use_snapshot=plan.use_snapshot,
            snapshot_threshold=query.snapshot_threshold if plan.use_snapshot else None,
        )
        result = self.executor.execute(planned_query, **kwargs)
        return plan, result
