"""TAG-style aggregation trees (§6.2).

For each query a *sink* node floods a request through the network; the
flood induces a tree rooted at the sink (every node's parent is the
neighbor it first heard the request from), and measurements are
partially aggregated on their way up — the in-network aggregation of
Madden et al.'s TAG, which the paper uses verbatim ("using the flooding
mechanism described in [11] an aggregation tree was formed").

The flood is simulated combinatorially, level by level, with each hop
subject to the same per-link loss model as the radio: a node joins the
tree in the first round it hears any re-broadcast.  When several
same-round parents are heard the tie-break prefers nodes in ``prefer``
(the §3.1 remark that routing can favor representatives, exercised by
the routing ablation) and then the smallest id, keeping trees
deterministic for a given RNG state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Iterable, Optional

import numpy as np

from repro.network.links import PERFECT_LINKS, LossModel
from repro.network.topology import Topology

__all__ = ["AggregationTree"]


@dataclass(frozen=True)
class AggregationTree:
    """A routing tree rooted at ``sink``.

    Attributes
    ----------
    sink:
        The querying node.
    parents:
        ``node -> parent`` for every node that joined the tree (the
        sink maps to itself).
    depths:
        Hop distance from the sink for every member.
    """

    sink: int
    parents: dict[int, int]
    depths: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Memo tables, not part of the value: the serving front-end
        # calls ``routers_for``/``subtree_size`` once per admitted
        # query against the same shared tree, so paths are resolved at
        # most once per node instead of re-walked per member per call.
        object.__setattr__(self, "_path_cache", {})
        object.__setattr__(self, "_subtree_sizes", None)

    @classmethod
    def build(
        cls,
        topology: Topology,
        sink: int,
        alive: AbstractSet[int],
        rng: np.random.Generator,
        loss_model: LossModel = PERFECT_LINKS,
        prefer: AbstractSet[int] = frozenset(),
    ) -> "AggregationTree":
        """Flood from ``sink`` over the alive nodes and derive the tree.

        Parameters
        ----------
        topology:
            Placement and ranges; floods travel over directed radio links.
        sink:
            Root of the tree; must be alive.
        alive:
            Nodes that can hear and re-broadcast the flood.
        rng:
            Samples per-link delivery during the flood.
        loss_model:
            The same loss model as the data radio.
        prefer:
            Nodes favored as parents when several are heard in the same
            round (the representative-routing option).
        """
        if sink not in alive:
            raise ValueError(f"sink {sink} is not alive")
        parents: dict[int, int] = {sink: sink}
        depths: dict[int, int] = {sink: 0}
        frontier = [sink]
        depth = 0
        while frontier:
            depth += 1
            # Collect, for every not-yet-joined node, the parents whose
            # re-broadcast it heard this round.
            heard: dict[int, list[int]] = {}
            for broadcaster in frontier:
                for receiver in topology.out_neighbors(broadcaster):
                    if receiver in parents or receiver not in alive:
                        continue
                    if loss_model.delivered(broadcaster, receiver, rng):
                        heard.setdefault(receiver, []).append(broadcaster)
            next_frontier = []
            for receiver in sorted(heard):
                candidates = heard[receiver]
                chosen = min(
                    candidates, key=lambda node: (node not in prefer, node)
                )
                parents[receiver] = chosen
                depths[receiver] = depth
                next_frontier.append(receiver)
            frontier = next_frontier
        return cls(sink=sink, parents=parents, depths=depths)

    @property
    def members(self) -> frozenset[int]:
        """Every node that joined the tree (heard the query)."""
        return frozenset(self.parents)

    def parent(self, node: int) -> Optional[int]:
        """The node's parent, or ``None`` if it never joined."""
        return self.parents.get(node)

    def path_to_sink(self, node: int) -> list[int]:
        """Nodes from ``node`` (inclusive) up to the sink (inclusive).

        Paths are memoized per node (and every suffix of a discovered
        path is memoized with it), so repeated calls — ``routers_for``
        over many responder sets, drill-through transmission — cost
        amortized O(path length) instead of one full walk each.

        Raises
        ------
        KeyError
            If ``node`` is not a member of the tree.
        """
        if node not in self.parents:
            raise KeyError(f"node {node} is not in the tree")
        cache: dict[int, tuple[int, ...]] = self._path_cache
        cached = cache.get(node)
        if cached is None:
            walk = [node]
            tail: tuple[int, ...] = ()
            while walk[-1] != self.sink:
                parent = self.parents[walk[-1]]
                hit = cache.get(parent)
                if hit is not None:
                    tail = hit
                    break
                walk.append(parent)
            cached = tuple(walk) + tail
            for offset in range(len(walk)):
                cache[walk[offset]] = cached[offset:]
        return list(cached)

    def routers_for(self, responders: Iterable[int]) -> frozenset[int]:
        """Non-responding nodes that must forward the responders' data.

        The union of all tree paths from responders to the sink,
        excluding the responders themselves and the sink.
        """
        responder_set = set(responders)
        routers: set[int] = set()
        for responder in responder_set:
            if responder not in self.parents:
                continue
            routers.update(self.path_to_sink(responder)[1:-1])
        routers.discard(self.sink)
        return frozenset(routers - responder_set)

    def subtree_size(self, node: int) -> int:
        """Number of members whose path to the sink passes through ``node``.

        Sizes for the whole tree are computed once, bottom-up from the
        deepest members (O(members) total), and memoized.
        """
        sizes = self._subtree_sizes
        if sizes is None:
            depths = self.depths
            if len(depths) < len(self.parents):
                # Trees built by hand may omit depths; derive them.
                depths = {
                    member: len(self.path_to_sink(member)) - 1
                    for member in self.parents
                }
            sizes = {member: 1 for member in self.parents}
            by_depth = sorted(
                self.parents, key=lambda member: depths[member], reverse=True
            )
            for member in by_depth:
                if member != self.sink:
                    sizes[self.parents[member]] += sizes[member]
            object.__setattr__(self, "_subtree_sizes", sizes)
        return sizes.get(node, 0)
