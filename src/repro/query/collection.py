"""Message-driven, epoch-slotted TAG collection.

The default executor computes a query's answer centrally and charges
the radio for the implied messages — exact for lossless runs (all of
§6's query experiments) and fast.  This module is the fully faithful
alternative: the answer is assembled *from the messages that actually
arrive*, using TAG's slotted schedule (Madden et al., the paper's
[11]):

* nodes are scheduled by tree depth, deepest first;
* at its slot, a node merges its own readings with the partials its
  children delivered, and transmits one message to its parent
  (aggregates) or forwards the buffered report bundles (drill-through);
* the sink's slot closes the round; whatever never arrived — dropped by
  ``P_loss``, stranded by a mid-round death — is simply missing from
  the answer.

Under a lossless radio the result is identical to the central
computation (asserted by tests); under loss it degrades exactly the way
a real TAG round does: losing a partial near the root silences a whole
subtree.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Optional

from repro.network.messages import AggregateReport, DataReport, Message
from repro.query.aggregation_tree import AggregationTree
from repro.query.ast import Aggregate, Query

__all__ = ["TagCollection", "CollectionOutcome"]


@dataclass
class _PartialAggregate:
    """TAG's mergeable aggregate state (count/sum/min/max covers all five)."""

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def add_value(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def merge(self, other: "AggregateReport") -> None:
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)

    def answer(self, aggregate: Aggregate) -> Optional[float]:
        if aggregate is Aggregate.COUNT:
            return float(self.count)
        if self.count == 0:
            return None
        if aggregate is Aggregate.SUM:
            return self.total
        if aggregate is Aggregate.AVG:
            return self.total / self.count
        if aggregate is Aggregate.MIN:
            return self.minimum
        return self.maximum


@dataclass(frozen=True)
class CollectionOutcome:
    """What the sink actually received in one messaged round."""

    delivered_reports: dict[int, tuple[float, bool]]
    aggregate_value: Optional[float]
    transmissions: int


class TagCollection:
    """One epoch-slotted collection round over an aggregation tree.

    Parameters
    ----------
    runtime:
        The network; transient receive handlers are attached to its
        devices for the duration of the round.
    tree:
        The routing tree (built by the flood).
    query:
        Decides aggregate-vs-drill-through merging.
    query_id:
        Tags this round's messages.
    contributions:
        ``origin -> (value, estimated)`` per responder — each
        responder's own bundle, injected at its tree position.
    responders:
        The nodes that contribute; every other tree member only relays.
    slot:
        Slot width in time units; a node at depth d transmits
        ``(max_depth - d)`` slots after the round starts.
    """

    def __init__(
        self,
        runtime,
        tree: AggregationTree,
        query: Query,
        query_id: int,
        contributions: dict[int, dict[int, tuple[float, bool]]],
        slot: float = 0.05,
    ) -> None:
        if slot <= 0:
            raise ValueError(f"slot must be positive, got {slot}")
        self.runtime = runtime
        self.tree = tree
        self.query = query
        self.query_id = query_id
        self.contributions = contributions
        self.slot = slot
        self._partials: dict[int, _PartialAggregate] = {}
        self._buffers: dict[int, dict[int, tuple[float, bool]]] = {}
        self._handlers: dict[int, object] = {}
        self._sent = 0
        self._finished = False

    # ------------------------------------------------------------------

    def run(self) -> CollectionOutcome:
        """Execute the round; advances the simulator past the sink's slot."""
        simulator = self.runtime.simulator
        members = self.tree.members
        max_depth = max(self.tree.depths[m] for m in members)

        for member in members:
            self._attach(member)
            self._buffers[member] = {}
            self._partials[member] = _PartialAggregate()

        # inject each responder's own contribution at its node
        for responder, bundle in self.contributions.items():
            if responder not in members:
                continue
            self._buffers[responder].update(bundle)
            for value, __ in bundle.values():
                self._partials[responder].add_value(value)

        t0 = simulator.now
        for member in members:
            if member == self.tree.sink:
                continue
            depth = self.tree.depths[member]
            fire_at = t0 + (max_depth - depth + 1) * self.slot
            simulator.schedule_at(
                fire_at,
                partial(self._transmit_slot, member),
                label=f"tag:{self.query_id}",
            )
        # close the round one slot after the depth-1 transmissions land
        simulator.run_until(t0 + (max_depth + 2) * self.slot)
        self._finished = True
        for member in members:
            self._detach(member)

        sink = self.tree.sink
        aggregate_value = None
        if self.query.is_aggregate:
            assert self.query.aggregate is not None
            aggregate_value = self._partials[sink].answer(self.query.aggregate)
        return CollectionOutcome(
            delivered_reports=dict(self._buffers[sink]),
            aggregate_value=aggregate_value,
            transmissions=self._sent,
        )

    # ------------------------------------------------------------------

    def _transmit_slot(self, node_id: int) -> None:
        device = self.runtime.radio.node(node_id)
        if not device.alive:
            return
        parent = self.tree.parent(node_id)
        if parent is None:
            return
        if self.query.is_aggregate:
            partial = self._partials[node_id]
            if partial.count == 0 and self.query.aggregate is not Aggregate.COUNT:
                return  # nothing to report; stay silent (TAG suppression)
            sent = self.runtime.radio.unicast(
                AggregateReport(
                    sender=node_id,
                    query_id=self.query_id,
                    count=partial.count,
                    total=partial.total,
                    minimum=partial.minimum,
                    maximum=partial.maximum,
                ),
                parent,
            )
            self._sent += 1 if sent else 0
        else:
            for origin, (value, estimated) in sorted(self._buffers[node_id].items()):
                # the "estimated" flag travels with the report: it marks
                # model-produced values, not forwarded ones (snooping
                # already ignores any report whose origin != sender)
                sent = self.runtime.radio.unicast(
                    DataReport(
                        sender=node_id,
                        query_id=self.query_id,
                        origin=origin,
                        value=value,
                        estimated=estimated,
                    ),
                    parent,
                )
                self._sent += 1 if sent else 0

    def _attach(self, node_id: int) -> None:
        def handler(message: Message, overheard: bool) -> None:
            if self._finished or overheard:
                return
            if isinstance(message, AggregateReport):
                if message.query_id == self.query_id and self._is_child(
                    message.sender, node_id
                ):
                    self._partials[node_id].merge(message)
            elif isinstance(message, DataReport):
                if message.query_id == self.query_id and self._is_child(
                    message.sender, node_id
                ):
                    self._buffers[node_id][message.origin] = (
                        message.value,
                        message.estimated,
                    )

        device = self.runtime.radio.node(node_id)
        device.attach(handler)
        self._handlers[node_id] = handler

    def _is_child(self, sender: int, receiver: int) -> bool:
        return self.tree.parent(sender) == receiver

    def _detach(self, node_id: int) -> None:
        handler = self._handlers.pop(node_id, None)
        if handler is not None:
            self.runtime.radio.node(node_id).detach(handler)
