"""Parser for the paper's declarative query dialect (§3.1).

Grammar (keywords case-insensitive)::

    query     := SELECT selection FROM ident
                 [WHERE condition (AND condition)*]
                 [SAMPLE INTERVAL time FOR time]
                 [USE SNAPSHOT [WITH ERROR number]]
    selection := aggregate | ident ("," ident)*
    aggregate := (SUM | AVG | MIN | MAX | COUNT) "(" ident ")"
    condition := LOC IN region | ident cmp number
    region    := ident                      -- named, e.g. SOUTH_EAST_QUADRANT
               | RECT "(" n "," n "," n "," n ")"
               | CIRCLE "(" n "," n "," n ")"
    time      := number unit                -- "1s", "5min", "2 hours"
    cmp       := < | <= | > | >= | = | !=

The acquisitional ``SAMPLE INTERVAL 1sec FOR 5min`` syntax follows the
paper's example; glued number-unit tokens ("1sec") are handled by the
tokenizer.  The ``USE SNAPSHOT WITH ERROR t`` extension carries the
per-query threshold of §3.1.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.query.ast import Aggregate, Comparison, Query, ValuePredicate
from repro.query.spatial import Circle, Everywhere, Rect, Region, named_region

__all__ = ["parse_query", "QuerySyntaxError"]


class QuerySyntaxError(ValueError):
    """Raised when query text does not conform to the grammar."""


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?|\.\d+)
    | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<op><=|>=|!=|<>|=|<|>)
    | (?P<punct>[(),*\-])
    | (?P<ws>\s+)
    """,
    re.VERBOSE,
)

_TIME_UNITS = {
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
}

_AGGREGATES = {agg.name: agg for agg in Aggregate}

_COMPARISONS = {
    "<": Comparison.LT,
    "<=": Comparison.LE,
    ">": Comparison.GT,
    ">=": Comparison.GE,
    "=": Comparison.EQ,
    "!=": Comparison.NE,
    "<>": Comparison.NE,
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "ident" | "op" | "punct"
    text: str


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise QuerySyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        assert kind is not None
        tokens.append(_Token(kind, match.group()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- stream primitives ---------------------------------------------------

    def _peek(self) -> Optional[_Token]:
        if self._index >= len(self._tokens):
            return None
        return self._tokens[self._index]

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QuerySyntaxError("unexpected end of query")
        self._index += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "ident" and token.text.upper() == word:
            self._index += 1
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            found = self._peek()
            raise QuerySyntaxError(
                f"expected {word}, found {found.text if found else 'end of query'!r}"
            )

    def _expect_punct(self, char: str) -> None:
        token = self._next()
        if token.kind != "punct" or token.text != char:
            raise QuerySyntaxError(f"expected {char!r}, found {token.text!r}")

    def _expect_ident(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise QuerySyntaxError(f"expected identifier, found {token.text!r}")
        return token.text

    def _expect_number(self) -> float:
        token = self._next()
        sign = 1.0
        if token.kind == "punct" and token.text == "-":
            sign = -1.0
            token = self._next()
        if token.kind != "number":
            raise QuerySyntaxError(f"expected number, found {token.text!r}")
        return sign * float(token.text)

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        aggregate, aggregate_attr, select = self._selection()
        self._expect_keyword("FROM")
        self._expect_ident()  # the virtual table name (``sensors``)

        region: Region = Everywhere()
        predicate: Optional[ValuePredicate] = None
        if self._accept_keyword("WHERE"):
            region, predicate = self._conditions()

        sample_interval: Optional[float] = None
        duration: Optional[float] = None
        if self._accept_keyword("SAMPLE"):
            self._expect_keyword("INTERVAL")
            sample_interval = self._time()
            self._expect_keyword("FOR")
            duration = self._time()

        use_snapshot = False
        snapshot_threshold: Optional[float] = None
        if self._accept_keyword("USE"):
            self._expect_keyword("SNAPSHOT")
            use_snapshot = True
            if self._accept_keyword("WITH"):
                self._expect_keyword("ERROR")
                snapshot_threshold = self._expect_number()

        trailing = self._peek()
        if trailing is not None:
            raise QuerySyntaxError(f"unexpected trailing input {trailing.text!r}")

        return Query(
            select=select,
            aggregate=aggregate,
            aggregate_attribute=aggregate_attr,
            region=region,
            value_predicate=predicate,
            sample_interval=sample_interval,
            duration=duration,
            use_snapshot=use_snapshot,
            snapshot_threshold=snapshot_threshold,
        )

    def _selection(self) -> tuple[Optional[Aggregate], str, tuple[str, ...]]:
        token = self._peek()
        if (
            token is not None
            and token.kind == "ident"
            and token.text.upper() in _AGGREGATES
            and self._index + 1 < len(self._tokens)
            and self._tokens[self._index + 1].text == "("
        ):
            aggregate = _AGGREGATES[self._next().text.upper()]
            self._expect_punct("(")
            star = self._peek()
            if star is not None and star.text == "*":
                self._next()
                attribute = "value"
            else:
                attribute = self._expect_ident()
            self._expect_punct(")")
            return aggregate, attribute, ()
        # plain projection list
        names = [self._expect_ident()]
        while True:
            token = self._peek()
            if token is not None and token.kind == "punct" and token.text == ",":
                self._next()
                names.append(self._expect_ident())
            else:
                break
        return None, "value", tuple(names)

    def _conditions(self) -> tuple[Region, Optional[ValuePredicate]]:
        region: Region = Everywhere()
        predicate: Optional[ValuePredicate] = None
        while True:
            region, predicate = self._condition(region, predicate)
            if not self._accept_keyword("AND"):
                break
        return region, predicate

    def _condition(
        self, region: Region, predicate: Optional[ValuePredicate]
    ) -> tuple[Region, Optional[ValuePredicate]]:
        attribute = self._expect_ident()
        if attribute.upper() == "LOC":
            self._expect_keyword("IN")
            if not isinstance(region, Everywhere):
                raise QuerySyntaxError("only one spatial condition is supported")
            return self._region(), predicate
        token = self._next()
        if token.kind != "op":
            raise QuerySyntaxError(
                f"expected comparison after {attribute!r}, found {token.text!r}"
            )
        constant = self._expect_number()
        if predicate is not None:
            raise QuerySyntaxError("only one value predicate is supported")
        return region, ValuePredicate(attribute, _COMPARISONS[token.text], constant)

    def _region(self) -> Region:
        name = self._expect_ident()
        upper = name.upper()
        if upper == "RECT":
            self._expect_punct("(")
            values = [self._signed_number()]
            for _ in range(3):
                self._expect_punct(",")
                values.append(self._signed_number())
            self._expect_punct(")")
            return Rect(*values)
        if upper == "CIRCLE":
            self._expect_punct("(")
            cx = self._signed_number()
            self._expect_punct(",")
            cy = self._signed_number()
            self._expect_punct(",")
            radius = self._signed_number()
            self._expect_punct(")")
            return Circle(cx, cy, radius)
        return named_region(upper)

    def _signed_number(self) -> float:
        # `_expect_number` already handles an optional unary minus.
        return self._expect_number()

    def _time(self) -> float:
        value = self._expect_number()
        unit_token = self._next()
        if unit_token.kind != "ident" or unit_token.text.lower() not in _TIME_UNITS:
            raise QuerySyntaxError(
                f"expected a time unit after {value}, found {unit_token.text!r}"
            )
        return value * _TIME_UNITS[unit_token.text.lower()]


def parse_query(text: str) -> Query:
    """Parse query text into a :class:`~repro.query.ast.Query`.

    >>> q = parse_query(
    ...     "SELECT loc, temperature FROM sensors "
    ...     "WHERE loc IN SOUTH_EAST_QUADRANT "
    ...     "SAMPLE INTERVAL 1sec FOR 5min USE SNAPSHOT"
    ... )
    >>> q.use_snapshot, q.rounds
    (True, 300)
    """
    return _Parser(_tokenize(text)).parse()
