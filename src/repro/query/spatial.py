"""Spatial predicates.

Location is a first-class attribute of an unattended sensor (§3.1):
nodes are location-aware, and "for many applications like habitat
monitoring, spatial filters may be the most common predicate".  The
evaluation's Table 3 uses square range predicates
``loc in [x - W/2, x + W/2] x [y - W/2, y + W/2]`` centered at a random
point; the example query of §3.1 uses a named quadrant.

Regions are immutable predicates over ``(x, y)`` points; the parser
maps region syntax onto them and the executor evaluates them against
node locations (a representative evaluates them against the locations
of the nodes it represents, learned from their Accept messages).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Region",
    "Rect",
    "Circle",
    "Everywhere",
    "named_region",
    "NAMED_REGIONS",
    "random_square",
]


class Region(abc.ABC):
    """An immutable spatial predicate over unit-square coordinates."""

    @abc.abstractmethod
    def contains(self, x: float, y: float) -> bool:
        """Whether the point ``(x, y)`` satisfies the predicate."""

    def contains_point(self, point: tuple[float, float]) -> bool:
        """Convenience overload taking a coordinate pair."""
        return self.contains(point[0], point[1])


@dataclass(frozen=True)
class Rect(Region):
    """Axis-aligned rectangle ``[x_low, x_high] x [y_low, y_high]`` (inclusive)."""

    x_low: float
    y_low: float
    x_high: float
    y_high: float

    def __post_init__(self) -> None:
        if self.x_high < self.x_low or self.y_high < self.y_low:
            raise ValueError(
                f"degenerate rectangle: [{self.x_low}, {self.x_high}] x "
                f"[{self.y_low}, {self.y_high}]"
            )

    def contains(self, x: float, y: float) -> bool:
        return self.x_low <= x <= self.x_high and self.y_low <= y <= self.y_high

    @property
    def area(self) -> float:
        """The rectangle's area (Table 3's ``W^2`` for square queries)."""
        return (self.x_high - self.x_low) * (self.y_high - self.y_low)


@dataclass(frozen=True)
class Circle(Region):
    """Disk of ``radius`` centered at ``(cx, cy)``."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius}")

    def contains(self, x: float, y: float) -> bool:
        return math.hypot(x - self.cx, y - self.cy) <= self.radius


@dataclass(frozen=True)
class Everywhere(Region):
    """The trivial predicate matching every location."""

    def contains(self, x: float, y: float) -> bool:
        return True


#: The quadrant vocabulary of the §3.1 example query (the paper's
#: ``SHOUTH_EAST_QUANDRANT`` [sic] is accepted as an alias).
NAMED_REGIONS: dict[str, Rect] = {
    "NORTH_WEST_QUADRANT": Rect(0.0, 0.5, 0.5, 1.0),
    "NORTH_EAST_QUADRANT": Rect(0.5, 0.5, 1.0, 1.0),
    "SOUTH_WEST_QUADRANT": Rect(0.0, 0.0, 0.5, 0.5),
    "SOUTH_EAST_QUADRANT": Rect(0.5, 0.0, 1.0, 0.5),
    "SHOUTH_EAST_QUANDRANT": Rect(0.5, 0.0, 1.0, 0.5),
    "EVERYWHERE": Rect(0.0, 0.0, 1.0, 1.0),
}


def named_region(name: str) -> Rect:
    """Resolve a named region (case-insensitive).

    >>> named_region("south_east_quadrant").contains(0.9, 0.1)
    True
    """
    key = name.upper()
    try:
        return NAMED_REGIONS[key]
    except KeyError:
        raise ValueError(
            f"unknown region {name!r}; known: {sorted(NAMED_REGIONS)}"
        ) from None


def random_square(area: float, rng: np.random.Generator) -> Rect:
    """A Table 3 query region: a ``W x W`` square at a random center.

    ``area`` is ``W^2``; the center is uniform on the unit square and
    the square may extend past the unit square's edges, exactly as in
    the paper's setup.
    """
    if not 0 < area:
        raise ValueError(f"area must be positive, got {area}")
    half_side = math.sqrt(area) / 2.0
    cx, cy = rng.random(), rng.random()
    return Rect(cx - half_side, cy - half_side, cx + half_side, cy + half_side)
