"""Render a query AST back to the paper's SQL dialect.

``format_query`` is the inverse of
:func:`~repro.query.parser.parse_query` (up to whitespace and the
canonical spelling of named regions), which gives the parser a strong
round-trip property: ``parse(format(q)) == q`` for every representable
query.  It is also used by logging and the CLI to echo what actually
ran after the planner rewrote a query.
"""

from __future__ import annotations

from repro.query.ast import Query
from repro.query.spatial import Circle, Everywhere, NAMED_REGIONS, Rect, Region

__all__ = ["format_query", "format_region"]


def format_region(region: Region) -> str:
    """Region syntax; named quadrants render by their canonical name."""
    if isinstance(region, Rect):
        for name, rect in NAMED_REGIONS.items():
            if rect == region and "QUANDRANT" not in name:
                return name
        return (
            f"RECT({region.x_low:g}, {region.y_low:g}, "
            f"{region.x_high:g}, {region.y_high:g})"
        )
    if isinstance(region, Circle):
        return f"CIRCLE({region.cx:g}, {region.cy:g}, {region.radius:g})"
    if isinstance(region, Everywhere):
        raise ValueError("the everywhere region has no WHERE syntax; omit it")
    raise TypeError(f"cannot format region of type {type(region).__name__}")


def _format_time(seconds: float) -> str:
    if seconds % 3600 == 0 and seconds >= 3600:
        return f"{seconds / 3600:g} hours"
    if seconds % 60 == 0 and seconds >= 60:
        return f"{seconds / 60:g} min"
    return f"{seconds:g}s"


def format_query(query: Query) -> str:
    """Render ``query`` as parseable text.

    >>> from repro.query.parser import parse_query
    >>> text = ("SELECT SUM(value) FROM sensors "
    ...         "WHERE loc IN RECT(0, 0, 0.5, 0.5) USE SNAPSHOT")
    >>> format_query(parse_query(text)) == text
    True
    """
    parts = ["SELECT"]
    if query.is_aggregate:
        assert query.aggregate is not None
        parts.append(f"{query.aggregate.name}({query.aggregate_attribute})")
    else:
        parts.append(", ".join(query.select))
    parts.append("FROM sensors")

    conditions = []
    if not isinstance(query.region, Everywhere):
        conditions.append(f"loc IN {format_region(query.region)}")
    if query.value_predicate is not None:
        predicate = query.value_predicate
        conditions.append(
            f"{predicate.attribute} {predicate.op.value} {predicate.constant:g}"
        )
    if conditions:
        parts.append("WHERE " + " AND ".join(conditions))

    if query.sample_interval is not None and query.duration is not None:
        parts.append(
            f"SAMPLE INTERVAL {_format_time(query.sample_interval)} "
            f"FOR {_format_time(query.duration)}"
        )

    if query.use_snapshot:
        parts.append("USE SNAPSHOT")
        if query.snapshot_threshold is not None:
            parts.append(f"WITH ERROR {query.snapshot_threshold:g}")

    return " ".join(parts)
