"""Query abstract syntax.

The paper's query dialect (§3.1) is a SELECT-FROM-WHERE block over the
virtual ``sensors`` table, extended with acquisitional clauses in the
TinyDB style and the new ``USE SNAPSHOT`` directive::

    SELECT loc, temperature
    FROM sensors
    WHERE loc IN SOUTH_EAST_QUADRANT
    SAMPLE INTERVAL 1s FOR 5min
    USE SNAPSHOT

A query is either *drill-through* (plain projections: a small set of
nodes reports individual measurements) or *aggregate* (a single
``SUM``/``AVG``/``MIN``/``MAX``/``COUNT`` over the matching nodes).
``USE SNAPSHOT`` marks the query answerable by the representative set,
optionally with its own error threshold (``USE SNAPSHOT WITH ERROR t``,
the per-query-threshold extension of §3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.query.spatial import Everywhere, Region

__all__ = ["Aggregate", "Comparison", "ValuePredicate", "Query"]


class Aggregate(enum.Enum):
    """Aggregate functions of the basic query language."""

    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"
    COUNT = "count"


class Comparison(enum.Enum):
    """Comparison operators usable in value predicates."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "="
    NE = "!="

    def evaluate(self, left: float, right: float) -> bool:
        """Apply the operator."""
        if self is Comparison.LT:
            return left < right
        if self is Comparison.LE:
            return left <= right
        if self is Comparison.GT:
            return left > right
        if self is Comparison.GE:
            return left >= right
        if self is Comparison.EQ:
            return left == right
        return left != right


@dataclass(frozen=True)
class ValuePredicate:
    """A measurement filter such as ``temperature > 5``."""

    attribute: str
    op: Comparison
    constant: float

    def matches(self, value: float) -> bool:
        """Whether a measurement satisfies the predicate."""
        return self.op.evaluate(value, self.constant)


@dataclass(frozen=True)
class Query:
    """A parsed (or programmatically built) sensor-network query.

    Attributes
    ----------
    select:
        Projected attributes for drill-through queries (ignored for
        aggregates).
    aggregate:
        Aggregate function, or ``None`` for drill-through.
    aggregate_attribute:
        The attribute under the aggregate (e.g. ``temperature``).
    region:
        Spatial predicate; defaults to everywhere.
    value_predicate:
        Optional measurement filter.
    sample_interval:
        Seconds between samples (``SAMPLE INTERVAL``); ``None`` means a
        one-shot query.
    duration:
        Total sampling time in seconds (``FOR``); ``None`` means one round.
    use_snapshot:
        Whether the representative set may answer (``USE SNAPSHOT``).
    snapshot_threshold:
        Optional per-query error threshold (``WITH ERROR t``).
    """

    select: tuple[str, ...] = ("loc", "value")
    aggregate: Optional[Aggregate] = None
    aggregate_attribute: str = "value"
    region: Region = field(default_factory=Everywhere)
    value_predicate: Optional[ValuePredicate] = None
    sample_interval: Optional[float] = None
    duration: Optional[float] = None
    use_snapshot: bool = False
    snapshot_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ValueError(
                f"sample interval must be positive, got {self.sample_interval}"
            )
        if self.duration is not None and self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.snapshot_threshold is not None:
            if not self.use_snapshot:
                raise ValueError("snapshot_threshold requires use_snapshot")
            if self.snapshot_threshold <= 0:
                raise ValueError(
                    f"snapshot threshold must be positive, got {self.snapshot_threshold}"
                )

    @property
    def is_aggregate(self) -> bool:
        """Whether this is an aggregate (vs drill-through) query."""
        return self.aggregate is not None

    @property
    def rounds(self) -> int:
        """Number of sampling rounds implied by the acquisition clauses."""
        if self.sample_interval is None or self.duration is None:
            return 1
        return max(1, int(self.duration / self.sample_interval))
