"""Query execution: regular vs snapshot (§3.1 and §6.2).

The executor runs one query against a :class:`~repro.core.SnapshotRuntime`:

* **regular** — every alive node matching the predicates responds; the
  answer flows up a TAG aggregation tree; routing nodes forward it;
* **snapshot** (``USE SNAPSHOT``) — only representatives respond: a
  node provides measurements when "(i) it is not represented and
  satisfies the spatial predicate of the query or (ii) it represents
  another node N_j satisfying the spatial predicate" (§3.1).
  Representatives answer for their members with model estimates and
  evaluate the spatial predicate against the member locations learned
  from the Accept messages.

Participation accounting matches Table 3: a query's participants are
its responders plus the routing nodes on their tree paths (the paper:
"a non-representative node may still be used for routing the aggregate
and this is included in the numbers shown").  Each participant is
charged one transmission per sampling round — the TAG cost model, and
exactly the per-query energy drain of Figure 10's setup.  Responder
reports are sent as real radio messages, so neighbors can snoop them to
fine-tune their models (the 5% snooping of §6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.network.messages import AggregateReport, DataReport
from repro.query.aggregation_tree import AggregationTree
from repro.query.ast import Aggregate, Query

__all__ = ["QueryExecutor", "QueryResult"]

#: Buckets of the ``query.coverage`` histogram (coverage is in [0, 1]).
COVERAGE_BUCKETS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

#: Buckets of the ``query.participants`` histogram (Table 3 counts).
PARTICIPANT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one query execution.

    Attributes
    ----------
    query:
        The executed query.
    sink:
        The node the answer was collected at.
    responders:
        Nodes that produced measurements (their own or their members').
    routers:
        Non-responding nodes that forwarded data toward the sink.
    reports:
        ``origin -> (value, estimated)`` — one entry per node whose
        measurement reached the sink; ``estimated`` marks values a
        representative produced from its model.
    matching_all:
        Nodes (alive or dead) whose ground truth satisfies the query —
        the infinite-battery reference of Figure 10's coverage metric.
    matching_alive:
        The alive subset of ``matching_all``.
    aggregate_value:
        The aggregate answer, or ``None`` for drill-through queries.
    rounds:
        Sampling rounds executed.
    """

    query: Query
    sink: int
    responders: frozenset[int]
    routers: frozenset[int]
    reports: dict[int, tuple[float, bool]]
    matching_all: frozenset[int]
    matching_alive: frozenset[int]
    aggregate_value: Optional[float]
    rounds: int = 1

    @property
    def participants(self) -> frozenset[int]:
        """Responders plus routers — Table 3's per-query node count."""
        return self.responders | self.routers

    @property
    def n_participants(self) -> int:
        """Number of distinct nodes the query touched."""
        return len(self.participants)

    def coverage(self) -> float:
        """Reported matching nodes over all matching nodes (Figure 10).

        A query matching nothing has perfect coverage by convention.
        """
        if not self.matching_all:
            return 1.0
        answered = sum(1 for origin in self.reports if origin in self.matching_all)
        return answered / len(self.matching_all)


class QueryExecutor:
    """Executes queries against a snapshot runtime.

    Parameters
    ----------
    runtime:
        The assembled network.
    prefer_representative_routing:
        Route aggregation trees through representatives when possible
        (the §3.1 routing optimization; off reproduces Table 3's
        "vanilla method").
    """

    def __init__(
        self,
        runtime: SnapshotRuntime,
        prefer_representative_routing: bool = False,
    ) -> None:
        self.runtime = runtime
        self.prefer_representative_routing = prefer_representative_routing
        self._rng = runtime.simulator.random.stream("query")
        self._query_counter = 0
        metrics = runtime.simulator.metrics
        self._executed = metrics.counter("query.executed", labels=("snapshot",))
        self._estimates = metrics.counter("cache.estimate", labels=("outcome",))
        self._coverage_hist = metrics.histogram("query.coverage", COVERAGE_BUCKETS)
        self._participants_hist = metrics.histogram(
            "query.participants", PARTICIPANT_BUCKETS
        )

    # ------------------------------------------------------------------

    def execute(
        self,
        query: Query,
        sink: Optional[int] = None,
        rounds: Optional[int] = None,
        charge_energy: bool = True,
        messaged: bool = False,
        tree: Optional[AggregationTree] = None,
    ) -> QueryResult:
        """Run ``query`` once and return its result.

        Parameters
        ----------
        query:
            The query; ``query.use_snapshot`` selects the execution mode.
        sink:
            Collecting node; a random alive node if omitted (the §6.2
            setup).
        rounds:
            Overrides the sampling rounds implied by the query's
            acquisition clauses.
        charge_energy:
            Whether participants transmit real (energy-charged,
            snoopable) radio messages; disable for pure what-if counts.
        messaged:
            Fully message-driven collection: the answer is assembled at
            the sink from an epoch-slotted TAG round of real radio
            messages (see :mod:`repro.query.collection`), so message
            loss and mid-round deaths remove data from the answer.
            Identical to the default central computation on a lossless
            radio.  Implies ``charge_energy``.
        tree:
            A pre-built aggregation tree rooted at ``sink`` to reuse
            instead of flooding a fresh one — the serving front-end
            shares one tree across in-flight queries with the same
            sink (the flood, and its RNG draws, happen once per
            batch).  Must be rooted at the effective sink.
        """
        runtime = self.runtime
        alive = set(runtime.alive_ids())
        if not alive:
            raise RuntimeError("no alive node can act as sink")
        if sink is None:
            if tree is not None:
                sink = tree.sink
                if sink not in alive:
                    raise ValueError(f"tree sink {sink} is not alive")
            else:
                sink = int(sorted(alive)[self._rng.integers(0, len(alive))])
        elif sink not in alive:
            raise ValueError(f"sink {sink} is not alive")
        if tree is not None and tree.sink != sink:
            raise ValueError(
                f"prebuilt tree is rooted at {tree.sink}, not at sink {sink}"
            )
        self._check_threshold_reuse(query)
        self._query_counter += 1
        query_id = self._query_counter
        n_rounds = query.rounds if rounds is None else rounds
        if n_rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {n_rounds}")

        with runtime.simulator.spans.span(
            "query", query_id=query_id, snapshot=query.use_snapshot
        ):
            matching_all = frozenset(
                self._matching_nodes(query, runtime.topology.node_ids)
            )
            matching_alive = frozenset(node for node in matching_all if node in alive)

            if tree is None:
                tree = self.build_tree(sink, alive, use_snapshot=query.use_snapshot)

            if query.use_snapshot:
                bundles = self._snapshot_bundles(query, tree)
            else:
                bundles = self._regular_bundles(query, matching_alive, tree)
            responders = set(bundles)
            reports: dict[int, tuple[float, bool]] = {}
            for responder in sorted(bundles):
                reports.update(bundles[responder])
            routers = tree.routers_for(responders)

            if messaged:
                reports, aggregate_value = self._collect_messaged(
                    query, query_id, bundles, tree, n_rounds
                )
            else:
                if charge_energy:
                    self._transmit(
                        query, query_id, sink, responders, routers, reports,
                        tree, n_rounds,
                    )
                aggregate_value = None
                if query.is_aggregate:
                    aggregate_value = self._aggregate(query.aggregate, reports)

            result = QueryResult(
                query=query,
                sink=sink,
                responders=frozenset(responders),
                routers=routers,
                reports=reports,
                matching_all=matching_all,
                matching_alive=matching_alive,
                aggregate_value=aggregate_value,
                rounds=n_rounds,
            )
        self._executed.inc(query.use_snapshot)
        self._coverage_hist.observe(result.coverage())
        self._participants_hist.observe(result.n_participants)
        runtime.simulator.trace.emit(
            runtime.simulator.now, "query.executed",
            query_id=query_id, snapshot=query.use_snapshot,
            participants=result.n_participants, coverage=result.coverage(),
        )
        return result

    def build_tree(
        self,
        sink: int,
        alive: Optional[set[int]] = None,
        use_snapshot: bool = False,
    ) -> AggregationTree:
        """Flood one aggregation tree rooted at ``sink``.

        Factored out of :meth:`execute` so the serving front-end can
        build the tree once per batch of same-sink queries and pass it
        back through ``execute(tree=...)``.
        """
        runtime = self.runtime
        if alive is None:
            alive = set(runtime.alive_ids())
        prefer: frozenset[int] = frozenset()
        if use_snapshot and self.prefer_representative_routing:
            prefer = frozenset(
                node_id
                for node_id, node in runtime.nodes.items()
                if node.mode is not NodeMode.PASSIVE and node.alive
            )
        return AggregationTree.build(
            runtime.topology,
            sink,
            alive,
            self._rng,
            loss_model=runtime.radio.loss_model,
            prefer=prefer,
        )

    # ------------------------------------------------------------------
    # responder selection
    # ------------------------------------------------------------------

    def _matching_nodes(self, query: Query, node_ids) -> list[int]:
        """Ground truth: nodes whose location and value satisfy the query."""
        runtime = self.runtime
        matches = []
        for node_id in node_ids:
            x, y = runtime.topology.position(node_id)
            if not query.region.contains(x, y):
                continue
            if query.value_predicate is not None and not query.value_predicate.matches(
                runtime.value_of(node_id)
            ):
                continue
            matches.append(node_id)
        return matches

    def _regular_bundles(
        self, query: Query, matching_alive: frozenset[int], tree: AggregationTree
    ) -> dict[int, dict[int, tuple[float, bool]]]:
        """Regular execution: every matching alive node reports itself."""
        return {
            node: {node: (self.runtime.value_of(node), False)}
            for node in sorted(matching_alive)
            if node in tree.members
        }

    def _snapshot_bundles(
        self, query: Query, tree: AggregationTree
    ) -> dict[int, dict[int, tuple[float, bool]]]:
        """Snapshot execution (§3.1): representatives answer for their sets.

        Returns each responder's bundle — its own matching reading plus
        model estimates for its matching members.
        """
        runtime = self.runtime
        bundles: dict[int, dict[int, tuple[float, bool]]] = {}
        for node_id in sorted(runtime.nodes):
            node = runtime.nodes[node_id]
            if not node.alive or node_id not in tree.members:
                continue
            # PASSIVE nodes do not respond to snapshot queries (§5);
            # UNDEFINED nodes (mid-re-election) conservatively answer
            # for themselves.
            if node.mode is NodeMode.PASSIVE:
                continue
            bundle: dict[int, tuple[float, bool]] = {}
            x, y = node.location
            if query.region.contains(x, y):
                own_value = node.value_fn()
                if query.value_predicate is None or query.value_predicate.matches(
                    own_value
                ):
                    bundle[node_id] = (own_value, False)
            if node.mode is NodeMode.ACTIVE:
                for member_id in sorted(node.represented):
                    location = node.member_location(member_id)
                    if location is None or not query.region.contains(*location):
                        continue
                    estimate = node.estimate_for(member_id)
                    if estimate is None:
                        self._estimates.inc("miss")
                        continue
                    self._estimates.inc("hit")
                    if (
                        query.value_predicate is not None
                        and not query.value_predicate.matches(estimate)
                    ):
                        continue
                    bundle[member_id] = (estimate, True)
            if bundle:
                bundles[node_id] = bundle
        return bundles

    def _collect_messaged(
        self,
        query: Query,
        query_id: int,
        bundles: dict[int, dict[int, tuple[float, bool]]],
        tree: AggregationTree,
        n_rounds: int,
    ) -> tuple[dict[int, tuple[float, bool]], Optional[float]]:
        """Run ``n_rounds`` epoch-slotted TAG rounds of real messages.

        Returns the reports that reached the sink in the *last* round
        and the aggregate assembled from its delivered partials.
        """
        from repro.query.collection import TagCollection

        delivered: dict[int, tuple[float, bool]] = {}
        aggregate_value: Optional[float] = None
        for _ in range(n_rounds):
            outcome = TagCollection(
                self.runtime, tree, query, query_id, bundles
            ).run()
            delivered = outcome.delivered_reports
            aggregate_value = outcome.aggregate_value
        for responder in bundles:
            node = self.runtime.nodes.get(responder)
            if node is not None and node.alive:
                node.check_energy()
        return delivered, aggregate_value

    # ------------------------------------------------------------------
    # transmission + aggregation
    # ------------------------------------------------------------------

    def _transmit(
        self,
        query: Query,
        query_id: int,
        sink: int,
        responders: set[int],
        routers: frozenset[int],
        reports: dict[int, tuple[float, bool]],
        tree: AggregationTree,
        n_rounds: int,
    ) -> None:
        """Charge the radio cost of collecting the answers at the sink.

        *Aggregate* queries use the TAG cost model: one partial
        aggregate per participant per round — routers merge what they
        forward (§6.2's Table 3 setup).

        *Drill-through* queries cannot merge: each responder's report
        bundle is forwarded hop-by-hop along its tree path, so the cost
        of a responder is ``1 + hops`` transmissions per round.  This
        is what makes regular drill-through execution expensive and
        snapshot execution (a couple of representative bundles) cheap —
        the Figure 10 economics.

        Only the first transmission of a node's *own* raw measurement
        is snoopable; forwarded and estimated reports carry someone
        else's data and are ignored by the model layer.
        """
        radio = self.runtime.radio
        own_reports = {
            origin: value
            for origin, (value, estimated) in reports.items()
            if not estimated
        }

        def responder_message(responder: int) -> DataReport:
            value = own_reports.get(responder)
            if value is None:
                # The responder only carries member estimates; the
                # bundle is flagged estimated so nobody models it.
                return DataReport(
                    sender=responder,
                    query_id=query_id,
                    origin=responder,
                    value=0.0,
                    estimated=True,
                )
            return DataReport(
                sender=responder, query_id=query_id, origin=responder, value=value
            )

        for _ in range(n_rounds):
            if query.is_aggregate:
                for responder in sorted(responders):
                    parent = tree.parent(responder)
                    if responder == sink or parent is None:
                        continue
                    radio.unicast(responder_message(responder), parent)
                for router in sorted(routers):
                    parent = tree.parent(router)
                    if router == sink or parent is None:
                        continue
                    radio.unicast(
                        AggregateReport(
                            sender=router,
                            query_id=query_id,
                            count=0,
                            total=0.0,
                            minimum=0.0,
                            maximum=0.0,
                        ),
                        parent,
                    )
            else:
                for responder in sorted(responders):
                    if responder == sink or tree.parent(responder) is None:
                        continue
                    path = tree.path_to_sink(responder)
                    radio.unicast(responder_message(responder), path[1])
                    # every intermediate hop forwards this bundle once
                    for index, hop in enumerate(path[1:-1], start=1):
                        radio.unicast(
                            DataReport(
                                sender=hop,
                                query_id=query_id,
                                origin=responder,
                                value=own_reports.get(responder, 0.0),
                                estimated=responder not in own_reports,
                            ),
                            path[index + 1],
                        )
        # A node knows its own battery after transmitting: give the
        # responding representatives the chance to run the §5.1
        # energy hand-off *before* they silently die mid-round.
        for responder in responders:
            node = self.runtime.nodes.get(responder)
            if node is not None and node.alive:
                node.check_energy()

    @staticmethod
    def _aggregate(
        aggregate: Optional[Aggregate], reports: dict[int, tuple[float, bool]]
    ) -> Optional[float]:
        if aggregate is None:
            return None
        values = [value for value, _ in reports.values()]
        if aggregate is Aggregate.COUNT:
            return float(len(values))
        if not values:
            return None
        if aggregate is Aggregate.SUM:
            return float(sum(values))
        if aggregate is Aggregate.AVG:
            return float(sum(values) / len(values))
        if aggregate is Aggregate.MIN:
            return float(min(values))
        return float(max(values))

    # ------------------------------------------------------------------

    def _check_threshold_reuse(self, query: Query) -> None:
        """Enforce the §3.1 reuse rule for per-query thresholds.

        The current snapshot was elected at the runtime's threshold
        ``T``; it can serve any query with threshold ``>= T`` but not a
        tighter one — that query needs its own election (or a
        :class:`~repro.core.MultiResolutionSnapshot`).
        """
        if not query.use_snapshot or query.snapshot_threshold is None:
            return
        if query.snapshot_threshold < self.runtime.config.threshold:
            raise ValueError(
                f"query threshold {query.snapshot_threshold} is tighter than "
                f"the snapshot's election threshold "
                f"{self.runtime.config.threshold}; re-elect at the tighter "
                f"threshold or use MultiResolutionSnapshot"
            )
