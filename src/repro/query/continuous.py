"""Continuous queries running over simulated time (§3.1).

The paper's running example is a *continuous* query — sample every
second for five minutes — and the whole §3.1 argument is about
long-running queries amortizing one election over many cheap snapshot
rounds ("this is a reasonable startup cost considering the savings for
a long-running (continuous) query when executed through the snapshot").

:class:`ContinuousQuery` schedules one execution round per sampling
interval on the simulator, so the rounds interleave with maintenance,
node deaths and re-elections — unlike
:meth:`~repro.query.executor.QueryExecutor.execute`, which charges all
rounds at a single instant.  Results accumulate per epoch:

>>> # handle = ContinuousQuery(executor, query).start()
>>> # runtime.advance_to(...); handle.results -> [QueryResult, ...]

Each round re-selects responders against the *current* protocol state,
so a representative elected mid-query takes over seamlessly, and the
epoch stream shows coverage dips/recoveries around failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.query.ast import Query
from repro.query.executor import QueryExecutor, QueryResult

__all__ = ["ContinuousQuery", "EpochRecord"]


@dataclass(frozen=True)
class EpochRecord:
    """One sampling epoch of a continuous query."""

    epoch: int
    time: float
    result: QueryResult

    @property
    def coverage(self) -> float:
        """Coverage of this epoch's round."""
        return self.result.coverage()


class ContinuousQuery:
    """A query sampled once per interval over simulated time.

    Parameters
    ----------
    executor:
        The query executor to run rounds through.
    query:
        Must carry acquisition clauses (``sample_interval`` and
        ``duration``), as in ``SAMPLE INTERVAL 1sec FOR 5min``.
    sink:
        Fixed collecting node; chosen randomly per round if omitted.
    on_epoch:
        Optional callback invoked with each :class:`EpochRecord`.
    """

    def __init__(
        self,
        executor: QueryExecutor,
        query: Query,
        sink: Optional[int] = None,
        on_epoch: Optional[Callable[[EpochRecord], None]] = None,
    ) -> None:
        if query.sample_interval is None or query.duration is None:
            raise ValueError(
                "a continuous query needs SAMPLE INTERVAL and FOR clauses"
            )
        self.executor = executor
        self.query = query
        self.sink = sink
        self.on_epoch = on_epoch
        self.records: list[EpochRecord] = []
        self._epoch = 0
        self._task = None
        self._started = False

    @property
    def runtime(self):
        """The underlying snapshot runtime."""
        return self.executor.runtime

    @property
    def total_epochs(self) -> int:
        """Number of sampling rounds the acquisition clauses imply."""
        return self.query.rounds

    @property
    def finished(self) -> bool:
        """Whether every epoch has run (or the query was stopped)."""
        return self._started and (self._task is None or self._task.stopped)

    def start(self) -> "ContinuousQuery":
        """Begin sampling; the first epoch fires one interval from now."""
        if self._started:
            raise RuntimeError("continuous query already started")
        self._started = True
        self._task = self.runtime.simulator.every(
            self.query.sample_interval,
            self._sample,
            label="continuous-query",
        )
        return self

    def stop(self) -> None:
        """Cancel remaining epochs."""
        if self._task is not None:
            self._task.stop()

    def _sample(self) -> None:
        self._epoch += 1
        sink = self.sink
        if sink is not None:
            device = self.runtime.radio.nodes.get(sink)
            if device is None or not device.alive:
                # The pinned collection point died mid-query; degrade to
                # a per-epoch random alive sink instead of crashing the
                # simulation out of the executor's sink validation.
                sink = None
        try:
            result = self.executor.execute(self.query, sink=sink, rounds=1)
        except RuntimeError:
            # the network died mid-query
            self.stop()
            return
        record = EpochRecord(
            epoch=self._epoch, time=self.runtime.simulator.now, result=result
        )
        self.records.append(record)
        if self.on_epoch is not None:
            self.on_epoch(record)
        if self._epoch >= self.total_epochs:
            self.stop()

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    @property
    def results(self) -> list[QueryResult]:
        """Per-epoch results in order."""
        return [record.result for record in self.records]

    def mean_coverage(self) -> float:
        """Average coverage across the epochs run so far."""
        if not self.records:
            return 0.0
        return sum(record.coverage for record in self.records) / len(self.records)

    def mean_participants(self) -> float:
        """Average per-epoch participant count — the §3.1 savings lever."""
        if not self.records:
            return 0.0
        return sum(
            record.result.n_participants for record in self.records
        ) / len(self.records)

    def aggregate_series(self) -> list[Optional[float]]:
        """The aggregate answer per epoch (``None`` for drill-through)."""
        return [record.result.aggregate_value for record in self.records]
