"""Query engine: the paper's SQL dialect, TAG trees, and snapshot execution.

Parses SELECT-FROM-WHERE queries with acquisition clauses and the
``USE SNAPSHOT`` directive (§3.1), builds TAG-style aggregation trees
by simulated flooding (§6.2), and executes queries in regular or
snapshot mode with the paper's participation and energy accounting.
"""

from repro.query.aggregation_tree import AggregationTree
from repro.query.ast import Aggregate, Comparison, Query, ValuePredicate
from repro.query.collection import CollectionOutcome, TagCollection
from repro.query.continuous import ContinuousQuery, EpochRecord
from repro.query.coverage import CoverageSeries
from repro.query.executor import QueryExecutor, QueryResult
from repro.query.formatting import format_query, format_region
from repro.query.parser import QuerySyntaxError, parse_query
from repro.query.planner import QueryPlan, QueryPlanner
from repro.query.spatial import (
    NAMED_REGIONS,
    Circle,
    Everywhere,
    Rect,
    Region,
    named_region,
    random_square,
)

__all__ = [
    "Aggregate",
    "AggregationTree",
    "Circle",
    "CollectionOutcome",
    "Comparison",
    "ContinuousQuery",
    "CoverageSeries",
    "EpochRecord",
    "Everywhere",
    "NAMED_REGIONS",
    "Query",
    "QueryExecutor",
    "QueryPlan",
    "QueryPlanner",
    "QueryResult",
    "QuerySyntaxError",
    "Rect",
    "Region",
    "TagCollection",
    "ValuePredicate",
    "format_query",
    "format_region",
    "named_region",
    "parse_query",
    "random_square",
]
