"""Network-wide energy ledger.

Figure 10 characterizes energy consumption over time under regular vs
snapshot queries.  :class:`EnergyLedger` aggregates per-node draws by
activity category (``transmit``, ``receive``, ``cpu``) so experiments
can report not just *who died when*, but *where the energy went* —
the background cost of snapshot maintenance vs the per-query drain.
"""

from __future__ import annotations

from collections import Counter, defaultdict

__all__ = ["EnergyLedger"]


class EnergyLedger:
    """Accumulates energy draws per node and per activity category."""

    CATEGORIES = ("transmit", "receive", "cpu")

    def __init__(self) -> None:
        self._per_node: defaultdict[int, Counter[str]] = defaultdict(Counter)
        self._totals: Counter[str] = Counter()

    def record(self, node_id: int, category: str, amount: float) -> None:
        """Charge ``amount`` against ``node_id`` under ``category``."""
        if category not in self.CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {self.CATEGORIES}"
            )
        if amount < 0:
            raise ValueError(f"cannot record negative energy {amount}")
        self._per_node[node_id][category] += amount
        self._totals[category] += amount

    def node_total(self, node_id: int) -> float:
        """Total energy drawn by ``node_id`` across all categories."""
        return sum(self._per_node[node_id].values())

    def node_breakdown(self, node_id: int) -> dict[str, float]:
        """Energy drawn by ``node_id``, by category."""
        counts = self._per_node[node_id]
        return {category: counts.get(category, 0.0) for category in self.CATEGORIES}

    def total(self, category: str | None = None) -> float:
        """Network-wide energy drawn, optionally for one category."""
        if category is None:
            return sum(self._totals.values())
        if category not in self.CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {self.CATEGORIES}"
            )
        return self._totals.get(category, 0.0)

    def top_consumers(self, k: int = 5) -> list[tuple[int, float]]:
        """The ``k`` nodes that drew the most energy, descending."""
        ranked = sorted(
            ((node, sum(counts.values())) for node, counts in self._per_node.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:k]

    def clear(self) -> None:
        """Reset the ledger."""
        self._per_node.clear()
        self._totals.clear()
