"""Network-wide energy ledger.

Figure 10 characterizes energy consumption over time under regular vs
snapshot queries.  :class:`EnergyLedger` aggregates per-node draws by
activity category (``transmit``, ``receive``, ``cpu``) so experiments
can report not just *who died when*, but *where the energy went* —
the background cost of snapshot maintenance vs the per-query drain.

When constructed with a :class:`~repro.obs.registry.MetricsRegistry`,
the ledger stores its cells in the registry's ``energy.draw`` counter
(labels ``node``/``category``, essential since battery-capacity runs
read draws back through radio accounting), so run reports export the
exact numbers the ledger reads.
"""

from __future__ import annotations

from collections import Counter

__all__ = ["EnergyLedger"]


class EnergyLedger:
    """Accumulates energy draws per node and per activity category."""

    CATEGORIES = ("transmit", "receive", "cpu")

    def __init__(self, registry=None) -> None:
        if registry is None:
            self._cells: Counter[tuple[int, str]] = Counter()
        else:
            self._cells = registry.counter(
                "energy.draw", labels=("node", "category"), essential=True
            ).cells
        self._totals: Counter[str] = Counter()

    def record(self, node_id: int, category: str, amount: float) -> None:
        """Charge ``amount`` against ``node_id`` under ``category``."""
        if category not in self.CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {self.CATEGORIES}"
            )
        if amount < 0:
            raise ValueError(f"cannot record negative energy {amount}")
        self._cells[(node_id, category)] += amount
        self._totals[category] += amount

    def node_total(self, node_id: int) -> float:
        """Total energy drawn by ``node_id`` across all categories."""
        return sum(
            self._cells.get((node_id, category), 0.0)
            for category in self.CATEGORIES
        )

    def node_breakdown(self, node_id: int) -> dict[str, float]:
        """Energy drawn by ``node_id``, by category."""
        return {
            category: self._cells.get((node_id, category), 0.0)
            for category in self.CATEGORIES
        }

    def total(self, category: str | None = None) -> float:
        """Network-wide energy drawn, optionally for one category."""
        if category is None:
            return sum(self._totals.values())
        if category not in self.CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; expected one of {self.CATEGORIES}"
            )
        return self._totals.get(category, 0.0)

    def top_consumers(self, k: int = 5) -> list[tuple[int, float]]:
        """The ``k`` nodes that drew the most energy, descending."""
        per_node: Counter[int] = Counter()
        for (node, _), amount in self._cells.items():
            per_node[node] += amount
        ranked = sorted(per_node.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:k]

    def clear(self) -> None:
        """Reset the ledger."""
        self._cells.clear()
        self._totals.clear()
