"""Energy cost model.

The paper's §6.2 accounting is simple and explicit:

* the unit of energy is *the cost of one transmission*;
* initial battery capacity is 500 transmissions;
* running the cache-maintenance algorithm once costs one tenth of a
  transmission ("probably an overestimate" — on Mica motes sending one
  bit costs as much as 1,000 CPU operations);
* reception cost is not charged in the paper's runs, so it defaults to
  zero but is configurable for sensitivity studies.

:class:`EnergyCostModel` is a frozen value object shared by the radio
(per transmission / reception) and the cache manager (per maintenance
invocation).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnergyCostModel", "PAPER_COST_MODEL"]


@dataclass(frozen=True)
class EnergyCostModel:
    """Energy prices in units of one transmission.

    Attributes
    ----------
    transmit:
        Cost of sending one message (the unit; 1.0 in the paper).
    receive:
        Cost of receiving one message (0 in the paper's accounting).
    cpu_cache_update:
        Cost of one run of the cache-maintenance algorithm (0.1 in §6.2).
    """

    transmit: float = 1.0
    receive: float = 0.0
    cpu_cache_update: float = 0.1

    def __post_init__(self) -> None:
        for name in ("transmit", "receive", "cpu_cache_update"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} cost must be non-negative, got {value}")


#: The exact accounting used in Figure 10 of the paper.
PAPER_COST_MODEL = EnergyCostModel(transmit=1.0, receive=0.0, cpu_cache_update=0.1)
