"""Battery model.

A battery holds a scalar charge measured in transmission-cost units
(§6.2 sets the initial capacity to the cost of 500 transmissions).
Charge never goes negative — the final draw is clamped — and once
depleted the battery stays dead: sensor batteries in the paper's
setting are never replaced ("nodes are powered by small batteries and
replacing them is not an option", §1).

An infinite battery (``capacity=None``) is used for the idealized
"infinite battery" reference runs that define the coverage metric of
Figure 10.
"""

from __future__ import annotations

from typing import Callable, Optional

__all__ = ["Battery"]


class Battery:
    """A finite (or infinite) energy reserve.

    Parameters
    ----------
    capacity:
        Initial charge in transmission units, or ``None`` for an
        inexhaustible battery.
    on_depleted:
        Optional callback invoked exactly once, at the moment the charge
        reaches zero.
    """

    def __init__(
        self,
        capacity: Optional[float] = None,
        on_depleted: Optional[Callable[[], None]] = None,
    ) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError(f"battery capacity must be non-negative, got {capacity}")
        self._capacity = capacity
        self._charge = capacity
        self._on_depleted = on_depleted
        self._spent = 0.0
        if capacity == 0 and on_depleted is not None:
            on_depleted()

    @property
    def infinite(self) -> bool:
        """Whether this battery never depletes."""
        return self._capacity is None

    @property
    def capacity(self) -> Optional[float]:
        """Initial charge, or ``None`` if infinite."""
        return self._capacity

    @property
    def charge(self) -> Optional[float]:
        """Remaining charge, or ``None`` if infinite."""
        return self._charge

    @property
    def spent(self) -> float:
        """Total energy drawn so far (tracked even for infinite batteries)."""
        return self._spent

    @property
    def depleted(self) -> bool:
        """Whether the battery has run out."""
        return self._charge is not None and self._charge <= 0.0

    @property
    def fraction_remaining(self) -> float:
        """Remaining charge as a fraction of capacity (1.0 if infinite)."""
        if self._capacity is None:
            return 1.0
        if self._capacity == 0:
            return 0.0
        assert self._charge is not None
        return max(0.0, self._charge / self._capacity)

    def draw(self, amount: float) -> float:
        """Consume ``amount`` energy; returns what was actually drawn.

        Drawing from a depleted battery is a no-op returning 0.  A draw
        that exceeds the remaining charge is clamped, and the depletion
        callback fires once.
        """
        if amount < 0:
            raise ValueError(f"cannot draw negative energy {amount}")
        if self._charge is None:
            self._spent += amount
            return amount
        if self._charge <= 0.0:
            return 0.0
        drawn = min(amount, self._charge)
        self._charge -= drawn
        self._spent += drawn
        if self._charge <= 0.0:
            self._charge = 0.0
            if self._on_depleted is not None:
                callback, self._on_depleted = self._on_depleted, None
                callback()
        return drawn

    def can_afford(self, amount: float) -> bool:
        """Whether the remaining charge covers ``amount``."""
        if self._charge is None:
            return True
        return self._charge >= amount

    def __repr__(self) -> str:
        if self._capacity is None:
            return f"Battery(infinite, spent={self._spent:.1f})"
        return f"Battery(charge={self._charge:.1f}/{self._capacity:.1f})"
