"""Energy substrate: batteries, cost model, and network-wide accounting.

Implements the accounting of the paper's §6.2 lifetime experiment
(Figure 10): batteries sized in transmission units, a cost model where
one cache-maintenance run costs a tenth of a transmission, and a ledger
attributing every joule to a node and an activity.
"""

from repro.energy.accounting import EnergyLedger
from repro.energy.battery import Battery
from repro.energy.costs import PAPER_COST_MODEL, EnergyCostModel

__all__ = ["Battery", "EnergyCostModel", "EnergyLedger", "PAPER_COST_MODEL"]
