"""Protocol invariants checked against a live runtime.

The paper never states its safety properties explicitly, but they are
implicit in the design and measurable in the figures; the
:class:`InvariantChecker` turns them into executable assertions that
hold at *quiescence points* — instants where no election round or
maintenance burst is in flight:

* **Settled modes** — every alive node is ACTIVE or PASSIVE; UNDEFINED
  is a transient election state only (Figure 5's fixpoint terminates).
* **Live representation** — every alive PASSIVE node names a
  representative that is alive and radio-reachable in both directions
  (§5.1's heartbeats guarantee detection of dead or out-of-range
  representatives); in strict mode the representative also claims the
  member back, so queries route the member's value (§3.1).
* **Unique claims** — no node is simultaneously claimed by two alive
  representatives (§3's "spurious representative" arbitration plus
  timestamp expiry converge on one owner).
* **Epoch monotonicity** — a node's election epoch never decreases
  (epochs order snapshot generations; a regression would let stale
  CandidateLists win arbitration).
* **No stale scratch flags** — ``_awaiting_offers``, ``_resigning`` and
  ``_await_reply`` are bounded-duration windows (reply window, one
  heartbeat period, heartbeat timeout); any still set at quiescence is
  a leaked flag that would mute the node or double-fire a re-election.
* **Table 2 message bound** — during one *global* election epoch, no
  node sends more than ``message_bound`` protocol messages (the paper's
  five, plus one maintenance-overlap allowance, per Table 2's "total
  5/6" column).  Checked automatically ``settle_delay`` after every
  ``election.started`` trace record.

Violations accumulate on the checker and raise :class:`InvariantError`
(an ``AssertionError`` subclass, so plain ``pytest`` reporting applies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Optional

from repro.core.status import NodeMode
from repro.simulation.tracing import TraceRecord, TraceSubscription

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle guard
    from repro.core.runtime import SnapshotRuntime

__all__ = ["InvariantViolation", "InvariantError", "InvariantChecker"]


@dataclass(frozen=True)
class InvariantViolation:
    """One invariant breach, with enough context to debug the schedule."""

    time: float
    invariant: str
    detail: str
    node: Optional[int] = None

    def __str__(self) -> str:
        where = f" node={self.node}" if self.node is not None else ""
        return f"[t={self.time:.3f}] {self.invariant}{where}: {self.detail}"


class InvariantError(AssertionError):
    """Raised when a quiescence check finds violations."""

    def __init__(self, violations: list[InvariantViolation]) -> None:
        self.violations = list(violations)
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} protocol invariant violation(s):\n{lines}"
        )


@dataclass
class _EpochWindow:
    """One global election epoch's message-accounting window."""

    epoch: int
    started_at: float
    mark: dict = field(default_factory=dict)


class InvariantChecker:
    """Watches a runtime's trace stream and asserts protocol invariants.

    Parameters
    ----------
    runtime:
        The snapshot runtime under test.
    message_bound:
        Per-node protocol-message cap for one global election epoch
        (Table 2's six: invitation, candidate list, accept, and at most
        two refinement messages, plus one heartbeat-pair allowance).
    strict_claims:
        When true, a PASSIVE node's representative must also claim the
        member back in ``represented``.  Keep strict on lossless runs;
        relax under message loss, where a lost Accept legitimately
        leaves a one-sided pointer until the next heartbeat repairs it.
    auto_raise:
        When true (default), :meth:`check` raises on violations;
        otherwise it only records and returns them.
    """

    def __init__(
        self,
        runtime: "SnapshotRuntime",
        message_bound: int = 6,
        strict_claims: bool = True,
        auto_raise: bool = True,
    ) -> None:
        self.runtime = runtime
        self.message_bound = message_bound
        self.strict_claims = strict_claims
        self.auto_raise = auto_raise
        self.violations: list[InvariantViolation] = []
        self.checks_run = 0
        self.bound_checks_run = 0
        self._epoch_seen: dict[int, int] = {}
        self._subscriptions: list[TraceSubscription] = [
            runtime.simulator.trace.subscribe("election.started", self._on_election),
            runtime.simulator.trace.subscribe("protocol.settled", self._on_settled),
        ]

    # -- trace observers ---------------------------------------------------

    def _on_election(self, record: TraceRecord) -> None:
        """Open a message window; schedule the bound check at settle time."""
        window = _EpochWindow(
            epoch=record.payload["epoch"],
            started_at=record.time,
            mark=self.runtime.stats.mark(),
        )
        self.runtime.simulator.schedule(
            self.runtime.coordinator.settle_delay,
            partial(self._check_message_bound, window),
            label="invariant:msg-bound",
        )

    def _on_settled(self, record: TraceRecord) -> None:
        """Epochs must be monotone per node, across elections and reboots."""
        node = record.payload["node"]
        epoch = record.payload["epoch"]
        last = self._epoch_seen.get(node)
        if last is not None and epoch < last:
            self._record(
                "epoch-monotone",
                f"settled at epoch {epoch} after having reached epoch {last}",
                node=node,
                time=record.time,
            )
        else:
            self._epoch_seen[node] = epoch

    def _check_message_bound(self, window: _EpochWindow) -> None:
        """Table 2: per-node protocol messages in one election epoch."""
        self.bound_checks_run += 1
        per_node = self.runtime.stats.protocol_sent_per_node(since=window.mark)
        for node, count in sorted(per_node.items()):
            if count > self.message_bound:
                self._record(
                    "message-bound",
                    f"sent {count} protocol messages in election epoch "
                    f"{window.epoch} (bound {self.message_bound}, Table 2)",
                    node=node,
                )
        if self.auto_raise and self.violations:
            raise InvariantError(self.violations)

    # -- quiescence check --------------------------------------------------

    def check(self, strict_claims: Optional[bool] = None) -> list[InvariantViolation]:
        """Assert all structural invariants at the current instant.

        Call only at quiescence — after elections settle and maintenance
        bursts drain — or transient states will be misread as breaches.
        Returns the violations found by *this* call (also appended to
        :attr:`violations`); raises :class:`InvariantError` with the
        full list when ``auto_raise`` is set and anything was found.
        """
        strict = self.strict_claims if strict_claims is None else strict_claims
        before = len(self.violations)
        self.checks_run += 1
        nodes = self.runtime.nodes
        alive = {
            node_id: node for node_id, node in nodes.items() if node.alive
        }

        self._check_settled(alive)
        self._check_representation(alive, strict)
        self._check_unique_claims(alive)
        self._check_epoch_monotone(alive)
        self._check_scratch_flags(alive)

        found = self.violations[before:]
        if self.auto_raise and found:
            raise InvariantError(self.violations)
        return found

    def _check_settled(self, alive: dict) -> None:
        for node_id, node in alive.items():
            if not node.mode.settled:
                self._record(
                    "settled-mode",
                    f"mode is {node.mode.value} at quiescence",
                    node=node_id,
                )

    def _check_representation(self, alive: dict, strict: bool) -> None:
        topology = self.runtime.topology
        for node_id, node in alive.items():
            if node.mode is not NodeMode.PASSIVE:
                continue
            rep_id = node.representative_id
            if rep_id is None or rep_id == node_id:
                self._record(
                    "live-representative",
                    f"PASSIVE but representative is {rep_id!r}",
                    node=node_id,
                )
                continue
            rep = alive.get(rep_id)
            if rep is None:
                status = "unknown" if rep_id not in self.runtime.nodes else "dead"
                self._record(
                    "live-representative",
                    f"representative {rep_id} is {status}",
                    node=node_id,
                )
                continue
            if not (
                topology.can_transmit(node_id, rep_id)
                and topology.can_transmit(rep_id, node_id)
            ):
                self._record(
                    "live-representative",
                    f"representative {rep_id} is out of radio range",
                    node=node_id,
                )
                continue
            if strict:
                if rep.mode is not NodeMode.ACTIVE:
                    self._record(
                        "live-representative",
                        f"representative {rep_id} is {rep.mode.value}, not ACTIVE",
                        node=node_id,
                    )
                elif node_id not in rep.represented:
                    self._record(
                        "claimed-back",
                        f"representative {rep_id} does not claim this member",
                        node=node_id,
                    )

    def _check_unique_claims(self, alive: dict) -> None:
        claimed_by: dict[int, list[int]] = {}
        for rep_id, node in alive.items():
            if node.mode is not NodeMode.ACTIVE:
                continue
            for member in node.represented:
                claimed_by.setdefault(member, []).append(rep_id)
        for member, reps in sorted(claimed_by.items()):
            if len(reps) > 1:
                self._record(
                    "unique-claim",
                    f"claimed by representatives {sorted(reps)} simultaneously",
                    node=member,
                )

    def _check_epoch_monotone(self, alive: dict) -> None:
        for node_id, node in alive.items():
            last = self._epoch_seen.get(node_id)
            if last is not None and node.epoch < last:
                self._record(
                    "epoch-monotone",
                    f"epoch regressed to {node.epoch} after reaching {last}",
                    node=node_id,
                )
            else:
                self._epoch_seen[node_id] = node.epoch

    def _check_scratch_flags(self, alive: dict) -> None:
        for node_id, node in alive.items():
            for flag in ("_awaiting_offers", "_resigning", "_await_reply"):
                if getattr(node, flag):
                    self._record(
                        "no-stale-flags",
                        f"{flag} still set at quiescence",
                        node=node_id,
                    )

    # -- bookkeeping -------------------------------------------------------

    def _record(
        self,
        invariant: str,
        detail: str,
        node: Optional[int] = None,
        time: Optional[float] = None,
    ) -> None:
        self.violations.append(
            InvariantViolation(
                time=self.runtime.now if time is None else time,
                invariant=invariant,
                detail=detail,
                node=node,
            )
        )

    @property
    def ok(self) -> bool:
        """Whether no violation has been recorded so far."""
        return not self.violations

    def raise_if_violated(self) -> None:
        """Raise :class:`InvariantError` if any violation accumulated."""
        if self.violations:
            raise InvariantError(self.violations)

    def close(self) -> None:
        """Detach from the trace log (idempotent)."""
        for subscription in self._subscriptions:
            subscription.cancel()
