"""Randomized fault-schedule stress runs ("chaos testing").

One chaos schedule is a complete miniature deployment: train, elect,
start §5.1 maintenance, arm a randomized :class:`FaultPlan` (crashes,
revivals, battery spikes, partitions, and — for lossy schedules — a
link-loss burst spanning the fault window), let the network ride the
faults out, then stop maintenance, drain in-flight exchanges and run
the :class:`~repro.faults.invariants.InvariantChecker` at quiescence.

The timing discipline matters and is the reason the checks are sound:

* The global election runs *before* the plan is armed, so the Table 2
  six-message bound is checked over a fault-free epoch window — the
  bound genuinely cannot hold while Rule-4 retries fight message loss.
* Every fault effect ends by the plan's ``end_time``; the run then
  continues for ``recovery_periods`` heartbeat periods of clean
  maintenance, which is what §5.1 needs to detect dead representatives
  (one heartbeat timeout), fold orphans back in (one lone-active
  invitation), and expire stale claims (``member_expiry_periods``).
* Maintenance is stopped and the simulation drained one and a half
  further periods so reply windows, resign cooldowns and heartbeat
  timeouts all land before the structural check.

Strict back-claims are asserted on lossless schedules; under a loss
burst the final check relaxes to liveness-only pointers, since a lost
Accept legitimately leaves a one-sided edge until the next repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import (
    BatteryDrain,
    FaultEvent,
    FaultPlan,
    LinkLossBurst,
    NetworkPartition,
    NodeCrash,
)
from repro.network.topology import Topology

__all__ = [
    "ChaosConfig",
    "ChaosResult",
    "ChaosRun",
    "build_chaos_runtime",
    "random_fault_plan",
    "run_chaos_schedule",
]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one randomized fault schedule."""

    seed: int
    n_nodes: int = 10
    n_faults: int = 6
    loss_burst: float = 0.0
    cache_policy: str = "model-aware"
    threshold: float = 5.0
    heartbeat_period: float = 8.0
    rotation_probability: float = 0.1
    member_expiry_periods: float = 2.0
    battery_capacity: Optional[float] = 4000.0
    message_bound: int = 6
    fault_window_periods: float = 3.0
    recovery_periods: float = 4.0
    #: Keep full trace records (span timelines) for post-run assertions.
    keep_trace_records: bool = False
    #: Route overheard observations through the batched round path
    #: (``core.round_batch``); ``False`` pins the scalar golden
    #: reference for differential schedules.
    batched_rounds: bool = True

    def __post_init__(self) -> None:
        if self.n_nodes < 4:
            raise ValueError(f"chaos needs at least 4 nodes, got {self.n_nodes}")
        if not 0.0 <= self.loss_burst < 1.0:
            raise ValueError(f"loss_burst must be in [0, 1), got {self.loss_burst}")

    @property
    def lossless(self) -> bool:
        return self.loss_burst == 0.0


@dataclass
class ChaosResult:
    """Outcome of one chaos schedule."""

    config: ChaosConfig
    plan: FaultPlan
    violations: list[InvariantViolation] = field(default_factory=list)
    checks_run: int = 0
    bound_checks_run: int = 0
    crashes: int = 0
    revivals: int = 0
    reelections: int = 0
    final_coverage: float = 0.0
    alive_fraction: float = 1.0
    #: The finished runtime, for observability assertions (span balance,
    #: report round-trips) on top of the structural checks.
    runtime: Optional[SnapshotRuntime] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether the schedule completed with zero invariant violations."""
        return not self.violations

    def report(self, meta: Optional[dict] = None):
        """The schedule's :class:`~repro.obs.report.RunReport`."""
        from repro.obs.report import RunReport

        if self.runtime is None:
            raise RuntimeError("schedule did not complete; no runtime captured")
        return RunReport.capture(self.runtime, meta=meta)


def build_chaos_runtime(config: ChaosConfig) -> SnapshotRuntime:
    """A small all-in-range network with strongly correlated ramps.

    Correlated data guarantees representability (any node can model any
    other within the threshold), so structural churn comes from the
    injected faults, not from modelling noise — the same construction
    the failure-injection tests use.
    """
    # Imported here, not at module top: the experiments package imports
    # this module (the coverage-under-failure sweep), so a module-level
    # import of the harness would be circular.
    from repro.experiments.harness import make_cache_factory

    n = config.n_nodes
    base = np.linspace(0.0, 30.0, 400)
    dataset = Dataset(np.stack([base + 0.3 * i for i in range(n)]))
    topology = Topology([(0.08 * i, 0.0) for i in range(n)], ranges=2.0)
    protocol = ProtocolConfig(
        threshold=config.threshold,
        heartbeat_period=config.heartbeat_period,
        rotation_probability=config.rotation_probability,
        member_expiry_periods=config.member_expiry_periods,
    )
    return SnapshotRuntime(
        topology,
        dataset,
        protocol,
        seed=config.seed,
        cache_factory=make_cache_factory(config.cache_policy, 2048),
        battery_capacity=config.battery_capacity,
        keep_trace_records=config.keep_trace_records,
        batched_rounds=config.batched_rounds,
    )


def random_fault_plan(
    config: ChaosConfig, rng: np.random.Generator
) -> FaultPlan:
    """Draw a randomized fault schedule for ``config``'s network.

    At most half the nodes may die permanently, so the network always
    retains a functioning majority to re-form the structure around.
    """
    period = config.heartbeat_period
    window = config.fault_window_periods * period
    node_ids = list(range(config.n_nodes))
    permanent_budget = config.n_nodes // 2
    events: list[FaultEvent] = []
    for _ in range(config.n_faults):
        t = float(rng.uniform(0.0, window))
        kind = rng.choice(["crash", "blip", "drain", "partition"])
        if kind == "crash" and permanent_budget > 0:
            permanent_budget -= 1
            events.append(
                NodeCrash(time=t, node_id=int(rng.choice(node_ids)))
            )
        elif kind in ("crash", "blip"):
            events.append(
                NodeCrash(
                    time=t,
                    node_id=int(rng.choice(node_ids)),
                    down_for=float(rng.uniform(1.0, 2.5) * period),
                )
            )
        elif kind == "drain":
            events.append(
                BatteryDrain(
                    time=t,
                    node_id=int(rng.choice(node_ids)),
                    fraction=float(rng.uniform(0.3, 0.6)),
                )
            )
        else:
            size = int(rng.integers(2, max(3, config.n_nodes // 2) + 1))
            group = frozenset(
                int(i) for i in rng.choice(node_ids, size=size, replace=False)
            )
            events.append(
                NetworkPartition(
                    time=t,
                    duration=float(rng.uniform(1.0, 2.0) * period),
                    group=group,
                )
            )
    if config.loss_burst > 0.0:
        # One burst spanning the whole fault window, so every injected
        # fault plays out over a degraded radio.
        events.append(
            LinkLossBurst(
                time=0.0,
                duration=window + period,
                loss=config.loss_burst,
            )
        )
    return FaultPlan(tuple(events))


class ChaosRun:
    """A chaos schedule that can be frozen mid-fault-plan and resumed.

    Executes the exact same operation sequence as the original
    monolithic driver — build, train, elect, quiescence check, start
    maintenance, arm the plan, ride it out, drain, final check — but
    split at checkpointable seams.  The whole object (runtime, armed
    injector with its loss overlay, invariant checker with its live
    trace subscriptions, plan, progress markers) is one picklable graph,
    so ``save_checkpoint(chaos_run, path)`` while faults are in flight
    and ``load_checkpoint(path)`` resumes on the identical trajectory::

        run = ChaosRun(config)
        run.start()                      # train → elect → check → arm plan
        run.advance_to(mid_plan_time)    # faults firing...
        save_checkpoint(run, path)       # freeze mid-fault-plan
        resumed = load_checkpoint(path)
        result = resumed.finish()        # == the uninterrupted result
    """

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        self.runtime = build_chaos_runtime(config)
        self.injector = FaultInjector(self.runtime)
        self.checker = InvariantChecker(
            self.runtime,
            message_bound=config.message_bound,
            strict_claims=config.lossless,
        )
        plan_rng = np.random.default_rng(
            np.random.SeedSequence([config.seed, 0xFA11])
        )
        self.plan = random_fault_plan(config, plan_rng)
        #: Absolute time of the plan's last effect; set by :meth:`start`.
        self.quiet_at: Optional[float] = None
        self.finished = False

    def start(self) -> float:
        """Train, elect, check post-election quiescence, arm the plan.

        Returns ``quiet_at`` — the earliest time every fault effect has
        ended.  Any instant between now and the recovery window's end is
        a valid freeze point.
        """
        runtime = self.runtime
        runtime.train(duration=6.0)
        runtime.run_election()
        # Post-election quiescence: the structure must already be sound
        # before any fault fires (also exercises the Table 2 bound
        # check, which was scheduled during the election window).
        self.checker.check()

        runtime.start_maintenance()
        self.quiet_at = self.injector.apply(
            self.plan, at=runtime.now + self.config.heartbeat_period
        )
        return self.quiet_at

    def advance_to(self, time: float) -> None:
        """Drive the simulation to absolute ``time`` (faults fire as armed)."""
        self.runtime.advance_to(time)

    def finish(self) -> ChaosResult:
        """Ride out the plan, drain, run the final check, build the result."""
        if self.quiet_at is None:
            raise RuntimeError("chaos run not started; call start() first")
        if self.finished:
            raise RuntimeError("chaos run already finished")
        config = self.config
        runtime = self.runtime
        period = config.heartbeat_period
        try:
            # Ride the faults out, then give §5.1 maintenance its recovery
            # window: heartbeat-timeout detection, lone-active re-invites
            # and stale-claim expiry all need whole periods to act.
            runtime.advance_to(self.quiet_at + config.recovery_periods * period)
            runtime.maintenance.stop()
            # Drain in-flight reply windows / resign cooldowns / timeouts.
            runtime.advance_to(runtime.now + 1.5 * period)
            self.checker.check()
        finally:
            self.checker.close()
        self.finished = True

        alive = [node for node in runtime.nodes.values() if node.alive]
        covered: set[int] = set()
        for node in alive:
            covered |= node.covered_nodes()
        alive_ids = {node.node_id for node in alive}
        return ChaosResult(
            config=config,
            plan=self.plan,
            violations=list(self.checker.violations),
            checks_run=self.checker.checks_run,
            bound_checks_run=self.checker.bound_checks_run,
            crashes=self.injector.crashes_applied,
            revivals=self.injector.revivals_applied,
            reelections=sum(node.reelections for node in runtime.nodes.values()),
            final_coverage=(
                len(covered & alive_ids) / len(alive_ids) if alive_ids else 0.0
            ),
            alive_fraction=len(alive) / config.n_nodes,
            runtime=runtime,
        )

    def digest_extra(self) -> dict:
        """Chaos-level state folded into :func:`~repro.persist.state_digest`."""
        return {
            "chaos": (
                self.config,
                self.plan,
                self.quiet_at,
                self.finished,
                self.injector.crashes_applied,
                self.injector.revivals_applied,
                self.checker.checks_run,
                self.checker.bound_checks_run,
                tuple(str(v) for v in self.checker.violations),
            )
        }


def run_chaos_schedule(config: ChaosConfig) -> ChaosResult:
    """Run one full train → elect → faults → quiesce → check schedule.

    Raises :class:`~repro.faults.invariants.InvariantError` on the
    first violated invariant (the checker's default); the returned
    result carries counters for aggregation when none is violated.
    """
    run = ChaosRun(config)
    try:
        run.start()
        return run.finish()
    finally:
        # finish() closes the checker on its own paths; this covers a
        # start() that raised (e.g. the post-election quiescence check).
        run.checker.close()
