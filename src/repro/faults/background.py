"""A background chaos schedule for indefinitely running deployments.

One-shot chaos runs (:mod:`repro.faults.chaos`) arm a single randomized
:class:`~repro.faults.plan.FaultPlan` and check invariants at
quiescence.  A continuously operating fleet instead wants a *rolling*
supply of faults: :class:`BackgroundChaos` re-arms a freshly drawn plan
every ``interval`` simulated time units, each plan seeded
deterministically by ``(seed, plan index)`` so the fault trajectory is
a pure function of the configuration — a fleet run and its scripted
single-shot reference see the exact same crashes, bursts and
partitions at the exact same times (the differential suite in
``tests/fleet/`` relies on this).

Permanent crashes are rewritten to transient outages by default
(``transient_only=True``): over an unbounded horizon, every permanent
crash is eventually fatal to the deployment, which is the wrong default
for soak testing.  The whole object graph (task, injector, counters) is
picklable and rides inside fleet checkpoints; ``digest_extra`` folds
its progress into the whole-sim digest.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.chaos import ChaosConfig, random_fault_plan
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, NodeCrash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.runtime import SnapshotRuntime

__all__ = ["BackgroundChaos"]

#: Seed-sequence tag separating background-chaos draws from every other
#: consumer of the root seed (the one-shot chaos driver uses 0xFA11).
_CHAOS_TAG = 0xBAC


class BackgroundChaos:
    """Re-arm a deterministic randomized fault plan every ``interval``.

    Parameters
    ----------
    runtime:
        The deployment to inject faults into.
    config:
        The draw distribution (n_faults, loss_burst, window, ...);
        ``config.n_nodes`` must match the runtime's node count so every
        drawn node id exists.
    interval:
        Sim-time between arming consecutive plans; defaults to the
        config's fault window plus its recovery window, so plans do not
        pile onto each other.
    injector:
        Reuse an existing armed injector (e.g. the one a one-shot plan
        was applied through); a fresh one is interposed if omitted.
    transient_only:
        Rewrite permanent crashes (``down_for=None``) to transient
        outages of ``1.5 * heartbeat_period``.
    """

    def __init__(
        self,
        runtime: "SnapshotRuntime",
        config: ChaosConfig,
        interval: Optional[float] = None,
        injector: Optional[FaultInjector] = None,
        transient_only: bool = True,
    ) -> None:
        if config.n_nodes != len(runtime.nodes):
            raise ValueError(
                f"chaos config draws over {config.n_nodes} nodes but the "
                f"runtime has {len(runtime.nodes)}"
            )
        period = config.heartbeat_period
        self.runtime = runtime
        self.config = config
        self.interval = (
            interval
            if interval is not None
            else (config.fault_window_periods + config.recovery_periods) * period
        )
        if self.interval <= 0:
            raise ValueError(f"interval must be positive, got {self.interval}")
        self.injector = injector if injector is not None else FaultInjector(runtime)
        self.transient_only = transient_only
        self.plans_armed = 0
        self._task = None

    # ------------------------------------------------------------------

    def draw_plan(self, index: int) -> FaultPlan:
        """The deterministic plan armed at firing ``index``."""
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, _CHAOS_TAG, index])
        )
        plan = random_fault_plan(self.config, rng)
        if not self.transient_only:
            return plan
        down_for = 1.5 * self.config.heartbeat_period
        events = tuple(
            dataclasses.replace(event, down_for=down_for)
            if isinstance(event, NodeCrash) and event.down_for is None
            else event
            for event in plan.events
        )
        return FaultPlan(events)

    def _arm_next(self) -> None:
        plan = self.draw_plan(self.plans_armed)
        self.plans_armed += 1
        self.injector.apply(plan)

    # ------------------------------------------------------------------

    def start(self, first_delay: Optional[float] = None) -> "BackgroundChaos":
        """Arm the periodic schedule; first plan after ``first_delay``
        (default: one full interval)."""
        if self._task is not None and not self._task.stopped:
            raise RuntimeError("background chaos already running")
        self._task = self.runtime.simulator.every(
            self.interval,
            self._arm_next,
            label="chaos:background",
            first_delay=first_delay,
        )
        return self

    def stop(self) -> None:
        """Stop arming further plans (already-armed faults still fire)."""
        if self._task is not None:
            self._task.stop()

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.stopped

    def digest_extra(self) -> dict:
        """Background-chaos progress folded into the whole-sim digest."""
        return {
            "background_chaos": (
                self.config,
                self.interval,
                self.transient_only,
                self.plans_armed,
                self.injector.crashes_applied,
                self.injector.revivals_applied,
            )
        }
