"""Declarative fault schedules.

Section 5.1 of the paper claims the snapshot structure survives node
death, model failure, and representative hand-off, and Figures 13–15
measure it doing so.  A :class:`FaultPlan` makes that claim testable:
it is an immutable list of fault events — node crashes (optionally with
revival), battery-depletion spikes, transient link-loss bursts, and
topology partitions — expressed as *offsets* from the moment the plan
is armed, so the same plan can be replayed against any runtime at any
point of its life.

Plans are pure data: arming them against a simulator is the
:class:`~repro.faults.injector.FaultInjector`'s job, which keeps the
schedule serializable, hashable for seeding, and printable in test
failure reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "NodeCrash",
    "BatteryDrain",
    "LinkLossBurst",
    "NetworkPartition",
    "FaultEvent",
    "FaultPlan",
]


def _require_non_negative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node_id`` fails at ``time``; revives ``down_for`` later.

    ``down_for=None`` models a permanent death (the paper's battery
    exhaustion, compressed to an instant); a finite ``down_for`` models
    a transient outage — the node comes back with its trained models
    but no volatile protocol state, and rejoins via a §5.1 re-election.
    """

    time: float
    node_id: int
    down_for: Union[float, None] = None

    def __post_init__(self) -> None:
        _require_non_negative("time", self.time)
        if self.down_for is not None:
            _require_positive("down_for", self.down_for)

    @property
    def end_time(self) -> float:
        """When the fault's last effect fires (revival, or the crash)."""
        return self.time if self.down_for is None else self.time + self.down_for


@dataclass(frozen=True)
class BatteryDrain:
    """An energy spike: instantly draw ``fraction`` of the node's
    initial capacity at ``time`` (a sensing burst, a short, a routing
    storm).  A no-op on infinite batteries, which cannot deplete."""

    time: float
    node_id: int
    fraction: float = 0.5

    def __post_init__(self) -> None:
        _require_non_negative("time", self.time)
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    @property
    def end_time(self) -> float:
        return self.time


@dataclass(frozen=True)
class LinkLossBurst:
    """Every link drops messages with extra probability ``loss`` during
    ``[time, time + duration)`` — interference, rain fade, a jammer.

    Burst loss composes with the runtime's own loss model (a message
    survives only if both let it through), so a burst over a lossy
    radio degrades it further rather than replacing it.
    """

    time: float
    duration: float
    loss: float = 0.5

    def __post_init__(self) -> None:
        _require_non_negative("time", self.time)
        _require_positive("duration", self.duration)
        if not 0.0 < self.loss <= 1.0:
            raise ValueError(f"loss must be in (0, 1], got {self.loss}")

    @property
    def end_time(self) -> float:
        return self.time + self.duration


@dataclass(frozen=True)
class NetworkPartition:
    """Links crossing between ``group`` and the rest of the network are
    severed during ``[time, time + duration)`` (both directions) — the
    paper's §3 obstacle example, scaled from one link to a cut."""

    time: float
    duration: float
    group: frozenset[int]

    def __post_init__(self) -> None:
        _require_non_negative("time", self.time)
        _require_positive("duration", self.duration)
        if not self.group:
            raise ValueError("a partition needs a non-empty group")
        # dataclass(frozen) + mutable input: normalize to a frozenset
        object.__setattr__(self, "group", frozenset(self.group))

    @property
    def end_time(self) -> float:
        return self.time + self.duration


FaultEvent = Union[NodeCrash, BatteryDrain, LinkLossBurst, NetworkPartition]


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered schedule of fault events.

    Event times are offsets from the instant the plan is armed by a
    :class:`~repro.faults.injector.FaultInjector`.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "events", tuple(sorted(self.events, key=lambda e: e.time))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def end_time(self) -> float:
        """Offset of the last effect (revival / burst end / partition heal).

        The quiescence point any invariant check should wait past.
        """
        return max((event.end_time for event in self.events), default=0.0)

    def crashes(self) -> tuple[NodeCrash, ...]:
        """The node-crash events, in time order."""
        return tuple(e for e in self.events if isinstance(e, NodeCrash))

    def extended(self, *events: FaultEvent) -> "FaultPlan":
        """A new plan with ``events`` merged in (plans are immutable)."""
        return FaultPlan(self.events + tuple(events))
