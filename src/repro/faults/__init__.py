"""Fault injection and protocol invariant checking.

The paper's central robustness claim — that the snapshot structure is
"self-correcting" under node death, message loss and topology change
(§1, §5.1) — is exercised here directly: :mod:`repro.faults.plan`
declares fault schedules, :mod:`repro.faults.injector` arms them
against a running simulation, :mod:`repro.faults.invariants` asserts
the protocol's safety properties at quiescence, and
:mod:`repro.faults.chaos` ties them into randomized stress schedules.
"""

from repro.faults.background import BackgroundChaos
from repro.faults.chaos import (
    ChaosConfig,
    ChaosResult,
    build_chaos_runtime,
    random_fault_plan,
    run_chaos_schedule,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantError, InvariantViolation
from repro.faults.plan import (
    BatteryDrain,
    FaultEvent,
    FaultPlan,
    LinkLossBurst,
    NetworkPartition,
    NodeCrash,
)

__all__ = [
    "BackgroundChaos",
    "BatteryDrain",
    "ChaosConfig",
    "ChaosResult",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InvariantChecker",
    "InvariantError",
    "InvariantViolation",
    "LinkLossBurst",
    "NetworkPartition",
    "NodeCrash",
    "build_chaos_runtime",
    "random_fault_plan",
    "run_chaos_schedule",
]
