"""Arming fault plans against a running simulation.

The :class:`FaultInjector` turns the pure-data events of a
:class:`~repro.faults.plan.FaultPlan` into scheduled simulator actions:
node crashes flip the device's failure flag (and, on revival, reboot
the protocol layer so the node rejoins via a §5.1 re-election),
battery drains draw charge instantly, and link-loss bursts / partitions
are realized by interposing a composing :class:`_FaultOverlayLoss`
between the radio and its configured loss model.

The overlay is transparent when no link fault is active: it delegates
``loss_vector`` straight to the base model, so RNG draw order — and
therefore every existing golden trace — is untouched until the first
burst or partition actually begins.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.faults.plan import (
    BatteryDrain,
    FaultPlan,
    LinkLossBurst,
    NetworkPartition,
    NodeCrash,
)
from repro.network.links import LossModel, _sample_deliveries

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.runtime import SnapshotRuntime

__all__ = ["FaultInjector"]


class _FaultOverlayLoss(LossModel):
    """Composes transient fault loss over the radio's own loss model.

    A message survives a directed link only if the base model delivers
    it *and* no active burst drops it *and* no active partition severs
    the link: ``p = 1 - (1 - p_base) * (1 - p_burst)``, forced to 1.0
    across a partition cut.  Multiple overlapping bursts compose the
    same way.
    """

    def __init__(self, base: LossModel) -> None:
        self.base = base
        self._burst_losses: list[float] = []
        self._partitions: list[frozenset[int]] = []

    @property
    def quiet(self) -> bool:
        """Whether the overlay is currently a pure pass-through."""
        return not self._burst_losses and not self._partitions

    # -- fault toggles -----------------------------------------------------

    def push_burst(self, loss: float) -> None:
        self._burst_losses.append(loss)

    def pop_burst(self, loss: float) -> None:
        self._burst_losses.remove(loss)

    def push_partition(self, group: frozenset[int]) -> None:
        self._partitions.append(group)

    def pop_partition(self, group: frozenset[int]) -> None:
        self._partitions.remove(group)

    # -- LossModel interface -----------------------------------------------

    def _severed(self, sender: int, receiver: int) -> bool:
        return any(
            (sender in group) != (receiver in group) for group in self._partitions
        )

    def _burst_survival(self) -> float:
        survival = 1.0
        for loss in self._burst_losses:
            survival *= 1.0 - loss
        return survival

    def loss_probability(self, sender: int, receiver: int) -> float:
        p = self.base.loss_probability(sender, receiver)
        if self.quiet:
            return p
        if self._severed(sender, receiver):
            return 1.0
        return 1.0 - (1.0 - p) * self._burst_survival()

    def loss_vector(
        self,
        sender: int,
        receivers: Sequence[int],
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self.quiet:
            # Pass-through preserves the base model's draw order exactly,
            # so arming an injector perturbs nothing until a fault fires.
            return self.base.loss_vector(sender, receivers, rng)
        return _sample_deliveries(
            [self.loss_probability(sender, receiver) for receiver in receivers], rng
        )

    def __repr__(self) -> str:
        return (
            f"_FaultOverlayLoss(base={self.base!r}, "
            f"bursts={len(self._burst_losses)}, "
            f"partitions={len(self._partitions)})"
        )


class FaultInjector:
    """Applies fault plans (or ad-hoc faults) to a snapshot runtime.

    Constructing an injector interposes the loss overlay on the radio;
    it stays a pass-through until a link fault activates, so building
    one is free.  Every fault emits a ``fault.*`` trace record, which is
    what lets the invariant checker and the tests correlate protocol
    behaviour with the faults that provoked it.
    """

    def __init__(
        self,
        runtime: "SnapshotRuntime",
        local_ids: Optional[frozenset[int]] = None,
    ) -> None:
        self.runtime = runtime
        self.simulator = runtime.simulator
        self.overlay = _FaultOverlayLoss(runtime.radio.loss_model)
        runtime.radio.loss_model = self.overlay
        self.crashes_applied = 0
        self.revivals_applied = 0
        #: Sharded-engine hook: when set, per-node fault events (crash,
        #: revive, drain) are only scheduled for owned nodes — remote
        #: ones consume a root lineage index via ``skip_root`` so every
        #: shard's stamps stay aligned.  Link faults (bursts,
        #: partitions) are global radio conditions and replicate.
        self.local_ids = local_ids

    # -- immediate fault actions -------------------------------------------

    def crash(self, node_id: int) -> None:
        """Fail ``node_id`` now: it stops sending, receiving and timing."""
        device = self.runtime.radio.node(node_id)
        if device.failed:
            return
        device.fail()
        self.crashes_applied += 1
        self.simulator.trace.emit(self.simulator.now, "fault.crash", node=node_id)

    def revive(self, node_id: int) -> None:
        """Bring a crashed ``node_id`` back.

        The device's failure flag clears; if the battery still holds
        charge the protocol node reboots — volatile election state is
        gone, so it re-enters the network UNDEFINED and triggers a §5.1
        re-election to find (or become) a representative.
        """
        device = self.runtime.radio.node(node_id)
        if not device.failed:
            return
        device.restore()
        self.revivals_applied += 1
        self.simulator.trace.emit(self.simulator.now, "fault.revive", node=node_id)
        if device.alive:
            self.runtime.nodes[node_id].reboot()

    def drain(self, node_id: int, fraction: float) -> None:
        """Instantly draw ``fraction`` of the node's initial capacity."""
        device = self.runtime.radio.node(node_id)
        battery = device.battery
        if battery.capacity is None:
            # Infinite batteries cannot deplete; the spike is a no-op.
            return
        amount = battery.capacity * fraction
        battery.draw(amount)
        self.simulator.trace.emit(
            self.simulator.now, "fault.drain", node=node_id, amount=amount
        )

    def begin_burst(self, loss: float) -> None:
        """Start an open-ended global link-loss burst."""
        self.overlay.push_burst(loss)
        if self.simulator.shared_emitter:
            self.simulator.trace.emit(
                self.simulator.now, "fault.burst.begin", loss=loss
            )

    def end_burst(self, loss: float) -> None:
        """End one burst previously begun with the same ``loss``."""
        self.overlay.pop_burst(loss)
        if self.simulator.shared_emitter:
            self.simulator.trace.emit(
                self.simulator.now, "fault.burst.end", loss=loss
            )

    def begin_partition(self, group: frozenset[int]) -> None:
        """Sever all links crossing between ``group`` and the rest."""
        self.overlay.push_partition(group)
        if self.simulator.shared_emitter:
            self.simulator.trace.emit(
                self.simulator.now, "fault.partition.begin", size=len(group)
            )

    def end_partition(self, group: frozenset[int]) -> None:
        """Heal a partition previously begun with the same ``group``."""
        self.overlay.pop_partition(group)
        if self.simulator.shared_emitter:
            self.simulator.trace.emit(
                self.simulator.now, "fault.partition.end", size=len(group)
            )

    # -- plan scheduling ---------------------------------------------------

    def apply(self, plan: FaultPlan, at: Optional[float] = None) -> float:
        """Schedule every event of ``plan`` relative to ``at`` (default: now).

        Returns the absolute simulation time of the plan's last effect —
        the earliest moment a quiescence check makes sense.
        """
        base = self.simulator.now if at is None else at
        if base < self.simulator.now:
            raise ValueError(
                f"cannot arm a plan in the past ({base} < {self.simulator.now})"
            )
        for event in plan:
            self._schedule_event(base, event)
        return base + plan.end_time

    def _skip_remote(self, node_id: int, roots: int) -> bool:
        """Whether ``node_id``'s fault events belong to another shard.

        Consumes ``roots`` lineage root indices so the shards that *do*
        schedule them mint the same stamps everywhere.
        """
        if self.local_ids is None or node_id in self.local_ids:
            return False
        for _ in range(roots):
            self.simulator.lineage.skip_root()
        return True

    def _schedule_event(self, base: float, event) -> None:
        schedule = self.simulator.schedule_at
        if isinstance(event, NodeCrash):
            node_id = event.node_id
            roots = 1 if event.down_for is None else 2
            if self._skip_remote(node_id, roots):
                return
            schedule(
                base + event.time, partial(self.crash, node_id), label="fault:crash"
            )
            if event.down_for is not None:
                schedule(
                    base + event.end_time,
                    partial(self.revive, node_id),
                    label="fault:revive",
                )
        elif isinstance(event, BatteryDrain):
            if self._skip_remote(event.node_id, 1):
                return
            schedule(
                base + event.time,
                partial(self.drain, event.node_id, event.fraction),
                label="fault:drain",
            )
        elif isinstance(event, LinkLossBurst):
            loss = event.loss
            schedule(
                base + event.time, partial(self.begin_burst, loss), label="fault:burst"
            )
            schedule(
                base + event.end_time,
                partial(self.end_burst, loss),
                label="fault:burst-end",
            )
        elif isinstance(event, NetworkPartition):
            group = frozenset(event.group)
            schedule(
                base + event.time,
                partial(self.begin_partition, group),
                label="fault:partition",
            )
            schedule(
                base + event.end_time,
                partial(self.end_partition, group),
                label="fault:partition-end",
            )
        else:  # pragma: no cover - plan validation precludes this
            raise TypeError(f"unknown fault event {event!r}")
