"""Command-line interface: ``python -m repro.cli <command>``.

Gives the reproduction a front door without writing any code:

* ``demo`` — the quickstart pipeline (deploy, train, elect, query);
* ``experiment <id>`` — regenerate one of the paper's tables/figures
  (``fig6`` .. ``fig15``, ``table3``) and print the paper-style report;
* ``query "<sql>"`` — run one query against a freshly trained network
  and show the plan, the participants and the answer;
* ``report`` — run a seeded maintenance workload with full
  observability and print the :class:`~repro.obs.report.RunReport`
  summary (optionally exporting JSONL/CSV and a wall-clock profile);
* ``serve`` — stand up the query serving front-end against a freshly
  trained network, fire a concurrent client workload at it, and print
  throughput, latency percentiles and epoch-cache statistics;
* ``fleet start/status/reconfigure/stop`` — operate a continuously
  running deployment out of a fleet directory: background slicing with
  rotating checkpoints and a JSONL stream, SLO monitoring, optional
  background chaos, and rolling reconfiguration at slice boundaries.

Examples::

    python -m repro.cli demo --classes 4 --threshold 1.0
    python -m repro.cli experiment fig6 --repetitions 2
    python -m repro.cli query "SELECT AVG(value) FROM sensors USE SNAPSHOT"
    python -m repro.cli report --nodes 100 --rounds 5 --jsonl run.jsonl
    python -m repro.cli serve --queries 500 --clients 8
    python -m repro.cli fleet start --dir /tmp/fleet --slices 40 --chaos
    python -m repro.cli fleet reconfigure --dir /tmp/fleet --set loss=0.1
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.experiments import (
    coverage_under_failure,
    figure6_vary_classes,
    figure7_vary_message_loss,
    figure8_vary_cache_size,
    figure9_vary_transmission_range,
    figure10_lifetime,
    figure11_vary_threshold,
    figure12_estimation_error,
    figure13_spurious_representatives,
    figure14_snapshot_size_over_time,
    figure15_messages_per_update,
    format_multi_series,
    format_rows,
    format_series,
    format_table3,
    table3_savings,
)
from repro.network.topology import uniform_random_topology
from repro.query.executor import QueryExecutor
from repro.query.formatting import format_query
from repro.query.parser import parse_query
from repro.query.planner import QueryPlanner

__all__ = ["main", "build_parser"]


def _build_network(
    n_nodes: int, n_classes: int, threshold: float, transmission_range: float, seed: int
) -> SnapshotRuntime:
    rng = np.random.default_rng(seed)
    dataset, __ = generate_random_walk(
        RandomWalkConfig(n_nodes=n_nodes, n_classes=n_classes), rng
    )
    topology = uniform_random_topology(n_nodes, transmission_range, rng)
    runtime = SnapshotRuntime(
        topology, dataset, ProtocolConfig(threshold=threshold), seed=seed
    )
    runtime.train(duration=10)
    runtime.advance_to(100)
    return runtime


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------


def cmd_demo(args: argparse.Namespace) -> int:
    runtime = _build_network(
        args.nodes, args.classes, args.threshold, args.range, args.seed
    )
    view = runtime.run_election()
    print(f"network: {view.n_nodes} nodes, {args.classes} hidden classes, "
          f"T={args.threshold}, range={args.range}")
    print(f"snapshot: {view.size} representatives "
          f"({100 * view.fraction():.0f}% of the network)")
    print(f"max protocol messages by any node: "
          f"{runtime.stats.max_protocol_messages_any_node()}")
    for representative in view.representatives[:10]:
        members = view.members_of(representative)
        print(f"  node {representative:>3} answers for {len(members)} node(s)")
    if view.size > 10:
        print(f"  ... and {view.size - 10} more representatives")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    try:
        query = parse_query(args.sql)
    except ValueError as error:
        print(f"syntax error: {error}", file=sys.stderr)
        return 2
    runtime = _build_network(
        args.nodes, args.classes, args.threshold, args.range, args.seed
    )
    runtime.run_election()
    if args.plan:
        planner = QueryPlanner(runtime)
        plan, result = planner.execute(query, sink=args.sink)
        print(f"plan: {plan.reason}")
        print(f"ran : {format_query(result.query)}")
    else:
        result = QueryExecutor(runtime).execute(query, sink=args.sink)
    print(f"participants: {result.n_participants} "
          f"({len(result.responders)} responders, {len(result.routers)} routers)")
    if result.query.is_aggregate:
        print(f"answer: {result.aggregate_value}")
    else:
        estimated = sum(1 for __, (___, est) in result.reports.items() if est)
        print(f"answer: {len(result.reports)} measurements "
              f"({estimated} estimated by representatives)")
        for origin in sorted(result.reports)[:10]:
            value, est = result.reports[origin]
            marker = "~" if est else " "
            print(f"  node {origin:>3}: {marker}{value:.3f}")
        if len(result.reports) > 10:
            print(f"  ... and {len(result.reports) - 10} more")
    print(f"coverage: {100 * result.coverage():.0f}%")
    return 0


def _experiment_runners(
    repetitions: int,
) -> dict[str, Callable[[], str]]:
    return {
        "fig6": lambda: format_series(
            figure6_vary_classes(repetitions=repetitions), "Figure 6"
        ),
        "fig7": lambda: format_series(
            figure7_vary_message_loss(repetitions=repetitions), "Figure 7"
        ),
        "fig8": lambda: format_multi_series(
            figure8_vary_cache_size(repetitions=repetitions), "cache bytes", "Figure 8"
        ),
        "fig9": lambda: format_multi_series(
            {
                f"K={k}": series
                for k, series in figure9_vary_transmission_range(
                    repetitions=repetitions
                ).items()
            },
            "range",
            "Figure 9",
        ),
        "table3": lambda: format_table3(table3_savings()),
        "fig10": lambda: _format_lifetime(figure10_lifetime()),
        "fig11": lambda: format_series(
            figure11_vary_threshold(repetitions=repetitions), "Figure 11"
        ),
        "fig12": lambda: format_series(
            figure12_estimation_error(repetitions=repetitions), "Figure 12"
        ),
        "fig13": lambda: format_multi_series(
            figure13_spurious_representatives(repetitions=repetitions),
            "P_loss",
            "Figure 13",
        ),
        "fig14": lambda: _format_maintenance(
            figure14_snapshot_size_over_time(), "snapshot size"
        ),
        "fig15": lambda: _format_maintenance(
            figure15_messages_per_update(), "messages/node"
        ),
        "failure": lambda: format_multi_series(
            coverage_under_failure(repetitions=repetitions),
            "death rate / period",
            "Coverage under failure",
        ),
    }


def _format_lifetime(result) -> str:
    n = len(result.regular.samples)
    bucket = max(1, n // 10)
    rows = [
        (
            f"{i}-{i + bucket}",
            f"{sum(result.regular.samples[i:i + bucket]) / bucket:.2f}",
            f"{sum(result.snapshot.samples[i:i + bucket]) / bucket:.2f}",
        )
        for i in range(0, n, bucket)
    ]
    rows.append(("AUC", f"{result.regular.area:.0f}", f"{result.snapshot.area:.0f}"))
    return format_rows(("queries", "regular", "snapshot"), rows, title="Figure 10")


def _format_maintenance(runs, metric: str) -> str:
    rows = [
        (f"range {reach:g}", f"{run.mean_size:.1f}", f"{run.mean_messages:.2f}")
        for reach, run in sorted(runs.items())
    ]
    return format_rows(
        ("configuration", "mean snapshot size", "mean msgs/node"),
        rows,
        title=f"Figures 14/15 ({metric})",
    )


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.harness import NetworkSetup, run_report_experiment

    setup = NetworkSetup(
        n_nodes=args.nodes,
        threshold=args.threshold,
        transmission_range=args.range,
        heartbeat_period=args.period,
        cache_policy=args.cache_policy,
    )
    run = run_report_experiment(
        setup,
        seed=args.seed,
        rounds=args.rounds,
        n_classes=args.classes,
        profile=args.profile,
    )
    print(run.report.format_summary())
    if args.profile:
        print(run.runtime.simulator.profiler.format_table())
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write(run.report.to_jsonl())
        print(f"wrote {args.jsonl}")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(run.report.to_csv())
        print(f"wrote {args.csv}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.query.ast import Aggregate, Query
    from repro.query.spatial import random_square
    from repro.serving import QueryFrontEnd

    runtime = _build_network(
        args.nodes, args.classes, args.threshold, args.range, args.seed
    )
    view = runtime.run_election()
    workload_rng = np.random.default_rng(args.seed + 1)
    templates = [
        Query(
            region=random_square(0.25, workload_rng),
            aggregate=Aggregate.AVG,
            use_snapshot=True,
        )
        for _ in range(max(1, args.templates))
    ]
    requests = [templates[i % len(templates)] for i in range(args.queries)]
    frontend = QueryFrontEnd(
        runtime,
        max_queue=args.max_queue,
        max_cost=args.max_cost,
        cache=not args.no_cache,
        default_sink=args.sink,
    )
    with frontend:
        start = time.perf_counter()
        results = frontend.run_workload(requests, clients=args.clients)
        elapsed = time.perf_counter() - start
    stats = frontend.stats()
    hits = sum(1 for served in results if served.cached)
    print(f"network: {view.n_nodes} nodes, {view.size} representatives, "
          f"epoch {runtime.current_epoch}")
    print(f"served : {len(results)} queries from {args.clients} clients "
          f"over {len(templates)} templates "
          f"(cache {'off' if args.no_cache else 'on'})")
    print(f"qps    : {len(results) / elapsed:.0f} "
          f"({elapsed:.3f}s wall)")
    print(f"latency: p50 {1e3 * stats['p50_seconds']:.2f} ms, "
          f"p99 {1e3 * stats['p99_seconds']:.2f} ms")
    print(f"cache  : {hits}/{len(results)} served cached "
          f"({stats['cache_invalidations']} invalidations, "
          f"{stats['trees_built']} trees built)")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import math
    import time

    from repro.simulation.sharded import ShardedRuntime

    rng = np.random.default_rng(args.seed)
    dataset, __ = generate_random_walk(
        RandomWalkConfig(n_nodes=args.nodes, n_classes=args.classes), rng
    )
    # Default the radius to the paper's degree-12 connectivity regime so
    # ``-n 20000`` does not build a near-complete radio graph.
    radius = (
        args.range
        if args.range is not None
        else math.sqrt(12.0 / (math.pi * args.nodes))
    )
    topology = uniform_random_topology(
        args.nodes, radius, np.random.default_rng(args.seed + 1)
    )
    config = ProtocolConfig(
        threshold=args.threshold, rng_discipline="per-entity"
    )
    with ShardedRuntime(
        topology,
        dataset,
        config,
        seed=args.seed,
        n_shards=args.shards,
        mode=args.mode,
        metrics_enabled=False,
    ) as runtime:
        partition = runtime.partition
        sizes = [len(members) for members in partition.shards]
        print(f"network: {args.nodes} nodes, {args.classes} hidden classes, "
              f"T={args.threshold}, range={radius:.3f}")
        print(f"shards : {args.shards} x {args.mode} "
              f"(sizes {sizes}, {len(partition.boundary_links)} boundary "
              f"links, lookahead {partition.lookahead:g})")
        start = time.perf_counter()
        runtime.train(duration=args.duration)
        runtime.run_election()
        elapsed = time.perf_counter() - start
        print(f"ran    : {args.duration:g} measurement ticks + election "
              f"to t={runtime.now:g} in {elapsed:.2f}s wall")
        print(f"traffic: {runtime.message_total()} messages sent")
        if args.digest:
            print(f"digest : {runtime.state_digest().whole}")
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    runtime = _build_network(
        args.nodes, args.classes, args.threshold, args.range, args.seed
    )
    view = runtime.run_election()
    runtime.start_maintenance()
    period = runtime.config.heartbeat_period
    runtime.advance_to(runtime.now + args.rounds * period)
    digest = runtime.checkpoint(
        args.path,
        meta={"seed": args.seed, "nodes": args.nodes, "rounds_run": args.rounds},
    )
    print(f"froze t={runtime.now:g} after {args.rounds} maintenance round(s)")
    print(f"snapshot: {view.size} representatives, "
          f"{runtime.simulator.events_processed} events processed, "
          f"{sum(runtime.stats.sent.values())} messages sent")
    print(f"digest: {digest.whole}")
    print(f"wrote {args.path}")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from repro.persist import CheckpointError, read_header

    try:
        header = read_header(args.path)
        runtime = SnapshotRuntime.restore(args.path, verify=not args.no_verify)
    except (OSError, CheckpointError, TypeError) as error:
        print(f"cannot resume: {error}", file=sys.stderr)
        return 2
    meta = header.get("meta") or {}
    print(f"resumed t={runtime.now:g} "
          f"(format v{header['format']}, meta {meta if meta else '{}'})")
    period = runtime.config.heartbeat_period
    before = runtime.simulator.events_processed
    runtime.advance_to(runtime.now + args.rounds * period)
    view = runtime.snapshot()
    print(f"ran {args.rounds} more round(s) to t={runtime.now:g}: "
          f"{runtime.simulator.events_processed - before} events fired, "
          f"{sum(runtime.stats.sent.values())} messages sent in total")
    print(f"snapshot: {view.size} representatives "
          f"({len(runtime.alive_ids())} nodes alive)")
    print(f"digest: {runtime.state_digest().whole}")
    return 0


def _parse_change(assignments: Sequence[str]) -> dict:
    """``key=value`` pairs into a reconfiguration change dict.

    Values parse as JSON (so ``0.25``, ``"round-robin"`` and bare
    strings all work); unknown keys are rejected by ``apply_change``
    in the running fleet.
    """
    import json

    change = {}
    for assignment in assignments:
        key, sep, raw = assignment.partition("=")
        if not sep or not key:
            raise ValueError(f"expected key=value, got {assignment!r}")
        try:
            change[key] = json.loads(raw)
        except json.JSONDecodeError:
            change[key] = raw
    return change


def cmd_fleet_start(args: argparse.Namespace) -> int:
    import time

    from repro.faults import ChaosConfig
    from repro.fleet import (
        FleetRunner,
        FleetState,
        SLOConfig,
        poll_commands,
        write_status,
    )

    runtime = _build_network(
        args.nodes, args.classes, args.threshold, args.range, args.seed
    )
    view = runtime.run_election()
    runtime.start_maintenance()
    state = FleetState(
        runtime,
        slo=SLOConfig(
            coverage_floor=args.coverage_floor,
            max_messages_per_node_per_round=args.msg_ceiling,
        ),
        probe_area=None if args.no_probes else args.probe_area,
    )
    if args.chaos:
        state.attach_chaos(
            ChaosConfig(
                seed=args.seed,
                n_nodes=args.nodes,
                n_faults=args.chaos_faults,
                heartbeat_period=runtime.config.heartbeat_period,
            )
        )
    runner = FleetRunner(
        state,
        args.slice,
        args.dir,
        checkpoint_every=args.checkpoint_every,
        pace=args.pace,
        max_slices=args.slices,
    )
    print(f"fleet: {view.n_nodes} nodes, {view.size} representatives, "
          f"slice {args.slice:g}, dir {args.dir}")
    runner.start()
    stopped_by_command = False
    try:
        while runner.running:
            time.sleep(args.poll)
            for command in poll_commands(args.dir):
                kind = command.get("command")
                if kind == "stop":
                    stopped_by_command = True
                elif kind == "reconfigure":
                    runner.request_reconfigure(command.get("change") or {})
                    print(f"queued reconfiguration: {command.get('change')}")
            write_status(args.dir, runner.status())
            if stopped_by_command:
                break
    finally:
        runner.stop()
        status = runner.status()
        write_status(args.dir, status)
    print(f"stopped after {status['slices_done']} slice(s) at "
          f"t={status['sim_time']:g}: {status['maintenance_rounds']} rounds, "
          f"{status['violations']} SLO violation(s), "
          f"{status['reconfigurations']} reconfiguration(s)")
    return 0


def cmd_fleet_status(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import read_status

    status = read_status(args.dir)
    if status is None:
        print(f"no fleet status under {args.dir}", file=sys.stderr)
        return 2
    print(json.dumps(status, sort_keys=True, indent=2))
    return 0


def cmd_fleet_reconfigure(args: argparse.Namespace) -> int:
    from repro.fleet import submit_command

    try:
        change = _parse_change(args.set)
    except ValueError as error:
        print(f"bad --set: {error}", file=sys.stderr)
        return 2
    if not change:
        print("nothing to change; pass --set key=value", file=sys.stderr)
        return 2
    path = submit_command(args.dir, {"command": "reconfigure", "change": change})
    print(f"submitted {change} -> {path}")
    return 0


def cmd_fleet_stop(args: argparse.Namespace) -> int:
    import time

    from repro.fleet import read_status, submit_command

    submit_command(args.dir, {"command": "stop"})
    deadline = time.monotonic() + args.wait
    while args.wait > 0 and time.monotonic() < deadline:
        status = read_status(args.dir)
        if status is not None and not status.get("running", True):
            print(f"fleet stopped after {status['slices_done']} slice(s)")
            return 0
        time.sleep(0.1)
    print("stop requested")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    runners = _experiment_runners(args.repetitions)
    if args.id not in runners:
        print(
            f"unknown experiment {args.id!r}; choose from {sorted(runners)}",
            file=sys.stderr,
        )
        return 2
    print(runners[args.id]())
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------


def _add_network_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=100, help="network size")
    parser.add_argument("--classes", type=int, default=4, help="correlation classes")
    parser.add_argument("--threshold", type=float, default=1.0, help="error threshold T")
    parser.add_argument("--range", type=float, default=0.7, help="transmission range")
    parser.add_argument("--seed", type=int, default=2005, help="random seed")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snapshot Queries (ICDE 2005) reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    demo = commands.add_parser("demo", help="deploy, train, elect, report")
    _add_network_options(demo)
    demo.set_defaults(handler=cmd_demo)

    query = commands.add_parser("query", help="run one query against a fresh network")
    query.add_argument("sql", help="query text, e.g. 'SELECT AVG(value) FROM sensors'")
    query.add_argument("--sink", type=int, default=None, help="collecting node id")
    query.add_argument(
        "--plan", action="store_true",
        help="let the energy-based planner choose the execution mode",
    )
    _add_network_options(query)
    query.set_defaults(handler=cmd_query)

    experiment = commands.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment.add_argument(
        "id",
        help="fig6..fig15, table3 or failure (see DESIGN.md for the index)",
    )
    experiment.add_argument(
        "--repetitions", type=int, default=2, help="averaging repetitions"
    )
    experiment.set_defaults(handler=cmd_experiment)

    report = commands.add_parser(
        "report", help="run an observed maintenance workload; print its RunReport"
    )
    _add_network_options(report)
    report.add_argument(
        "--rounds", type=int, default=5, help="maintenance rounds to run"
    )
    report.add_argument(
        "--period", type=float, default=100.0, help="maintenance period (time units)"
    )
    report.add_argument(
        "--cache-policy", default="model-aware",
        choices=("model-aware", "round-robin"), help="per-node cache policy",
    )
    report.add_argument(
        "--profile", action="store_true",
        help="also profile wall-clock time per event kind",
    )
    report.add_argument("--jsonl", default=None, help="write the report as JSONL here")
    report.add_argument("--csv", default=None, help="write the report rows as CSV here")
    report.set_defaults(handler=cmd_report)

    serve = commands.add_parser(
        "serve", help="serve a concurrent query workload; print QPS/latency"
    )
    _add_network_options(serve)
    serve.add_argument(
        "--queries", type=int, default=500, help="total queries to serve"
    )
    serve.add_argument(
        "--clients", type=int, default=8, help="concurrent client threads"
    )
    serve.add_argument(
        "--templates", type=int, default=16,
        help="distinct query shapes cycled through the workload",
    )
    serve.add_argument(
        "--max-queue", type=int, default=256, help="admission queue bound"
    )
    serve.add_argument(
        "--max-cost", type=float, default=None,
        help="reject queries whose estimated transmissions exceed this",
    )
    serve.add_argument(
        "--sink", type=int, default=None,
        help="collecting node id (smallest alive id by default)",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the epoch-keyed result cache",
    )
    serve.set_defaults(handler=cmd_serve)

    run = commands.add_parser(
        "run",
        help="drive a deployment on the sharded multi-process engine",
    )
    run.add_argument(
        "-n", "--nodes", type=int, default=2000, help="network size"
    )
    run.add_argument("--classes", type=int, default=4, help="correlation classes")
    run.add_argument(
        "--threshold", type=float, default=1.0, help="error threshold T"
    )
    run.add_argument(
        "--range", type=float, default=None,
        help="transmission range (default: the degree-12 radius for -n)",
    )
    run.add_argument("--seed", type=int, default=2005, help="random seed")
    run.add_argument(
        "--shards", type=int, default=4, help="shard worker count"
    )
    run.add_argument(
        "--mode", default="process", choices=("process", "inline"),
        help="fork one worker per shard, or run all shards in-process",
    )
    run.add_argument(
        "--duration", type=float, default=10.0,
        help="measurement ticks to run before the election",
    )
    run.add_argument(
        "--digest", action="store_true",
        help="also print the merged state digest (slow at large -n)",
    )
    run.set_defaults(handler=cmd_run)

    checkpoint = commands.add_parser(
        "checkpoint",
        help="run a seeded maintenance workload and freeze it to a file",
    )
    checkpoint.add_argument("path", help="checkpoint file to write")
    _add_network_options(checkpoint)
    checkpoint.add_argument(
        "--rounds", type=int, default=2,
        help="maintenance rounds to run before freezing",
    )
    checkpoint.set_defaults(handler=cmd_checkpoint)

    resume = commands.add_parser(
        "resume", help="restore a frozen run and continue its maintenance"
    )
    resume.add_argument("path", help="checkpoint file written by 'repro checkpoint'")
    resume.add_argument(
        "--rounds", type=int, default=2,
        help="additional maintenance rounds to run after restoring",
    )
    resume.add_argument(
        "--no-verify", action="store_true",
        help="skip the restore-time digest integrity check",
    )
    resume.set_defaults(handler=cmd_resume)

    fleet = commands.add_parser(
        "fleet",
        help="operate a continuously running deployment out of a fleet dir",
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)

    fleet_start = fleet_commands.add_parser(
        "start", help="start slicing a deployment; poll its control dir"
    )
    fleet_start.add_argument("--dir", required=True, help="fleet home directory")
    _add_network_options(fleet_start)
    fleet_start.add_argument(
        "--slice", type=float, default=25.0, help="sim-time per slice"
    )
    fleet_start.add_argument(
        "--slices", type=int, default=None,
        help="stop after this many slices (default: run until 'fleet stop')",
    )
    fleet_start.add_argument(
        "--pace", type=float, default=0.05,
        help="wall-clock seconds between slices",
    )
    fleet_start.add_argument(
        "--poll", type=float, default=0.1,
        help="wall-clock seconds between control-dir polls",
    )
    fleet_start.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="checkpoint to the rotating ring every N slices (0 disables)",
    )
    fleet_start.add_argument(
        "--probe-area", type=float, default=0.4,
        help="side of the random coverage-probe square",
    )
    fleet_start.add_argument(
        "--no-probes", action="store_true",
        help="disable per-slice coverage probe queries",
    )
    fleet_start.add_argument(
        "--coverage-floor", type=float, default=None,
        help="SLO: windowed mean probe coverage must stay at or above this",
    )
    fleet_start.add_argument(
        "--msg-ceiling", type=float, default=None,
        help="SLO: mean protocol messages/node/round must stay at or below this",
    )
    fleet_start.add_argument(
        "--chaos", action="store_true",
        help="arm a deterministic rolling background fault schedule",
    )
    fleet_start.add_argument(
        "--chaos-faults", type=int, default=4,
        help="faults drawn per background chaos plan",
    )
    fleet_start.set_defaults(handler=cmd_fleet_start)

    fleet_status = fleet_commands.add_parser(
        "status", help="print the running fleet's latest status.json"
    )
    fleet_status.add_argument("--dir", required=True, help="fleet home directory")
    fleet_status.set_defaults(handler=cmd_fleet_status)

    fleet_reconfigure = fleet_commands.add_parser(
        "reconfigure",
        help="submit a rolling reconfiguration (applied at a slice boundary)",
    )
    fleet_reconfigure.add_argument("--dir", required=True, help="fleet home directory")
    fleet_reconfigure.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="change to apply, e.g. --set loss=0.1 "
             "--set cache_policy=round-robin (repeatable)",
    )
    fleet_reconfigure.set_defaults(handler=cmd_fleet_reconfigure)

    fleet_stop = fleet_commands.add_parser(
        "stop", help="ask the running fleet to stop"
    )
    fleet_stop.add_argument("--dir", required=True, help="fleet home directory")
    fleet_stop.add_argument(
        "--wait", type=float, default=10.0,
        help="seconds to wait for the fleet to confirm (0 = fire and forget)",
    )
    fleet_stop.set_defaults(handler=cmd_fleet_stop)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
