"""Workload generators and measurement datasets.

Two generators reproduce the paper's §6 workloads: the class-correlated
random walks of the sensitivity analysis (§6.1) and a synthetic
wind-speed source calibrated to the statistics of the University of
Washington weather data used in §6.3.
"""

from repro.data.random_walk import (
    RandomWalkConfig,
    class_assignment,
    generate_random_walk,
)
from repro.data.series import Dataset
from repro.data.weather import WeatherConfig, generate_weather

__all__ = [
    "Dataset",
    "RandomWalkConfig",
    "WeatherConfig",
    "class_assignment",
    "generate_random_walk",
    "generate_weather",
]
