"""The paper's synthetic workload: class-correlated random walks (§6.1).

    "For each node, we generated values following a random walk pattern,
    each with a randomly assigned step size in the range (0...1].  The
    initial value of each node was chosen uniformly in range [0...1000).
    We then randomly partitioned the nodes into K classes.  Nodes
    belonging to the same class i were making a random step (upwards or
    downwards) with the same probability P_move[i].  These probabilities
    were chosen uniformly in range [0.2...1]."

Interpretation (documented in DESIGN.md): nodes of the same class share
the *walk direction process* — at every tick, class ``c`` decides with
probability ``P_move[c]`` to step, and the (shared) direction is ±1 with
equal probability; node ``i`` then moves by its own step size.  Formally

    x_i(t) = x_i(0) + step_i * W_c(t),   W_c(t) = sum of the class's ±1/0 draws.

This makes same-class series exact affine transforms of one another —
the linear correlation the paper's models are designed to capture, and
the only reading under which K=1 yields a single representative for all
100 nodes (Figure 6).  Cross-class series are independent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.series import Dataset

__all__ = ["RandomWalkConfig", "generate_random_walk", "class_assignment"]


@dataclass(frozen=True)
class RandomWalkConfig:
    """Parameters of the §6.1 synthetic workload.

    Attributes
    ----------
    n_nodes:
        Number of sensor series (the paper uses 100).
    n_classes:
        Number of correlation classes ``K`` (swept 1..100 in Figure 6).
    length:
        Samples per series (the paper runs 100 time units).
    initial_low, initial_high:
        Range of the uniform initial value (paper: ``[0, 1000)``).
    step_low, step_high:
        Range of the per-node step size (paper: ``(0, 1]``).
    move_low, move_high:
        Range of the per-class move probability (paper: ``[0.2, 1]`` —
        "we excluded values less than 0.2 to make data more volatile").
    """

    n_nodes: int = 100
    n_classes: int = 1
    length: int = 100
    initial_low: float = 0.0
    initial_high: float = 1000.0
    step_low: float = 0.0
    step_high: float = 1.0
    move_low: float = 0.2
    move_high: float = 1.0

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if not 1 <= self.n_classes <= self.n_nodes:
            raise ValueError(
                f"n_classes must be in [1, n_nodes], got {self.n_classes}"
            )
        if self.length <= 0:
            raise ValueError(f"length must be positive, got {self.length}")
        if self.initial_high <= self.initial_low:
            raise ValueError("initial value range is empty")
        if self.step_high <= self.step_low:
            raise ValueError("step size range is empty")
        if not 0.0 <= self.move_low <= self.move_high <= 1.0:
            raise ValueError("move probability range must satisfy 0 <= low <= high <= 1")


def class_assignment(
    n_nodes: int, n_classes: int, rng: np.random.Generator
) -> np.ndarray:
    """Randomly partition ``n_nodes`` into ``n_classes`` non-empty classes.

    Every class receives at least one node (a random permutation seeds
    one node per class; the rest are assigned uniformly), matching the
    paper's "randomly partitioned the nodes into K classes".
    """
    if not 1 <= n_classes <= n_nodes:
        raise ValueError(f"need 1 <= n_classes <= n_nodes, got {n_classes}, {n_nodes}")
    labels = np.empty(n_nodes, dtype=int)
    seeds = rng.permutation(n_nodes)[:n_classes]
    labels[:] = rng.integers(0, n_classes, size=n_nodes)
    for class_id, node in enumerate(seeds):
        labels[node] = class_id
    return labels


def generate_random_walk(
    config: RandomWalkConfig, rng: np.random.Generator
) -> tuple[Dataset, np.ndarray]:
    """Generate the workload; returns ``(dataset, class labels)``.

    The class labels are returned so experiments can verify that the
    elected representative structure tracks the hidden classes.
    """
    labels = class_assignment(config.n_nodes, config.n_classes, rng)
    initial = rng.uniform(config.initial_low, config.initial_high, size=config.n_nodes)
    # step sizes in (step_low, step_high]: sample the open-low interval by
    # flipping a uniform draw on [low, high).
    steps = config.step_high + config.step_low - rng.uniform(
        config.step_low, config.step_high, size=config.n_nodes
    )
    move_probs = rng.uniform(config.move_low, config.move_high, size=config.n_classes)

    # Shared per-class walk: entries in {-1, 0, +1}.
    moved = rng.random((config.n_classes, config.length - 1)) < move_probs[:, None]
    directions = rng.choice((-1.0, 1.0), size=(config.n_classes, config.length - 1))
    class_increments = np.where(moved, directions, 0.0)
    class_walk = np.concatenate(
        [np.zeros((config.n_classes, 1)), np.cumsum(class_increments, axis=1)], axis=1
    )

    values = initial[:, None] + steps[:, None] * class_walk[labels]
    return Dataset(values), labels
