"""Synthetic wind-speed workload (substitute for the UW weather data, §6.3).

The paper's realistic experiments use wind-speed measurements at 1-minute
resolution collected during 2002 at the University of Washington weather
station: 100 non-overlapping series of 100 values (Figures 11–13) or
5,000 values (Figures 14–15), with reported average value 5.8 and
average per-series variance 2.8.

That dataset is not redistributable, so this module generates a
synthetic equivalent that preserves the properties the paper's
techniques exploit:

* **temporal smoothness** — wind speed evolves as a mean-reverting AR(1)
  process with gusts, so a handful of cached samples suffice to fit a
  useful local model;
* **cross-series correlation** — series assigned to the same
  *microclimate* share a gust process (scaled and offset per node),
  mirroring neighboring anemometers seeing the same wind field;
* **matching summary statistics** — mean ≈ 5.8 and average per-series
  variance ≈ 2.8, the two numbers the paper reports about its data;
* **non-negativity** — wind speed is clipped at zero.

The substitution is recorded in DESIGN.md.  Because only the *shape* of
Figures 11–15 is reproduced (snapshot size falling from ~14% of the
network at T=0.1 toward ~1.5% at T=10, etc.), a calibrated synthetic
source with the same correlation structure is an adequate stand-in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.series import Dataset

__all__ = ["WeatherConfig", "generate_weather"]


@dataclass(frozen=True)
class WeatherConfig:
    """Parameters of the synthetic wind-speed generator.

    Attributes
    ----------
    n_series:
        Number of node series (paper: 100).
    length:
        Samples per series (paper: 100 for Figs 11–13, 5000 for 14–15).
    mean:
        Long-run regional mean wind speed (paper reports 5.8).
    target_variance:
        Desired average per-series variance (paper reports 2.8).
    n_microclimates:
        Number of shared gust processes; series in the same microclimate
        are strongly correlated, across microclimates only weakly (via
        the regional field).
    regional_phi, gust_phi:
        AR(1) persistence of the regional field and of microclimate
        gusts (both in ``[0, 1)``).
    regional_weight:
        Fraction of the fluctuation variance carried by the regional
        field (shared by *all* series); the rest is microclimate gusts.
    noise_std:
        Std-dev of per-node idiosyncratic measurement noise, in wind
        speed units.  This bounds how well any model can represent a
        neighbor and thus drives the left end of Figure 11.
    gain_spread:
        Std-dev of the per-node multiplicative gain around 1 (terrain
        exposure differences).
    offset_spread:
        Std-dev of the per-node additive offset (site-specific bias).
    """

    n_series: int = 100
    length: int = 100
    mean: float = 5.8
    target_variance: float = 2.8
    n_microclimates: int = 8
    regional_phi: float = 0.97
    gust_phi: float = 0.9
    regional_weight: float = 0.5
    noise_std: float = 0.12
    gain_spread: float = 0.08
    offset_spread: float = 0.4

    def __post_init__(self) -> None:
        if self.n_series <= 0:
            raise ValueError(f"n_series must be positive, got {self.n_series}")
        if self.length <= 1:
            raise ValueError(f"length must exceed 1, got {self.length}")
        if not 1 <= self.n_microclimates <= self.n_series:
            raise ValueError(
                f"n_microclimates must be in [1, n_series], got {self.n_microclimates}"
            )
        for name in ("regional_phi", "gust_phi"):
            phi = getattr(self, name)
            if not 0.0 <= phi < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {phi}")
        if not 0.0 <= self.regional_weight <= 1.0:
            raise ValueError(
                f"regional_weight must be in [0, 1], got {self.regional_weight}"
            )
        if self.target_variance <= 0:
            raise ValueError(
                f"target_variance must be positive, got {self.target_variance}"
            )
        if self.noise_std < 0 or self.gain_spread < 0 or self.offset_spread < 0:
            raise ValueError("spread parameters must be non-negative")


def _ar1(
    length: int, phi: float, innovation_std: float, rng: np.random.Generator, rows: int = 1
) -> np.ndarray:
    """``rows`` independent stationary AR(1) paths of unit-free scale."""
    noise = rng.normal(0.0, innovation_std, size=(rows, length))
    paths = np.empty((rows, length))
    # start from the stationary distribution so short series are unbiased
    stationary_std = innovation_std / np.sqrt(max(1e-12, 1.0 - phi * phi))
    paths[:, 0] = rng.normal(0.0, stationary_std, size=rows)
    for t in range(1, length):
        paths[:, t] = phi * paths[:, t - 1] + noise[:, t]
    return paths


def generate_weather(
    config: WeatherConfig, rng: np.random.Generator
) -> tuple[Dataset, np.ndarray]:
    """Generate the synthetic weather workload.

    Returns ``(dataset, microclimate labels)``; labels let experiments
    confirm that representatives align with shared wind fields.
    """
    fluct_variance = config.target_variance - config.noise_std**2
    if fluct_variance <= 0:
        raise ValueError(
            "noise_std^2 exceeds target_variance; no room for shared fluctuation"
        )
    regional_var = fluct_variance * config.regional_weight
    gust_var = fluct_variance * (1.0 - config.regional_weight)

    def innovation_std(variance: float, phi: float) -> float:
        return float(np.sqrt(variance * (1.0 - phi * phi)))

    regional = _ar1(
        config.length,
        config.regional_phi,
        innovation_std(regional_var, config.regional_phi),
        rng,
    )[0]
    gusts = _ar1(
        config.length,
        config.gust_phi,
        innovation_std(gust_var, config.gust_phi),
        rng,
        rows=config.n_microclimates,
    )

    labels = rng.integers(0, config.n_microclimates, size=config.n_series)
    # guarantee every microclimate is populated
    seeds = rng.permutation(config.n_series)[: config.n_microclimates]
    for climate, node in enumerate(seeds):
        labels[node] = climate

    gains = rng.normal(1.0, config.gain_spread, size=config.n_series)
    offsets = rng.normal(0.0, config.offset_spread, size=config.n_series)
    noise = rng.normal(0.0, config.noise_std, size=(config.n_series, config.length))

    shared = regional[None, :] + gusts[labels]
    values = config.mean + gains[:, None] * shared + offsets[:, None] + noise
    np.clip(values, 0.0, None, out=values)
    return Dataset(values), labels
