"""Measurement datasets.

A :class:`Dataset` holds one time series per sensor node — the ground
truth the simulated sensors "measure".  The simulation addresses values
by (node id, simulated time); time indexes are floored to the latest
sample at or before ``t`` (a sensor reports its most recent reading).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Dataset"]


class Dataset:
    """Per-node measurement series, shape ``(n_nodes, length)``.

    Parameters
    ----------
    values:
        Array-like of shape ``(n_nodes, length)``; row ``i`` is node
        ``i``'s measurement series.
    """

    def __init__(self, values: np.ndarray | Sequence[Sequence[float]]) -> None:
        array = np.asarray(values, dtype=float)
        if array.ndim != 2:
            raise ValueError(f"dataset must be 2-D (nodes x time), got shape {array.shape}")
        if array.shape[0] == 0 or array.shape[1] == 0:
            raise ValueError(f"dataset must be non-empty, got shape {array.shape}")
        self._values = array

    @property
    def n_nodes(self) -> int:
        """Number of node series."""
        return self._values.shape[0]

    @property
    def length(self) -> int:
        """Number of samples per series."""
        return self._values.shape[1]

    @property
    def values(self) -> np.ndarray:
        """The raw ``(n_nodes, length)`` array (a view; treat as read-only)."""
        return self._values

    def series(self, node_id: int) -> np.ndarray:
        """Node ``node_id``'s full series."""
        return self._values[node_id]

    def value(self, node_id: int, time: float) -> float:
        """Measurement of ``node_id`` at simulated ``time``.

        Time is floored to the most recent sample; querying before the
        first sample raises, querying past the end returns the last
        sample (the sensor keeps reporting its latest reading).
        """
        if time < 0:
            raise ValueError(f"cannot read a measurement at negative time {time}")
        index = min(int(time), self.length - 1)
        return float(self._values[node_id, index])

    def slice_time(self, start: int, stop: int) -> "Dataset":
        """A dataset restricted to sample indexes ``[start, stop)``."""
        if not 0 <= start < stop <= self.length:
            raise ValueError(
                f"invalid time slice [{start}, {stop}) for length {self.length}"
            )
        return Dataset(self._values[:, start:stop])

    def mean_of_means(self) -> float:
        """Average of per-series means (the paper reports 5.8 for weather)."""
        return float(self._values.mean(axis=1).mean())

    def mean_of_variances(self) -> float:
        """Average of per-series variances (the paper reports 2.8)."""
        return float(self._values.var(axis=1).mean())

    def __repr__(self) -> str:
        return f"Dataset(n_nodes={self.n_nodes}, length={self.length})"
