"""Differential shard-conformance suite.

The sharded engine claims *bit-equivalence*: for any topology, seed,
cache policy and loss model, running the deployment split across 1, 2
or 4 shards produces byte-for-byte the same state digest, the same
trace records and the same report rows as the single-process
:class:`~repro.core.runtime.SnapshotRuntime`.  These tests prove it by
running both engines through an identical train → elect → maintain →
stop → drain script and diffing every observable.

A second family of cases freezes a 2-shard run at a mid-maintenance
sync seam via :meth:`ShardedRuntime.checkpoint`, restores it into a
fresh engine, and shows the resumed trajectory lands on the exact
digest of the uninterrupted run — the seam is invisible.

Marked ``shard`` so the tier-1 run stays fast; CI's shard job runs the
full matrix.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.experiments.harness import make_cache_factory
from repro.network.links import PERFECT_LINKS, GlobalLoss
from repro.network.topology import uniform_random_topology
from repro.obs.report import RunReport
from repro.persist.digest import canonical_bytes
from repro.simulation.sharded import ShardedRuntime

pytestmark = pytest.mark.shard

N_NODES = int(os.environ.get("REPRO_SHARD_NODES", "120"))
SEED = 7
HEARTBEAT = 8.0
CACHE_BYTES = 4096


def _build(n_shards=None, *, loss=0.0, cache_policy="model-aware", mode="inline"):
    """One runtime (reference when ``n_shards`` is None, else sharded).

    Both sides get identical construction inputs; the per-entity RNG
    discipline is what makes draw order independent of event
    interleaving across shards.
    """
    rng = np.random.default_rng(SEED)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=N_NODES, n_classes=3, length=400), rng
    )
    topology = uniform_random_topology(
        N_NODES, 0.22, np.random.default_rng(SEED + 1)
    )
    config = ProtocolConfig(
        threshold=2.0, rng_discipline="per-entity", heartbeat_period=HEARTBEAT
    )
    kwargs = dict(
        seed=SEED,
        loss_model=PERFECT_LINKS if loss == 0 else GlobalLoss(loss),
        cache_factory=make_cache_factory(cache_policy, CACHE_BYTES),
        battery_capacity=5000.0,
        keep_trace_records=True,
    )
    if n_shards is None:
        return SnapshotRuntime(topology, dataset, config, **kwargs)
    return ShardedRuntime(
        topology, dataset, config, n_shards=n_shards, mode=mode, **kwargs
    )


def _drive(runtime) -> None:
    """The full conformance script; identical calls on both engines."""
    runtime.train(duration=6.0)
    runtime.run_election()
    runtime.start_maintenance()
    runtime.advance_to(runtime.now + 3 * HEARTBEAT)
    if isinstance(runtime, ShardedRuntime):
        runtime.stop_maintenance()
    else:
        runtime.maintenance.stop()
    runtime.advance_to(runtime.now + 12.0)


def _normalized_records(runtime: SnapshotRuntime):
    """Reference records in the sharded engine's canonical merge order."""
    records = [
        (r.time, r.kind, tuple(sorted(r.payload.items())))
        for r in runtime.simulator.trace.records
    ]
    records.sort(key=lambda r: (r[0], r[1], canonical_bytes(r[2])))
    return records


MATRIX = [
    pytest.param(shards, policy, loss, id=f"{shards}shard-{policy}-loss{loss}")
    for shards in (1, 2, 4)
    for policy in ("model-aware", "round-robin")
    for loss in (0.0, 0.25)
]


@pytest.mark.parametrize("n_shards,cache_policy,loss", MATRIX)
def test_sharded_run_is_bit_equivalent(n_shards, cache_policy, loss):
    """Digests, trace records and report rows all match the reference."""
    reference = _build(loss=loss, cache_policy=cache_policy)
    _drive(reference)
    ref_report = RunReport.capture(reference)
    ref_digest = reference.state_digest()
    ref_records = _normalized_records(reference)

    sharded = _build(n_shards, loss=loss, cache_policy=cache_policy)
    _drive(sharded)

    digest = sharded.state_digest()
    assert digest.components == ref_digest.components
    assert digest.whole == ref_digest.whole

    assert sharded.merged_records() == ref_records

    report = sharded.capture_report()
    assert report.meta == ref_report.meta
    assert report.rows == ref_report.rows


def test_process_mode_matches_inline():
    """Fork-per-shard workers land on the same digest as everything else."""
    reference = _build()
    _drive(reference)
    ref_digest = reference.state_digest()

    with _build(2, mode="process") as sharded:
        _drive(sharded)
        assert sharded.state_digest() == ref_digest


@pytest.mark.parametrize("cache_policy", ["model-aware", "round-robin"])
def test_freeze_restore_at_sync_seam(tmp_path, cache_policy):
    """Checkpointing mid-maintenance and restoring changes nothing.

    The seam sits 1.5 heartbeat periods into maintenance — between two
    conservative sync windows, with boundary handoffs quiesced but the
    protocol mid-flight.  Both the frozen original and the restored
    copy must finish on the uninterrupted reference digest.
    """
    reference = _build(cache_policy=cache_policy)
    _drive(reference)
    ref_digest = reference.state_digest()

    original = _build(2, cache_policy=cache_policy)
    original.train(duration=6.0)
    original.run_election()
    original.start_maintenance()
    original.advance_to(original.now + 1.5 * HEARTBEAT)

    path = str(tmp_path / "seam")
    paths = original.checkpoint(path)
    assert len(paths) == 2

    restored = ShardedRuntime.restore(path, n_shards=2)
    assert restored.now == original.now

    for runtime in (original, restored):
        runtime.advance_to(runtime.now + 1.5 * HEARTBEAT)
        runtime.stop_maintenance()
        runtime.advance_to(runtime.now + 12.0)

    assert original.state_digest() == ref_digest
    assert restored.state_digest() == ref_digest
    assert restored.merged_records() == original.merged_records()


def test_sharded_requires_per_entity_rng():
    """The shared-RNG discipline cannot be sharded; refuse loudly."""
    rng = np.random.default_rng(SEED)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=10, n_classes=2, length=50), rng
    )
    topology = uniform_random_topology(10, 0.5, np.random.default_rng(SEED))
    config = ProtocolConfig(rng_discipline="shared")
    with pytest.raises(ValueError, match="per-entity"):
        ShardedRuntime(topology, dataset, config, n_shards=2)
