"""Worker lifecycle regression tests for the process-mode engine.

The failure these pin down: an exception inside one shard worker must
surface in the controller as a single clean :class:`ShardWorkerError`
(carrying the shard id and the worker traceback) and tear the whole
fleet down — not deadlock the pytest process on a pipe that will never
be written.  Small deployment, runs in tier-1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.data.random_walk import RandomWalkConfig, generate_random_walk
from repro.network.topology import uniform_random_topology
from repro.simulation.sharded import ShardedRuntime, ShardWorkerError

N_NODES = 12
SEED = 11


def _build(mode="process"):
    rng = np.random.default_rng(SEED)
    dataset, _ = generate_random_walk(
        RandomWalkConfig(n_nodes=N_NODES, n_classes=2, length=100), rng
    )
    topology = uniform_random_topology(
        N_NODES, 0.5, np.random.default_rng(SEED + 1)
    )
    config = ProtocolConfig(threshold=2.0, rng_discipline="per-entity")
    return ShardedRuntime(
        topology, dataset, config, seed=SEED, n_shards=2, mode=mode
    )


def test_worker_exception_propagates_as_single_clean_error():
    """A crash in shard 1 raises once, names the shard, keeps the trace."""
    with _build() as runtime:
        with pytest.raises(ShardWorkerError) as excinfo:
            runtime._handles[1].call("raise_error", "boom")
        assert excinfo.value.shard == 1
        assert "boom" in excinfo.value.detail
        assert "RuntimeError" in excinfo.value.detail


def test_lockstep_error_tears_the_fleet_down():
    """An error during a fan-out op closes every worker — no hang, and
    later closes are no-ops."""
    runtime = _build()
    with pytest.raises(ShardWorkerError):
        runtime._lockstep("raise_error", "poisoned")
    for handle in runtime._handles:
        assert not handle.process.is_alive()
    runtime.close()  # idempotent after the error-path teardown


def test_context_manager_reaps_worker_processes():
    """Normal exit joins every forked worker."""
    with _build() as runtime:
        runtime.train(duration=2.0)
        processes = [handle.process for handle in runtime._handles]
        assert all(p.is_alive() for p in processes)
    assert all(not p.is_alive() for p in processes)


def test_inline_mode_has_no_processes():
    """Inline handles close without touching multiprocessing at all."""
    runtime = _build(mode="inline")
    runtime.train(duration=2.0)
    runtime.close()
    runtime.close()
