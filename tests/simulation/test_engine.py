"""Unit tests for the simulator engine, clock, and periodic tasks."""

from __future__ import annotations

import pytest

from repro.simulation.clock import SimulationClock
from repro.simulation.engine import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert SimulationClock().now == 0.0

    def test_advance(self):
        clock = SimulationClock()
        clock.advance_to(5.5)
        assert clock.now == 5.5

    def test_never_rewinds(self):
        clock = SimulationClock(start=10.0)
        with pytest.raises(ValueError):
            clock.advance_to(9.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock(start=-1.0)


class TestScheduling:
    def test_schedule_and_run(self, simulator):
        order = []
        simulator.schedule(2.0, lambda: order.append("b"))
        simulator.schedule(1.0, lambda: order.append("a"))
        simulator.run()
        assert order == ["a", "b"]
        assert simulator.now == 2.0

    def test_negative_delay_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, simulator):
        simulator.schedule(1.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_events(self, simulator):
        seen = []

        def chain() -> None:
            seen.append(simulator.now)
            if len(seen) < 3:
                simulator.schedule(1.0, chain)

        simulator.schedule(1.0, chain)
        simulator.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_cancel_prevents_firing(self, simulator):
        hits = []
        event = simulator.schedule(1.0, lambda: hits.append(1))
        simulator.cancel(event)
        simulator.run()
        assert hits == []

    def test_run_until_advances_clock_even_without_events(self, simulator):
        fired = simulator.run_until(42.0)
        assert fired == 0
        assert simulator.now == 42.0

    def test_run_until_leaves_later_events_queued(self, simulator):
        hits = []
        simulator.schedule(1.0, lambda: hits.append("early"))
        simulator.schedule(10.0, lambda: hits.append("late"))
        simulator.run_until(5.0)
        assert hits == ["early"]
        assert simulator.now == 5.0
        simulator.run()
        assert hits == ["early", "late"]

    def test_run_until_past_raises(self, simulator):
        simulator.run_until(5.0)
        with pytest.raises(ValueError):
            simulator.run_until(4.0)

    def test_run_until_same_time_twice_is_a_noop(self, simulator):
        """The fleet layer slices with back-to-back run_until calls; a
        repeated bound must fire nothing, move nothing, reorder nothing."""
        hits = []
        simulator.schedule(1.0, lambda: hits.append("in"))
        simulator.schedule(5.0, lambda: hits.append("boundary"))
        simulator.schedule(9.0, lambda: hits.append("out"))
        simulator.run_until(5.0)
        assert hits == ["in", "boundary"]
        processed = simulator.events_processed
        fired = simulator.run_until(5.0)
        assert fired == 0
        assert simulator.now == 5.0
        assert simulator.events_processed == processed
        assert hits == ["in", "boundary"]
        simulator.run()
        assert hits == ["in", "boundary", "out"]

    def test_max_events_bound(self, simulator):
        for index in range(10):
            simulator.schedule(index + 1.0, lambda: None)
        fired = simulator.run(max_events=4)
        assert fired == 4
        assert simulator.events_processed == 4


class TestPeriodicTask:
    def test_fires_every_period(self, simulator):
        times = []
        simulator.every(2.0, lambda: times.append(simulator.now))
        simulator.run_until(7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_first_delay_override(self, simulator):
        times = []
        simulator.every(5.0, lambda: times.append(simulator.now), first_delay=1.0)
        simulator.run_until(12.0)
        assert times == [1.0, 6.0, 11.0]

    def test_stop_halts_task(self, simulator):
        times = []
        task = simulator.every(1.0, lambda: times.append(simulator.now))
        simulator.run_until(3.0)
        task.stop()
        simulator.run_until(10.0)
        assert times == [1.0, 2.0, 3.0]
        assert task.stopped

    def test_stop_from_inside_callback(self, simulator):
        times = []

        def tick() -> None:
            times.append(simulator.now)
            if len(times) == 2:
                task.stop()

        task = simulator.every(1.0, tick)
        simulator.run_until(10.0)
        assert times == [1.0, 2.0]

    def test_zero_period_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.every(0.0, lambda: None)

    def test_double_start_rejected(self, simulator):
        """Regression: re-arming an armed task leaked the first pending
        event, double-firing the callback every period."""
        times = []
        task = simulator.every(1.0, lambda: times.append(simulator.now))
        with pytest.raises(RuntimeError):
            task.start()
        simulator.run_until(3.0)
        assert times == [1.0, 2.0, 3.0]  # single cadence, no duplicates

    def test_restart_after_stop_allowed(self, simulator):
        times = []
        task = simulator.every(1.0, lambda: times.append(simulator.now))
        simulator.run_until(2.0)
        task.stop()
        task.start()  # the handle is reusable once disarmed
        simulator.run_until(4.0)
        assert times == [1.0, 2.0, 3.0, 4.0]

    def test_stop_from_callback_leaves_other_events_runnable(self, simulator):
        """Regression: a task stopping itself mid-callback must not
        desynchronize the queue — later events still fire and
        run_until terminates."""
        hits = []

        def tick() -> None:
            hits.append(simulator.now)
            task.stop()

        task = simulator.every(1.0, tick)
        simulator.schedule(5.0, lambda: hits.append("late"))
        simulator.run_until(10.0)
        assert hits == [1.0, "late"]
        assert simulator.now == 10.0


class TestDeterminism:
    def test_same_seed_same_streams(self):
        first = Simulator(seed=99).random.stream("x").random(5)
        second = Simulator(seed=99).random.stream("x").random(5)
        assert list(first) == list(second)

    def test_named_streams_are_independent(self, simulator):
        a = simulator.random.stream("a").random(3)
        b = simulator.random.stream("b").random(3)
        assert list(a) != list(b)

    def test_fresh_resets_stream(self, simulator):
        first = simulator.random.stream("s").random(3)
        again = simulator.random.fresh("s").random(3)
        assert list(first) == list(again)

    def test_spawned_sources_differ(self, simulator):
        child0 = simulator.random.spawn(0).stream("x").random(3)
        child1 = simulator.random.spawn(1).stream("x").random(3)
        assert list(child0) != list(child1)
