"""Unit tests for the event queue."""

from __future__ import annotations

import pytest

from repro.simulation.events import Event, EventCancelled, EventQueue


def _noop() -> None:
    pass


class TestEvent:
    def test_fire_invokes_callback(self):
        hits = []
        event = Event(time=1.0, callback=lambda: hits.append(1))
        event.fire()
        assert hits == [1]

    def test_cancelled_event_refuses_to_fire(self):
        event = Event(time=1.0, callback=_noop)
        event.cancel()
        with pytest.raises(EventCancelled):
            event.fire()

    def test_cancel_is_idempotent(self):
        event = Event(time=1.0, callback=_noop)
        event.cancel()
        event.cancel()
        assert event.cancelled


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.push(Event(time=3.0, callback=_noop, label="c"))
        queue.push(Event(time=1.0, callback=_noop, label="a"))
        queue.push(Event(time=2.0, callback=_noop, label="b"))
        assert [queue.pop().label for _ in range(3)] == ["a", "b", "c"]

    def test_equal_times_fifo(self):
        queue = EventQueue()
        for name in "abcde":
            queue.push(Event(time=1.0, callback=_noop, label=name))
        assert [queue.pop().label for _ in range(5)] == list("abcde")

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, callback=_noop, priority=5, label="later"))
        queue.push(Event(time=1.0, callback=_noop, priority=-5, label="first"))
        assert queue.pop().label == "first"

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.push(Event(time=-0.5, callback=_noop))

    def test_len_counts_live_events_only(self):
        queue = EventQueue()
        kept = queue.push(Event(time=1.0, callback=_noop))
        dropped = queue.push(Event(time=2.0, callback=_noop))
        queue.cancel(dropped)
        assert len(queue) == 1
        assert queue.pop() is kept
        assert not queue

    def test_cancelled_events_skipped_on_pop(self):
        queue = EventQueue()
        first = queue.push(Event(time=1.0, callback=_noop, label="first"))
        queue.push(Event(time=2.0, callback=_noop, label="second"))
        queue.cancel(first)
        assert queue.pop().label == "second"

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(Event(time=1.0, callback=_noop))
        queue.push(Event(time=4.0, callback=_noop))
        queue.cancel(first)
        assert queue.peek_time() == 4.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_double_cancel_keeps_count_consistent(self):
        queue = EventQueue()
        event = queue.push(Event(time=1.0, callback=_noop))
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_cancel_of_popped_event_keeps_counter_consistent(self):
        """Regression: cancelling an already-fired event must not
        corrupt the live count (it once made step() believe the queue
        was empty while peek_time disagreed — an infinite run_until)."""
        queue = EventQueue()
        fired = queue.push(Event(time=1.0, callback=_noop))
        queued = queue.push(Event(time=2.0, callback=_noop))
        assert queue.pop() is fired
        queue.cancel(fired)  # late cancel of the popped event
        assert len(queue) == 1
        assert bool(queue)
        assert queue.pop() is queued

    def test_clear_empties_queue(self):
        queue = EventQueue()
        queue.push(Event(time=1.0, callback=_noop))
        queue.push(Event(time=2.0, callback=_noop))
        queue.clear()
        assert len(queue) == 0
        assert queue.peek_time() is None

    def test_cancel_after_clear_keeps_counter_consistent(self):
        """Regression: clear() left dropped events flagged as queued, so
        a later cancel() on one drove the live counter negative and
        corrupted __len__/__bool__."""
        queue = EventQueue()
        dropped = queue.push(Event(time=1.0, callback=_noop))
        queue.clear()
        queue.cancel(dropped)  # late cancel of a cleared event
        assert len(queue) == 0
        assert not queue
        survivor = queue.push(Event(time=2.0, callback=_noop))
        assert len(queue) == 1
        assert bool(queue)
        assert queue.pop() is survivor
