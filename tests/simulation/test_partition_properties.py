"""Property tests for the shard partitioner.

:class:`~repro.simulation.partition.ShardPartition` is the contract
the sharded engine's correctness rests on: if a node belonged to two
shards it would fire twice, if a link escaped both the intra and
boundary sets its deliveries would vanish, and a zero lookahead would
let a shard outrun messages still in flight toward it.  Hypothesis
generates random deployments and shard counts and checks each clause
of that contract; a final mutation self-test deliberately breaks an
assignment to prove the validator actually bites.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology import uniform_random_topology
from repro.simulation.partition import ShardPartition, grid_partition

# Deployment generator: enough nodes for several shards, a range wide
# enough that boundary links actually occur in most draws.
deployments = st.tuples(
    st.integers(min_value=4, max_value=60),  # n_nodes
    st.integers(min_value=0, max_value=2**31 - 1),  # placement seed
    st.floats(min_value=0.1, max_value=0.6),  # transmission range
)


def _topology(n_nodes, seed, radius):
    return uniform_random_topology(n_nodes, radius, np.random.default_rng(seed))


@given(deployments, st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_every_node_in_exactly_one_shard(deployment, n_shards):
    n_nodes, seed, radius = deployment
    n_shards = min(n_shards, n_nodes)
    topology = _topology(n_nodes, seed, radius)
    partition = grid_partition(topology, n_shards, lookahead=0.001)

    assert set(partition.assignment) == set(topology.node_ids)
    seen: set[int] = set()
    for shard in range(partition.n_shards):
        members = partition.shard_members(shard)
        assert not seen.intersection(members)
        seen.update(members)
    assert seen == set(topology.node_ids)
    # Balanced by construction: sizes differ by at most one.
    sizes = [len(s) for s in partition.shards]
    assert max(sizes) - min(sizes) <= 1


@given(deployments, st.integers(min_value=1, max_value=6))
@settings(max_examples=60, deadline=None)
def test_links_tile_into_intra_and_boundary(deployment, n_shards):
    n_nodes, seed, radius = deployment
    n_shards = min(n_shards, n_nodes)
    topology = _topology(n_nodes, seed, radius)
    partition = grid_partition(topology, n_shards, lookahead=0.001)

    intra = set(partition.intra_links)
    boundary = set(partition.boundary_links)
    assert not intra & boundary
    assert intra | boundary == set(topology.directed_links())
    owner = partition.assignment
    assert all(owner[a] == owner[b] for a, b in intra)
    assert all(owner[a] != owner[b] for a, b in boundary)


@given(deployments, st.integers(min_value=2, max_value=6))
@settings(max_examples=60, deadline=None)
def test_neighbor_bookkeeping_is_symmetric(deployment, n_shards):
    n_nodes, seed, radius = deployment
    n_shards = min(n_shards, n_nodes)
    topology = _topology(n_nodes, seed, radius)
    partition = grid_partition(topology, n_shards, lookahead=0.001)

    for shard in range(partition.n_shards):
        for other in partition.neighbor_shards(shard):
            assert other != shard
            assert shard in partition.neighbor_shards(other)


@given(deployments, st.integers(min_value=2, max_value=6))
@settings(max_examples=60, deadline=None)
def test_lookahead_must_be_positive_when_shards_talk(deployment, n_shards):
    n_nodes, seed, radius = deployment
    n_shards = min(n_shards, n_nodes)
    topology = _topology(n_nodes, seed, radius)
    partition = grid_partition(topology, n_shards, lookahead=0.5)

    if partition.boundary_links:
        # A zero window would let a shard fire past in-flight traffic.
        with pytest.raises(ValueError, match="lookahead"):
            ShardPartition(
                n_shards=n_shards,
                assignment=partition.assignment,
                topology=topology,
                lookahead=0.0,
            )
    else:
        # Fully disconnected shards never wait on each other.
        rebuilt = ShardPartition(
            n_shards=n_shards,
            assignment=partition.assignment,
            topology=topology,
            lookahead=0.0,
        )
        assert rebuilt.lookahead == 0.0


def test_validator_catches_broken_assignments():
    """Mutation self-test: each way of corrupting an assignment is caught."""
    topology = _topology(12, seed=3, radius=0.4)
    good = grid_partition(topology, 3, lookahead=0.001).assignment

    unassigned = dict(good)
    del unassigned[next(iter(good))]
    with pytest.raises(ValueError, match="without a shard"):
        ShardPartition(3, unassigned, topology, 0.001)

    phantom = dict(good)
    phantom[999] = 0
    with pytest.raises(ValueError, match="outside the topology"):
        ShardPartition(3, phantom, topology, 0.001)

    out_of_range = dict(good)
    out_of_range[next(iter(good))] = 7
    with pytest.raises(ValueError, match="out of range"):
        ShardPartition(3, out_of_range, topology, 0.001)

    with pytest.raises(ValueError, match="positive shard count"):
        ShardPartition(0, good, topology, 0.001)

    with pytest.raises(ValueError, match="positive shard count"):
        grid_partition(topology, 0, lookahead=0.001)

    with pytest.raises(ValueError, match="cannot split"):
        grid_partition(topology, 13, lookahead=0.001)
