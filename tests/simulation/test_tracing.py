"""Unit tests for the trace log."""

from __future__ import annotations

from repro.simulation.tracing import TraceLog


class TestTraceLog:
    def test_counts_by_kind(self):
        log = TraceLog()
        log.emit(0.0, "a")
        log.emit(1.0, "a", detail=1)
        log.emit(2.0, "b")
        assert log.count("a") == 2
        assert log.count("b") == 1
        assert log.count("missing") == 0

    def test_records_payloads(self):
        log = TraceLog()
        log.emit(3.0, "node.died", node=7)
        (record,) = log.of_kind("node.died")
        assert record.time == 3.0
        assert record.payload == {"node": 7}

    def test_keep_records_false_still_counts(self):
        log = TraceLog(keep_records=False)
        log.emit(0.0, "x")
        log.emit(0.0, "x")
        assert log.count("x") == 2
        assert log.of_kind("x") == []

    def test_subscribers_called(self):
        log = TraceLog()
        seen = []
        log.subscribe("alert", lambda record: seen.append(record.payload["level"]))
        log.emit(0.0, "alert", level=3)
        log.emit(0.0, "other", level=9)
        assert seen == [3]

    def test_clear_resets_counts_not_subscribers(self):
        log = TraceLog()
        seen = []
        log.subscribe("k", lambda record: seen.append(1))
        log.emit(0.0, "k")
        log.clear()
        assert log.count("k") == 0
        log.emit(1.0, "k")
        assert seen == [1, 1]


class TestSubscriptionLifecycle:
    def test_unsubscribe_removes_callback(self):
        log = TraceLog()
        seen = []
        callback = lambda record: seen.append(record.time)
        log.subscribe("k", callback)
        log.emit(0.0, "k")
        log.unsubscribe("k", callback)
        log.emit(1.0, "k")
        assert seen == [0.0]
        assert log.n_subscribers("k") == 0

    def test_unsubscribe_unknown_callback_is_noop(self):
        log = TraceLog()
        log.unsubscribe("k", lambda record: None)  # never subscribed
        log.subscribe("k", lambda record: None)
        log.unsubscribe("k", lambda record: None)  # different callback
        assert log.n_subscribers("k") == 1

    def test_subscribe_returns_cancelable_handle(self):
        log = TraceLog()
        seen = []
        handle = log.subscribe("k", lambda record: seen.append(1))
        assert handle.active
        log.emit(0.0, "k")
        handle.cancel()
        assert not handle.active
        handle.cancel()  # idempotent
        log.emit(1.0, "k")
        assert seen == [1]
        assert log.n_subscribers("k") == 0

    def test_duplicate_registration_unsubscribes_one_at_a_time(self):
        log = TraceLog()
        seen = []
        callback = lambda record: seen.append(1)
        log.subscribe("k", callback)
        log.subscribe("k", callback)
        log.emit(0.0, "k")
        assert seen == [1, 1]
        log.unsubscribe("k", callback)
        assert log.n_subscribers("k") == 1
        log.emit(1.0, "k")
        assert seen == [1, 1, 1]


class TestDispatchMutation:
    """``emit`` iterates a snapshot: callbacks that mutate the
    subscriber list mid-dispatch must not corrupt the in-flight one."""

    def test_subscribing_during_dispatch_defers_to_next_emit(self):
        log = TraceLog()
        late = []

        def register_late(record):
            log.subscribe("k", lambda r: late.append(r.time))

        log.subscribe("k", register_late)
        log.emit(0.0, "k")
        assert late == []  # not called for the in-flight record
        log.unsubscribe("k", register_late)
        log.emit(1.0, "k")
        assert late == [1.0]

    def test_unsubscribing_self_during_dispatch_keeps_others(self):
        log = TraceLog()
        seen = []
        handle = log.subscribe("k", lambda record: handle.cancel())
        log.subscribe("k", lambda record: seen.append(record.time))
        log.emit(0.0, "k")
        log.emit(1.0, "k")
        assert seen == [0.0, 1.0]
        assert log.n_subscribers("k") == 1

    def test_unsubscribing_peer_during_dispatch_still_calls_it_once(self):
        log = TraceLog()
        seen = []
        victim = log.subscribe("k", lambda record: seen.append("victim"))
        log.subscribe("k", lambda record: victim.cancel())
        # Dispatch order is registration order: the victim runs first
        # for the in-flight record, then its peer cancels it.
        log.emit(0.0, "k")
        assert seen == ["victim"]
        log.emit(1.0, "k")
        assert seen == ["victim"]


class TestResubscriptionCounters:
    """Regression: harness repetitions re-subscribe equal callbacks to
    fresh windows.  Delivery counters must belong to the subscription,
    and removal must go by identity, never by callback equality —
    otherwise a second run's counts bleed into (or cancel) the first's.
    """

    def test_sequential_subscriptions_count_independently(self):
        log = TraceLog()
        callback = lambda record: None
        first = log.subscribe("k", callback)
        log.emit(0.0, "k")
        log.emit(1.0, "k")
        first.cancel()
        second = log.subscribe("k", callback)  # the very same callback
        log.emit(2.0, "k")
        assert first.deliveries == 2
        assert second.deliveries == 1

    def test_cancel_removes_by_identity_not_equality(self):
        log = TraceLog()
        callback = lambda record: None
        survivor = log.subscribe("k", callback)
        log.subscribe("k", callback).cancel()  # twin cancels itself only
        log.emit(0.0, "k")
        assert survivor.active
        assert survivor.deliveries == 1
        assert log.n_subscribers("k") == 1

    def test_canceled_subscription_counter_is_frozen(self):
        log = TraceLog()
        handle = log.subscribe("k", lambda record: None)
        log.emit(0.0, "k")
        handle.cancel()
        log.emit(1.0, "k")
        assert handle.deliveries == 1

    def test_mark_and_counts_since_window(self):
        log = TraceLog()
        log.emit(0.0, "a")
        log.emit(1.0, "b")
        marker = log.mark()
        log.emit(2.0, "a")
        log.emit(3.0, "c")
        assert log.counts_since(marker) == {"a": 1, "c": 1}

    def test_counts_since_never_goes_negative(self):
        log = TraceLog()
        log.emit(0.0, "a")
        marker = log.mark()
        log.clear()
        assert log.counts_since(marker) == {}
