"""Unit tests for the trace log."""

from __future__ import annotations

from repro.simulation.tracing import TraceLog


class TestTraceLog:
    def test_counts_by_kind(self):
        log = TraceLog()
        log.emit(0.0, "a")
        log.emit(1.0, "a", detail=1)
        log.emit(2.0, "b")
        assert log.count("a") == 2
        assert log.count("b") == 1
        assert log.count("missing") == 0

    def test_records_payloads(self):
        log = TraceLog()
        log.emit(3.0, "node.died", node=7)
        (record,) = log.of_kind("node.died")
        assert record.time == 3.0
        assert record.payload == {"node": 7}

    def test_keep_records_false_still_counts(self):
        log = TraceLog(keep_records=False)
        log.emit(0.0, "x")
        log.emit(0.0, "x")
        assert log.count("x") == 2
        assert log.of_kind("x") == []

    def test_subscribers_called(self):
        log = TraceLog()
        seen = []
        log.subscribe("alert", lambda record: seen.append(record.payload["level"]))
        log.emit(0.0, "alert", level=3)
        log.emit(0.0, "other", level=9)
        assert seen == [3]

    def test_clear_resets_counts_not_subscribers(self):
        log = TraceLog()
        seen = []
        log.subscribe("k", lambda record: seen.append(1))
        log.emit(0.0, "k")
        log.clear()
        assert log.count("k") == 0
        log.emit(1.0, "k")
        assert seen == [1, 1]
