"""CLI coverage for ``repro fleet`` — parsing plus a real subprocess
control-plane round trip (start → status → reconfigure → stop)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cli import build_parser
from repro.fleet import read_status

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


class TestParser:
    def test_start_defaults(self):
        args = build_parser().parse_args(["fleet", "start", "--dir", "/tmp/f"])
        assert args.fleet_command == "start"
        assert args.dir == "/tmp/f"
        assert args.slice == 25.0
        assert args.slices is None
        assert args.checkpoint_every == 8
        assert not args.chaos
        assert not args.no_probes

    def test_start_options(self):
        args = build_parser().parse_args(
            ["fleet", "start", "--dir", "/tmp/f", "--slices", "40",
             "--chaos", "--coverage-floor", "0.5", "--msg-ceiling", "9"]
        )
        assert args.slices == 40
        assert args.chaos
        assert args.coverage_floor == 0.5
        assert args.msg_ceiling == 9.0

    def test_reconfigure_set_pairs(self):
        args = build_parser().parse_args(
            ["fleet", "reconfigure", "--dir", "/tmp/f",
             "--set", "loss=0.1", "--set", "cache_policy=round-robin"]
        )
        assert args.set == ["loss=0.1", "cache_policy=round-robin"]

    def test_parse_change_json_and_raw(self):
        from repro.cli import _parse_change

        change = _parse_change(["loss=0.25", "cache_policy=round-robin"])
        assert change == {"loss": 0.25, "cache_policy": "round-robin"}
        with pytest.raises(ValueError):
            _parse_change(["nonsense"])


def _cli(*argv: str, **kwargs):
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, timeout=120, env=env, **kwargs,
    )


@pytest.mark.soak
def test_fleet_control_plane_round_trip(tmp_path):
    """Operate a real fleet subprocess through its file control plane."""
    fleet_dir = str(tmp_path / "fleet")
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    start = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fleet", "start",
         "--dir", fleet_dir, "--nodes", "16", "--seed", "3",
         "--slice", "5", "--pace", "0.2", "--poll", "0.05",
         "--checkpoint-every", "4", "--slices", "500"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        # The runner publishes status.json once slicing begins.
        deadline = time.monotonic() + 60.0
        status = None
        while time.monotonic() < deadline:
            status = read_status(fleet_dir)
            if status is not None and status.get("slices_done", 0) >= 1:
                break
            assert start.poll() is None, (
                f"fleet start died early:\n{start.stdout.read()}"
            )
            time.sleep(0.1)
        assert status is not None and status["slices_done"] >= 1
        assert status["running"] is True
        assert status["n_nodes"] == 16

        # `fleet status` renders the same file.
        shown = _cli("fleet", "status", "--dir", fleet_dir)
        assert shown.returncode == 0, shown.stderr
        assert json.loads(shown.stdout)["n_nodes"] == 16

        # A reconfiguration submitted through the control plane lands.
        reconf = _cli("fleet", "reconfigure", "--dir", fleet_dir,
                      "--set", "rotation_probability=0.5", "--set", "loss=0.05")
        assert reconf.returncode == 0, reconf.stderr
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            status = read_status(fleet_dir)
            if status and status.get("reconfigurations", 0) >= 1:
                break
            time.sleep(0.1)
        assert status["reconfigurations"] >= 1, "reconfiguration never applied"
        assert status["rotation_probability"] == 0.5

        # `fleet stop --wait` shuts the run down and confirms it.
        stop = _cli("fleet", "stop", "--dir", fleet_dir, "--wait", "60")
        assert stop.returncode == 0, stop.stderr
        assert "stopped" in stop.stdout
        out, _ = start.communicate(timeout=60)
        assert start.returncode == 0, out
        assert "reconfiguration(s)" in out

        final = read_status(fleet_dir)
        assert final["running"] is False
        assert final["reconfigurations"] >= 1
        assert final["checkpoints"], "no ring checkpoints on disk"
        assert final["stream_records"] > 0
    finally:
        if start.poll() is None:
            start.kill()
            start.wait(timeout=30)


@pytest.mark.soak
def test_fleet_status_without_a_fleet_exits_2(tmp_path):
    result = _cli("fleet", "status", "--dir", str(tmp_path / "nothing"))
    assert result.returncode == 2
    assert "no fleet status" in result.stderr
