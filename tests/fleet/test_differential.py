"""The fleet differential proof: sliced operation is trajectory-neutral.

Each case drives the same deployment twice:

* **reference** — a scripted single-shot loop calling
  ``FleetState.step`` directly, applying the mid-flight
  reconfiguration *directly* to the live runtime at the boundary;
* **fleet** — the full :class:`~repro.fleet.FleetRunner` machinery:
  rotating checkpoint ring, JSONL streaming, and the reconfiguration
  applied as **checkpoint → mutate → restore** through the ring.

Both run under an armed background chaos schedule.  The outcomes must
be field-identical: whole-sim and per-component digests, every trace
record, message counters, RunReport rows, per-round digests, coverage
samples, SLO evaluations and the reconfiguration log.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetRunner, FleetState
from repro.persist import load_checkpoint, state_digest

from tests.fleet.conftest import (
    N_SLICES,
    RECONFIG_AT,
    SLICE,
    assert_outcomes_equal,
    build_fleet_runtime,
    make_state,
    outcome,
    reconfig_change,
    run_reference,
)

#: (policy, loss) cells; the first runs in tier-1, the rest are soak.
MATRIX = [
    ("model-aware", 0.0),
    pytest.param("model-aware", 0.15, marks=pytest.mark.soak),
    pytest.param("round-robin", 0.0, marks=pytest.mark.soak),
    pytest.param("round-robin", 0.15, marks=pytest.mark.soak),
]


def run_fleet(seed: int, policy: str, loss: float, tmp_path, change=None) -> dict:
    """The fleet-mode run the reference is compared against."""
    state = make_state(seed, policy, loss)
    runner = FleetRunner(
        state, SLICE, tmp_path / "fleet", checkpoint_every=2, keep_checkpoints=3
    )
    runner.run(RECONFIG_AT)
    if change is not None:
        runner.request_reconfigure(change)
    runner.run(N_SLICES - RECONFIG_AT)
    return outcome(runner.state)


@pytest.mark.parametrize("policy,loss", MATRIX)
def test_fleet_matches_scripted_reference(policy, loss, tmp_path):
    change = reconfig_change(policy)
    reference = run_reference(7, policy, loss, change=change)
    fleet = run_fleet(7, policy, loss, tmp_path, change=change)
    assert_outcomes_equal(fleet, reference)
    # Non-vacuity: the reconfiguration actually happened and chaos ran.
    assert fleet["reconfigurations"] == [
        {"slice": RECONFIG_AT, "change": change}
    ]
    assert fleet["chaos_plans"] >= 2
    assert fleet["coverage"], "probes never produced a coverage sample"


@pytest.mark.soak
def test_fleet_resumes_from_the_ring(tmp_path):
    """Kill the runner mid-run; a new runner restored from the newest
    ring checkpoint finishes on the identical trajectory."""
    policy, loss, seed = "model-aware", 0.15, 11
    reference = run_reference(seed, policy, loss, change=None)

    state = make_state(seed, policy, loss)
    runner = FleetRunner(
        state, SLICE, tmp_path / "fleet", checkpoint_every=2, keep_checkpoints=3
    )
    runner.run(8)  # slices 0..7; checkpoint landed at slice 8's boundary
    del runner, state  # "crash"

    restored = load_checkpoint(
        sorted((tmp_path / "fleet" / "checkpoints").glob("*.ckpt"))[-1],
        verify=True,
    )
    assert restored.slices_done == 8
    resumed = FleetRunner(restored, SLICE, tmp_path / "fleet", checkpoint_every=2)
    resumed.run(N_SLICES - restored.slices_done)
    assert_outcomes_equal(outcome(resumed.state), reference)


def test_irregular_slicing_equals_single_advance():
    """Pure slicing (no probes, no monitor reads that consume anything)
    at arbitrary irregular boundaries equals one uninterrupted advance."""
    def prepare(seed):
        runtime = build_fleet_runtime(seed)
        runtime.train(duration=6.0)
        runtime.run_election()
        runtime.start_maintenance()
        return runtime

    single = prepare(3)
    single.advance_to(90.0)

    sliced = prepare(3)
    for duration in (1.0, 8.5, 0.25, 13.0, 3.0, 20.0):
        sliced.run_slice(duration)
    sliced.advance_to(90.0)

    assert state_digest(sliced).whole == state_digest(single).whole
    assert sliced.simulator.events_processed == single.simulator.events_processed
    assert (
        sliced.simulator.trace.records == single.simulator.trace.records
    )


def test_reconfigure_roundtrip_is_identity(tmp_path):
    """apply_change after a checkpoint/restore round trip equals
    apply_change on the live object — the rolling-reconfig contract in
    isolation (each mutation family separately)."""
    from repro.fleet import apply_change
    from repro.persist import save_checkpoint

    for change in (
        {"loss": 0.1},
        {"rotation_probability": 0.4, "member_expiry_periods": 3.0},
        {"cache_policy": "round-robin", "cache_bytes": 512},
        {"snoop_probability": 0.5},
    ):
        direct = make_state(5, chaos=False)
        direct.runtime.run_slice(12.0)
        apply_change(direct, change)
        direct.runtime.run_slice(24.0)

        roundtrip = make_state(5, chaos=False)
        roundtrip.runtime.run_slice(12.0)
        path = tmp_path / "rt.ckpt"
        save_checkpoint(roundtrip, path)
        roundtrip = load_checkpoint(path, verify=True)
        apply_change(roundtrip, change)
        roundtrip.runtime.run_slice(24.0)

        assert (
            state_digest(roundtrip).whole == state_digest(direct).whole
        ), f"round trip diverged for {change}"


@pytest.mark.soak
def test_streaming_and_checkpointing_are_read_only(tmp_path):
    """A runner with every output device on (stream, trace streaming,
    metrics snapshots, dense checkpoints) matches one with all off."""
    bare_state = make_state(9)
    bare = FleetRunner(bare_state, SLICE)
    bare.run(N_SLICES)

    observed_state = make_state(9)
    observed = FleetRunner(
        observed_state,
        SLICE,
        tmp_path / "fleet",
        checkpoint_every=1,
        stream_trace=True,
    )
    observed.run(N_SLICES)

    assert_outcomes_equal(outcome(observed.state), outcome(bare.state))
    # ... and the stream really was written.
    records = observed.stream.read_all()
    kinds = {record["record"] for record in records}
    assert {"slice", "metrics", "trace"} <= kinds
