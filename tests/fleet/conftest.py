"""Shared machinery for the fleet soak/differential suite.

The suite proves the fleet layer is *trajectory-neutral*: a deployment
driven in bounded slices by :class:`~repro.fleet.FleetRunner` — with
rotating checkpoints, JSONL streaming, a background chaos schedule and
a mid-flight rolling reconfiguration applied as checkpoint → mutate →
restore — must be field-identical (digests, trace records, report
rows, coverage samples, SLO evaluations) to the equivalent scripted
run that applies the same mutation directly to the live runtime.

Everything is driven only by runtime-owned random streams, so the
complete source of randomness rides inside fleet checkpoints; the
background chaos schedule draws each plan from ``(seed, plan index)``
and is therefore a pure function of the configuration.

Heavy matrix cases carry the ``soak`` marker (deselected from tier-1
by addopts; CI's ``fleet`` job runs them).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.experiments.harness import make_cache_factory
from repro.faults import ChaosConfig
from repro.fleet import FleetState, SLOConfig
from repro.network.links import GlobalLoss
from repro.network.topology import Topology
from repro.obs.report import RunReport
from repro.persist import RoundDigestRecorder, state_digest

N_NODES = 12
PERIOD = 10.0
SLICE = 6.0
N_SLICES = 12
RECONFIG_AT = 6


def build_fleet_runtime(
    seed: int, policy: str = "model-aware", loss: float = 0.0
) -> SnapshotRuntime:
    """A small all-in-range network with strongly correlated ramps.

    Correlated data guarantees representability (the chaos-suite
    construction), so structural churn comes from the background fault
    schedule and the reconfigurations, not from modelling noise.
    """
    base = np.linspace(0.0, 30.0, 400)
    dataset = Dataset(np.stack([base + 0.3 * i for i in range(N_NODES)]))
    topology = Topology([(0.08 * i, 0.0) for i in range(N_NODES)], ranges=2.0)
    config = ProtocolConfig(
        threshold=5.0,
        heartbeat_period=PERIOD,
        rotation_probability=0.1,
        member_expiry_periods=2.0,
        # Shrink the election settle window (~121 -> ~13 time units) so
        # the whole differential matrix stays fast, as tests/persist/.
        rule4_retry=0.1,
    )
    runtime = SnapshotRuntime(
        topology,
        dataset,
        config,
        seed=seed,
        loss_model=GlobalLoss(loss),
        cache_factory=make_cache_factory(policy, 1024),
        keep_trace_records=True,
    )
    runtime.round_digests = RoundDigestRecorder(runtime)
    return runtime


def chaos_config(seed: int) -> ChaosConfig:
    """The background fault-draw distribution every fleet case arms."""
    return ChaosConfig(
        seed=seed,
        n_nodes=N_NODES,
        n_faults=4,
        heartbeat_period=PERIOD,
        threshold=5.0,
    )


def make_state(
    seed: int,
    policy: str = "model-aware",
    loss: float = 0.0,
    slo: SLOConfig | None = None,
    chaos: bool = True,
    probe_area: float | None = 0.4,
) -> FleetState:
    """Train, elect, start maintenance, arm background chaos; fleet-ready."""
    runtime = build_fleet_runtime(seed, policy, loss)
    runtime.train(duration=6.0)
    runtime.run_election()
    runtime.start_maintenance()
    state = FleetState(runtime, slo=slo, probe_area=probe_area)
    if chaos:
        state.attach_chaos(chaos_config(seed), interval=30.0, first_delay=8.0)
    return state


def reconfig_change(policy: str) -> dict:
    """The mid-flight change: swap to the *other* cache policy, nudge
    the rotation strategy, and degrade the link — one mutation from
    each supported family."""
    other = "round-robin" if policy == "model-aware" else "model-aware"
    return {
        "cache_policy": other,
        "cache_bytes": 1024,
        "rotation_probability": 0.3,
        "loss": 0.05,
    }


def outcome(state: FleetState) -> dict:
    """Everything the differential comparison asserts on, in one dict."""
    runtime = state.runtime
    digest = state_digest(state)
    report = RunReport.capture(
        runtime, coverage=state.coverage, meta={"case": "fleet"}
    )
    return {
        "whole": digest.whole,
        "components": digest.components,
        "trace_records": list(runtime.simulator.trace.records),
        "trace_counts": dict(runtime.simulator.trace.counts),
        "sent": dict(runtime.stats.sent),
        "delivered": dict(runtime.stats.delivered),
        "dropped": dict(runtime.stats.dropped),
        "events_processed": runtime.simulator.events_processed,
        "now": runtime.simulator.now,
        "report_meta": report.meta,
        "report_rows": report.rows,
        "round_digests": list(runtime.round_digests.rounds),
        "coverage": list(state.coverage.samples),
        "violations": list(state.monitor.violations),
        "reconfigurations": list(state.reconfigurations),
        "slices_done": state.slices_done,
        "chaos_plans": state.chaos.plans_armed if state.chaos else 0,
    }


def assert_outcomes_equal(actual: dict, reference: dict) -> None:
    """Field-by-field comparison, so a divergence names what broke."""
    assert actual["slices_done"] == reference["slices_done"]
    assert actual["chaos_plans"] == reference["chaos_plans"]
    assert actual["events_processed"] == reference["events_processed"]
    assert actual["now"] == reference["now"]
    assert actual["trace_counts"] == reference["trace_counts"]
    assert actual["trace_records"] == reference["trace_records"]
    assert actual["sent"] == reference["sent"]
    assert actual["delivered"] == reference["delivered"]
    assert actual["dropped"] == reference["dropped"]
    assert actual["coverage"] == reference["coverage"]
    assert actual["violations"] == reference["violations"]
    assert actual["reconfigurations"] == reference["reconfigurations"]
    assert actual["report_meta"] == reference["report_meta"]
    assert actual["report_rows"] == reference["report_rows"]
    assert actual["round_digests"] == reference["round_digests"]
    assert actual["components"] == reference["components"]
    assert actual["whole"] == reference["whole"]


def run_reference(
    seed: int,
    policy: str,
    loss: float,
    change: dict | None = None,
    reconfig_at: int = RECONFIG_AT,
    n_slices: int = N_SLICES,
    slo: SLOConfig | None = None,
) -> dict:
    """The scripted single-shot run: same slice schedule, no runner, no
    disk — the reconfiguration is applied *directly* to the live state."""
    state = make_state(seed, policy, loss, slo=slo)
    for index in range(n_slices):
        if change is not None and index == reconfig_at:
            state.reconfigure(change)
        state.step(SLICE)
    return outcome(state)
