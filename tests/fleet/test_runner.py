"""Unit coverage for the fleet machinery itself.

The differential suite proves trajectory-neutrality; this file pins the
operational contracts — ring rotation, stream rotation, reconfiguration
validation, the background thread lifecycle and the serving hand-off.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.fleet import FleetRunner, apply_change
from repro.obs.stream import JsonlRing
from repro.persist.ring import CheckpointRing

from tests.fleet.conftest import SLICE, make_state


# ----------------------------------------------------------------------
# JsonlRing
# ----------------------------------------------------------------------


def test_jsonl_ring_rotates_and_prunes(tmp_path):
    ring = JsonlRing(tmp_path, max_records=3, keep_segments=2)
    for i in range(10):
        ring.append({"record": "x", "i": i})
    ring.close()
    assert ring.records_written == 10
    paths = ring.segment_paths()
    assert len(paths) <= 2, "prune kept more than keep_segments"
    # The newest records survive; the oldest were rotated away.
    kept = [record["i"] for record in ring.iter_records()]
    assert kept == sorted(kept)
    assert kept[-1] == 9
    assert 0 not in kept


def test_jsonl_ring_resumes_past_existing_segments(tmp_path):
    first = JsonlRing(tmp_path, max_records=100)
    first.append({"record": "a"})
    first.close()
    second = JsonlRing(tmp_path, max_records=100)
    second.append({"record": "b"})
    second.close()
    paths = [path.name for path in second.segment_paths()]
    assert len(paths) == 2, "resume overwrote or appended into the old segment"
    records = second.read_all()
    assert [r["record"] for r in records] == ["a", "b"]


def test_jsonl_ring_read_filters_and_tolerates_torn_tail(tmp_path):
    ring = JsonlRing(tmp_path, max_records=100)
    ring.append({"record": "slice", "i": 0})
    ring.append({"record": "metrics", "i": 1})
    ring.close()
    # A writer crash mid-line: readers must skip the torn tail.
    with open(ring.segment_paths()[0], "a", encoding="utf-8") as handle:
        handle.write('{"record": "sli')
    assert [r["i"] for r in ring.read_all(kind="slice")] == [0]
    assert len(ring.read_all()) == 2


def test_jsonl_ring_validates_parameters(tmp_path):
    with pytest.raises(ValueError):
        JsonlRing(tmp_path, max_records=0)
    with pytest.raises(ValueError):
        JsonlRing(tmp_path, keep_segments=0)


# ----------------------------------------------------------------------
# CheckpointRing
# ----------------------------------------------------------------------


def test_checkpoint_ring_rotates_and_restores(tmp_path):
    ring = CheckpointRing(tmp_path, keep=3)
    for i in range(7):
        ring.save({"payload": i}, meta={"i": i})
    assert len(ring.paths()) == 3, "ring kept more than keep checkpoints"
    assert ring.load_latest(verify=True) == {"payload": 6}
    header = ring.header()
    assert header["meta"]["i"] == 6
    assert header["meta"]["ring_index"] == 6
    # A fresh handle on the same directory resumes past the old indices.
    resumed = CheckpointRing(tmp_path, keep=3)
    path = resumed.save({"payload": 7})
    assert path == sorted(resumed.paths())[-1]
    assert resumed.load_latest() == {"payload": 7}


def test_checkpoint_ring_empty(tmp_path):
    ring = CheckpointRing(tmp_path)
    assert ring.paths() == []
    assert ring.latest() is None


# ----------------------------------------------------------------------
# apply_change validation
# ----------------------------------------------------------------------


def test_apply_change_rejects_unknown_keys():
    state = make_state(31, chaos=False)
    with pytest.raises(ValueError, match="unknown reconfiguration keys"):
        apply_change(state, {"heartbeat_period": 5.0})


def test_apply_change_rejects_loss_and_loss_model_together():
    state = make_state(31, chaos=False)
    from repro.network.links import GlobalLoss

    with pytest.raises(ValueError, match="not both"):
        apply_change(state, {"loss": 0.1, "loss_model": GlobalLoss(0.1)})


def test_apply_change_rejects_cache_bytes_alone():
    state = make_state(31, chaos=False)
    with pytest.raises(ValueError, match="requires 'cache_policy'"):
        apply_change(state, {"cache_bytes": 512})


def test_cache_swap_requires_quiescent_router():
    state = make_state(31, chaos=False)
    router = state.runtime.observation_router
    assert router is not None and not router.pending
    router.pending.append(object())  # mid-round, not a slice boundary
    try:
        with pytest.raises(RuntimeError, match="quiescent"):
            apply_change(state, {"cache_policy": "round-robin"})
    finally:
        router.pending.clear()


def test_apply_change_swaps_loss_under_a_fault_overlay():
    """With an injector armed, the overlay stays in place and only its
    base is replaced — bursts/partitions keep composing."""
    from repro.faults import FaultInjector
    from repro.faults.injector import _FaultOverlayLoss
    from repro.network.links import GlobalLoss

    state = make_state(31)  # chaos=True arms the overlay
    radio = state.runtime.radio
    assert isinstance(radio.loss_model, _FaultOverlayLoss)
    overlay = radio.loss_model
    apply_change(state, {"loss": 0.25})
    assert radio.loss_model is overlay, "overlay was clobbered"
    assert isinstance(overlay.base, GlobalLoss)


# ----------------------------------------------------------------------
# FleetRunner lifecycle
# ----------------------------------------------------------------------


def test_runner_validates_parameters():
    state = make_state(33, chaos=False)
    with pytest.raises(ValueError):
        FleetRunner(state, 0.0)
    with pytest.raises(ValueError):
        FleetRunner(state, SLICE, checkpoint_every=-1)


def test_run_slice_record_and_status_shape(tmp_path):
    state = make_state(33, chaos=False)
    runner = FleetRunner(state, SLICE, tmp_path / "fleet", checkpoint_every=2)
    record = runner.run_slice()
    assert record["record"] == "slice"
    assert record["index"] == 0
    assert record["alive"] == 12
    assert record["sim_time"] == pytest.approx(state.runtime.now)
    status = runner.status()
    json.dumps(status)  # the status endpoint is machine-readable
    assert status["slices_done"] == 1
    assert status["running"] is False
    assert status["pending_reconfigurations"] == 0
    assert status["cache_policy"]
    # checkpoint_every=2: first checkpoint lands after the second slice.
    assert status["checkpoints"] == []
    runner.run_slice()
    assert len(runner.status()["checkpoints"]) == 1
    assert runner.status()["stream_records"] > 0


def test_background_thread_honors_max_slices(tmp_path):
    state = make_state(35, chaos=False)
    runner = FleetRunner(state, SLICE, max_slices=5, pace=0.0)
    with runner:
        deadline = time.monotonic() + 30.0
        while runner.running and time.monotonic() < deadline:
            time.sleep(0.01)
    assert state.slices_done == 5
    assert runner.last_error is None
    assert runner.status()["running"] is False


def test_background_thread_stop_is_prompt():
    state = make_state(35, chaos=False)
    runner = FleetRunner(state, SLICE, pace=10.0)  # would sleep 10s/slice
    runner.start()
    deadline = time.monotonic() + 30.0
    while state.slices_done < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    started = time.monotonic()
    runner.stop(timeout=30.0)
    assert time.monotonic() - started < 5.0, "stop() waited out the pace sleep"
    assert not runner.running


def test_background_thread_surfaces_errors():
    state = make_state(35, chaos=False)
    runner = FleetRunner(state, SLICE, max_slices=3)

    def explode(*args, **kwargs):
        raise RuntimeError("boom at slice boundary")

    state.step = explode
    runner.start()
    deadline = time.monotonic() + 30.0
    while runner.running and time.monotonic() < deadline:
        time.sleep(0.01)
    assert "boom" in runner.status()["error"]
    with pytest.raises(RuntimeError, match="boom"):
        runner.stop()


def test_reconfigure_request_applies_at_next_boundary(tmp_path):
    state = make_state(37, chaos=False)
    runner = FleetRunner(state, SLICE, tmp_path / "fleet")
    runner.run(2)
    before = state.runtime.config.rotation_probability
    runner.request_reconfigure({"rotation_probability": 0.75})
    assert runner.status()["pending_reconfigurations"] == 1
    # Nothing applied until a slice runs.
    assert runner.state.runtime.config.rotation_probability == before
    runner.run_slice()
    assert runner.state.runtime.config.rotation_probability == 0.75
    assert runner.state.reconfigurations == [
        {"slice": 2, "change": {"rotation_probability": 0.75}}
    ]
    # The round trip emitted a stream record and left a ring checkpoint.
    kinds = [r["record"] for r in runner.stream.read_all()]
    assert "reconfigure" in kinds
    assert runner.ring.header()["meta"]["reconfigure"] == {
        "rotation_probability": 0.75
    }


def test_reconfigure_roundtrip_without_a_ring_uses_scratch():
    state = make_state(37, chaos=False)
    runner = FleetRunner(state, SLICE)  # no directory at all
    runner.run(1)
    runner.request_reconfigure({"snoop_probability": 0.5})
    runner.run_slice()
    assert runner.state.runtime.config.snoop_probability == 0.5
    # The restored state replaced the original object graph.
    assert runner.state is not state


# ----------------------------------------------------------------------
# serving attachment
# ----------------------------------------------------------------------


def test_frontend_serves_while_slicing_and_survives_reconfigure():
    from repro.query.ast import Query
    from repro.query.spatial import Rect
    from repro.serving.frontend import QueryFrontEnd

    state = make_state(39, chaos=False)
    frontend = QueryFrontEnd(state.runtime).start()
    runner = FleetRunner(state, SLICE, frontend=frontend, pace=0.005)
    query = Query(region=Rect(-1.0, -1.0, 2.0, 1.0), use_snapshot=True)
    try:
        runner.start()
        futures = [frontend.submit(query) for _ in range(8)]
        results = [future.result(timeout=30.0) for future in futures]
        assert all(result.result.reports for result in results)
        runner.request_reconfigure({"rotation_probability": 0.5})
        deadline = time.monotonic() + 30.0
        while runner.state.reconfigurations == [] and time.monotonic() < deadline:
            time.sleep(0.01)
        assert runner.state.reconfigurations, "reconfiguration never applied"
        # The front end now serves the restored runtime...
        assert frontend.runtime is runner.state.runtime
        assert frontend.runtime is not state.runtime
        # ... and keeps answering on it.
        after = frontend.submit(query).result(timeout=30.0)
        assert after.result.reports
        status = runner.status()
        assert status["serving"]["served"] >= 9
    finally:
        runner.stop()
        frontend.stop()


def test_frontend_stats_feed_the_p99_objective():
    from repro.fleet import SLOConfig
    from repro.query.ast import Query
    from repro.query.spatial import Rect
    from repro.serving.frontend import QueryFrontEnd

    state = make_state(41, slo=SLOConfig(max_p99_seconds=1e-12), chaos=False)
    frontend = QueryFrontEnd(state.runtime).start()
    runner = FleetRunner(state, SLICE, frontend=frontend)
    query = Query(region=Rect(-1.0, -1.0, 2.0, 1.0), use_snapshot=True)
    try:
        runner.run_slice()
        assert state.monitor.violations == []  # nothing served yet
        frontend.submit(query).result(timeout=30.0)
        runner.run_slice()
        objectives = [v["objective"] for v in state.monitor.violations]
        assert "serving_p99" in objectives, (
            "served traffic above an impossible p99 ceiling never fired"
        )
    finally:
        frontend.stop()
