"""SLO monitor behaviour and non-vacuity (mutation self-tests).

The style of ``tests/faults``: every objective is shown to *fire* on a
genuinely injected regression and to stay silent on the healthy run —
a monitor that never fires proves nothing.
"""

from __future__ import annotations

import json

import pytest

from repro.faults import FaultInjector
from repro.fleet import FleetRunner, SLOConfig, SLOMonitor

from tests.fleet.conftest import SLICE, build_fleet_runtime, make_state


def test_healthy_run_produces_no_violations():
    state = make_state(
        21,
        slo=SLOConfig(
            coverage_floor=0.3,
            coverage_window=4,
            max_messages_per_node_per_round=50.0,
        ),
        chaos=False,
    )
    runner = FleetRunner(state, SLICE)
    runner.run(10)
    assert state.monitor.violations == []
    assert state.monitor.evaluations == 10
    assert len(state.coverage) == 10


def test_injected_coverage_regression_fires_the_floor():
    """Crash three quarters of the network permanently mid-run: once
    their cached memberships expire the probes lose those answers, the
    windowed mean drops through the floor, and the monitor emits
    machine-readable violation records.

    Probes use ``probe_area=4.0`` — a side-2 square always covers the
    whole node line, so every probe matches every node and a dead
    majority must show up in coverage.  (Crashing only the current
    representative proves nothing: maintenance re-elects and the alive
    members keep answering directly — the network self-heals.)
    """
    slo = SLOConfig(coverage_floor=0.6, coverage_window=2)
    state = make_state(21, slo=slo, chaos=False, probe_area=4.0)
    runner = FleetRunner(state, SLICE)
    runner.run(4)
    assert state.monitor.violations == []

    runtime = state.runtime
    injector = FaultInjector(runtime)
    for node_id in sorted(runtime.nodes)[:9]:
        injector.crash(node_id)
    runner.run(8)

    violations = state.monitor.violations
    assert violations, "injected regression never tripped the coverage floor"
    assert all(v["record"] == "slo_violation" for v in violations)
    assert all(v["objective"] == "coverage_floor" for v in violations)
    first = violations[0]
    assert first["value"] < first["limit"] == 0.6
    assert first["slice"] >= 4
    # The first post-crash probes still read 1.0: the representative
    # answers for freshly-dead members until expiry — the paper's
    # snapshot coverage story (Fig. 10) showing through the monitor.
    assert 1.0 in state.coverage.samples[4:]
    # Machine-readable: every field JSON-serializable.
    json.dumps(violations)


def test_unmutated_twin_of_the_regression_run_stays_clean():
    """The same run without the injected crashes produces zero
    violations — the firing above is attributable to the mutation."""
    slo = SLOConfig(coverage_floor=0.6, coverage_window=2)
    state = make_state(21, slo=slo, chaos=False, probe_area=4.0)
    runner = FleetRunner(state, SLICE)
    runner.run(12)
    assert state.monitor.violations == []


def test_message_ceiling_fires_on_an_absurd_bound():
    """A ceiling below any real round's cost must fire on the first
    evaluated round — proves the Fig. 15 accounting is actually read."""
    slo = SLOConfig(max_messages_per_node_per_round=0.001)
    state = make_state(23, slo=slo, chaos=False)
    runner = FleetRunner(state, SLICE)
    runner.run(10)
    fired = [
        v for v in state.monitor.violations
        if v["objective"] == "messages_per_node_per_round"
    ]
    assert fired, "no maintenance round ever exceeded an absurd ceiling"
    assert fired[0]["value"] > fired[0]["limit"]

    # ... and a generous ceiling stays silent on the identical run.
    state2 = make_state(23, slo=SLOConfig(max_messages_per_node_per_round=1e6),
                        chaos=False)
    FleetRunner(state2, SLICE).run(10)
    assert state2.monitor.violations == []


def test_message_ceiling_windows_per_evaluation():
    """The delta accounting resets between evaluations: rounds already
    judged are not re-judged (the mark advances)."""
    runtime = build_fleet_runtime(25)
    runtime.train(duration=6.0)
    runtime.run_election()
    runtime.start_maintenance()
    monitor = SLOMonitor(SLOConfig(max_messages_per_node_per_round=1e6))
    runtime.advance_to(runtime.now + 3 * 10.0)
    monitor.evaluate(runtime, [], 0)
    mark_after_first = monitor._round_mark
    assert mark_after_first[0] > 0, "no rounds were accounted at all"
    # No new rounds between evaluations -> the mark must not move.
    monitor.evaluate(runtime, [], 1)
    assert monitor._round_mark == mark_after_first


def test_p99_objective_reads_frontend_stats():
    runtime = build_fleet_runtime(27)
    monitor = SLOMonitor(SLOConfig(max_p99_seconds=0.5))
    # No stats / no served traffic: silent.
    assert monitor.evaluate(runtime, [], 0) == []
    assert monitor.evaluate(runtime, [], 1, frontend_stats={"served": 0}) == []
    # Served traffic above the ceiling: fires.
    fired = monitor.evaluate(
        runtime, [], 2, frontend_stats={"served": 10, "p99_seconds": 0.9}
    )
    assert [v["objective"] for v in fired] == ["serving_p99"]
    assert fired[0]["value"] == pytest.approx(0.9)
    # Below the ceiling: silent again.
    assert (
        monitor.evaluate(
            runtime, [], 3, frontend_stats={"served": 10, "p99_seconds": 0.1}
        )
        == []
    )


def test_disabled_objectives_never_fire():
    monitor = SLOMonitor(SLOConfig())
    runtime = build_fleet_runtime(29)
    assert monitor.evaluate(runtime, [0.0, 0.0], 0) == []
    assert monitor.violations == []
