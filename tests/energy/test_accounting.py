"""Tests for the energy ledger and cost model."""

from __future__ import annotations

import pytest

from repro.energy.accounting import EnergyLedger
from repro.energy.costs import PAPER_COST_MODEL, EnergyCostModel


class TestCostModel:
    def test_paper_values(self):
        """§6.2: battery = 500 transmissions, cache update = tx / 10."""
        assert PAPER_COST_MODEL.transmit == 1.0
        assert PAPER_COST_MODEL.receive == 0.0
        assert PAPER_COST_MODEL.cpu_cache_update == pytest.approx(0.1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            EnergyCostModel(transmit=-1.0)


class TestLedger:
    def test_record_and_totals(self):
        ledger = EnergyLedger()
        ledger.record(0, "transmit", 2.0)
        ledger.record(0, "cpu", 0.5)
        ledger.record(1, "transmit", 1.0)
        assert ledger.node_total(0) == pytest.approx(2.5)
        assert ledger.total("transmit") == pytest.approx(3.0)
        assert ledger.total() == pytest.approx(3.5)

    def test_breakdown(self):
        ledger = EnergyLedger()
        ledger.record(3, "receive", 0.25)
        assert ledger.node_breakdown(3) == {
            "transmit": 0.0,
            "receive": 0.25,
            "cpu": 0.0,
        }

    def test_unknown_category_rejected(self):
        ledger = EnergyLedger()
        with pytest.raises(ValueError):
            ledger.record(0, "flux", 1.0)
        with pytest.raises(ValueError):
            ledger.total("flux")

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            EnergyLedger().record(0, "cpu", -1.0)

    def test_top_consumers_sorted(self):
        ledger = EnergyLedger()
        ledger.record(0, "transmit", 1.0)
        ledger.record(1, "transmit", 5.0)
        ledger.record(2, "transmit", 3.0)
        assert ledger.top_consumers(2) == [(1, 5.0), (2, 3.0)]

    def test_clear(self):
        ledger = EnergyLedger()
        ledger.record(0, "transmit", 1.0)
        ledger.clear()
        assert ledger.total() == 0.0
        assert ledger.node_total(0) == 0.0
