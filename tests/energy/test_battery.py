"""Tests for the battery model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.battery import Battery


class TestFiniteBattery:
    def test_draw_reduces_charge(self):
        battery = Battery(10.0)
        assert battery.draw(3.0) == 3.0
        assert battery.charge == pytest.approx(7.0)
        assert battery.spent == pytest.approx(3.0)

    def test_overdraw_clamped(self):
        battery = Battery(2.0)
        assert battery.draw(5.0) == 2.0
        assert battery.depleted
        assert battery.charge == 0.0

    def test_dead_battery_draws_nothing(self):
        battery = Battery(1.0)
        battery.draw(1.0)
        assert battery.draw(1.0) == 0.0

    def test_depletion_callback_fires_once(self):
        fired = []
        battery = Battery(1.0, on_depleted=lambda: fired.append(1))
        battery.draw(0.5)
        assert fired == []
        battery.draw(0.6)
        battery.draw(1.0)
        assert fired == [1]

    def test_zero_capacity_starts_depleted(self):
        fired = []
        battery = Battery(0.0, on_depleted=lambda: fired.append(1))
        assert battery.depleted
        assert fired == [1]

    def test_fraction_remaining(self):
        battery = Battery(4.0)
        battery.draw(1.0)
        assert battery.fraction_remaining == pytest.approx(0.75)

    def test_negative_draw_rejected(self):
        with pytest.raises(ValueError):
            Battery(1.0).draw(-0.1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Battery(-1.0)

    def test_can_afford(self):
        battery = Battery(2.0)
        assert battery.can_afford(2.0)
        assert not battery.can_afford(2.1)

    @given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), max_size=30))
    @settings(max_examples=50)
    def test_charge_never_negative_and_spent_bounded(self, draws):
        battery = Battery(25.0)
        for amount in draws:
            battery.draw(amount)
            assert battery.charge is not None and battery.charge >= 0.0
            assert battery.spent <= 25.0 + 1e-9


class TestInfiniteBattery:
    def test_never_depletes(self):
        battery = Battery(None)
        battery.draw(1e12)
        assert not battery.depleted
        assert battery.infinite
        assert battery.charge is None
        assert battery.fraction_remaining == 1.0

    def test_tracks_spending(self):
        battery = Battery(None)
        battery.draw(2.5)
        battery.draw(2.5)
        assert battery.spent == pytest.approx(5.0)

    def test_can_afford_anything(self):
        assert Battery(None).can_afford(1e18)
