"""Run the doctests embedded in the library's docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.core.runtime
import repro.models.cache
import repro.models.metrics
import repro.obs.profiler
import repro.obs.registry
import repro.obs.report
import repro.obs.spans
import repro.query.parser
import repro.query.spatial
import repro.simulation.rng

MODULES = [
    repro.models.cache,
    repro.models.metrics,
    repro.obs.profiler,
    repro.obs.registry,
    repro.obs.report,
    repro.obs.spans,
    repro.query.parser,
    repro.query.spatial,
    repro.simulation.rng,
    repro.core.runtime,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} has no doctests to run"
    assert results.failed == 0
