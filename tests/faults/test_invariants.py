"""Self-tests for the invariant checker.

A checker that never fires is worse than none: every invariant here is
driven to a *deliberately seeded* violation — forged node state or a
mutated protocol node — and must report it.  The happy path (a clean
election passes all checks) is covered too, so the checker neither
over- nor under-triggers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.core.status import NodeMode
from repro.data.series import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantError
from repro.network.topology import Topology


def elected_runtime(n: int = 6, seed: int = 13) -> SnapshotRuntime:
    base = np.linspace(0.0, 30.0, 300)
    dataset = Dataset(np.stack([base + 0.3 * i for i in range(n)]))
    topology = Topology([(0.08 * i, 0.0) for i in range(n)], ranges=2.0)
    runtime = SnapshotRuntime(
        topology,
        dataset,
        ProtocolConfig(threshold=5.0, heartbeat_period=10.0),
        seed=seed,
    )
    runtime.train(duration=6)
    runtime.run_election()
    return runtime


def passive_member(runtime: SnapshotRuntime) -> int:
    return next(
        node_id
        for node_id, node in runtime.nodes.items()
        if node.mode is NodeMode.PASSIVE
    )


class TestCleanPass:
    def test_clean_election_passes_all_checks(self):
        runtime = elected_runtime()
        checker = InvariantChecker(runtime)
        assert checker.check() == []
        assert checker.ok
        checker.close()

    def test_close_detaches_subscriptions(self):
        runtime = elected_runtime()
        trace = runtime.simulator.trace
        before = trace.n_subscribers("election.started")
        checker = InvariantChecker(runtime)
        assert trace.n_subscribers("election.started") == before + 1
        checker.close()
        checker.close()  # idempotent
        assert trace.n_subscribers("election.started") == before


class TestSeededViolations:
    def test_unsettled_node_reported(self):
        runtime = elected_runtime()
        runtime.nodes[2].mode = NodeMode.UNDEFINED
        checker = InvariantChecker(runtime, auto_raise=False)
        found = checker.check()
        assert any(v.invariant == "settled-mode" and v.node == 2 for v in found)

    def test_dead_representative_reported(self):
        runtime = elected_runtime()
        member = passive_member(runtime)
        rep = runtime.nodes[member].representative_id
        FaultInjector(runtime).crash(rep)
        checker = InvariantChecker(runtime, auto_raise=False)
        found = checker.check()
        assert any(
            v.invariant == "live-representative" and v.node == member
            for v in found
        )

    def test_missing_back_claim_reported_in_strict_mode_only(self):
        runtime = elected_runtime()
        member = passive_member(runtime)
        rep = runtime.nodes[member].representative_id
        del runtime.nodes[rep].represented[member]
        checker = InvariantChecker(runtime, auto_raise=False)
        assert any(v.invariant == "claimed-back" for v in checker.check())
        relaxed = InvariantChecker(runtime, auto_raise=False, strict_claims=False)
        assert relaxed.check() == []

    def test_double_claim_reported(self):
        runtime = elected_runtime()
        member = passive_member(runtime)
        rep = runtime.nodes[member].representative_id
        # Forge a second claimant: promote another node to ACTIVE with
        # a claim on the same member.
        other = next(
            node_id
            for node_id in runtime.nodes
            if node_id not in (member, rep)
        )
        from repro.core.protocol import MemberInfo

        runtime.nodes[other].mode = NodeMode.ACTIVE
        runtime.nodes[other].representative_id = other
        runtime.nodes[other].represented[member] = MemberInfo(
            location=None, accepted_at=runtime.now
        )
        checker = InvariantChecker(runtime, auto_raise=False)
        found = checker.check()
        assert any(
            v.invariant == "unique-claim" and v.node == member for v in found
        )

    def test_epoch_regression_reported(self):
        runtime = elected_runtime()
        checker = InvariantChecker(runtime, auto_raise=False)
        checker.check()  # records current epochs
        runtime.nodes[1].epoch -= 1
        found = checker.check()
        assert any(
            v.invariant == "epoch-monotone" and v.node == 1 for v in found
        )

    def test_epoch_regression_in_settled_trace_reported(self):
        runtime = elected_runtime()
        checker = InvariantChecker(runtime, auto_raise=False)
        trace = runtime.simulator.trace
        trace.emit(runtime.now, "protocol.settled", node=0, mode="active", epoch=9)
        trace.emit(runtime.now, "protocol.settled", node=0, mode="active", epoch=8)
        assert any(v.invariant == "epoch-monotone" for v in checker.violations)

    @pytest.mark.parametrize("flag", ["_awaiting_offers", "_resigning", "_await_reply"])
    def test_stale_flag_reported(self, flag):
        runtime = elected_runtime()
        setattr(runtime.nodes[3], flag, True)
        checker = InvariantChecker(runtime, auto_raise=False)
        found = checker.check()
        assert any(
            v.invariant == "no-stale-flags" and v.node == 3 and flag in v.detail
            for v in found
        )

    def test_auto_raise_raises_invariant_error(self):
        runtime = elected_runtime()
        runtime.nodes[2].mode = NodeMode.UNDEFINED
        checker = InvariantChecker(runtime)
        with pytest.raises(InvariantError) as excinfo:
            checker.check()
        assert "settled-mode" in str(excinfo.value)
        assert isinstance(excinfo.value, AssertionError)


class TestMessageBound:
    def test_real_election_violates_bound_of_one(self):
        """Non-vacuity of the Table 2 check: with an absurd bound of 1,
        a perfectly normal election must trip it."""
        base = np.linspace(0.0, 30.0, 300)
        dataset = Dataset(np.stack([base + 0.3 * i for i in range(6)]))
        topology = Topology([(0.08 * i, 0.0) for i in range(6)], ranges=2.0)
        runtime = SnapshotRuntime(
            topology, dataset, ProtocolConfig(threshold=5.0), seed=13
        )
        checker = InvariantChecker(runtime, message_bound=1)
        runtime.train(duration=6)
        with pytest.raises(InvariantError) as excinfo:
            runtime.run_election()
        assert "message-bound" in str(excinfo.value)
        assert checker.bound_checks_run == 1

    def test_real_election_respects_table2_bound(self):
        runtime = elected_runtime()  # checker attached after; elect again
        checker = InvariantChecker(runtime, message_bound=6, auto_raise=False)
        runtime.run_election()
        assert checker.bound_checks_run == 1
        assert checker.ok

    def test_pre_election_traffic_excluded_from_window(self):
        """The bound is windowed from the election start, not cumulative:
        training traffic before the epoch must not count against it."""
        base = np.linspace(0.0, 30.0, 300)
        dataset = Dataset(np.stack([base + 0.3 * i for i in range(6)]))
        topology = Topology([(0.08 * i, 0.0) for i in range(6)], ranges=2.0)
        runtime = SnapshotRuntime(
            topology, dataset, ProtocolConfig(threshold=5.0), seed=13
        )
        checker = InvariantChecker(runtime, message_bound=6)
        runtime.train(duration=6)
        # Protocol-message noise before the election: a full re-election
        # per node would blow a cumulative bound.
        for node in runtime.nodes.values():
            node.start_reelection()
        runtime.advance_to(runtime.now + 10.0)
        runtime.run_election()  # raises if the window leaked backwards
        assert checker.bound_checks_run == 1


class TestBehavioralMutant:
    def test_mutant_skipping_accept_caught_by_strict_claims(self):
        """Mutate one node to silently skip its Accept during §5.1
        re-election: it ends PASSIVE pointing at a representative that
        never learned of it.  The strict claimed-back invariant must
        catch the mutant (the checker is not vacuous on real protocol
        traffic, not just on forged state)."""
        runtime = elected_runtime(n=6, seed=17)
        member = passive_member(runtime)
        mutant = runtime.nodes[member]
        mutant._send_accept = lambda representative: None  # drops the Accept
        # Forget the election-time claim, then force a re-election.
        rep = mutant.representative_id
        runtime.nodes[rep].represented.pop(member, None)
        mutant.start_reelection()
        runtime.advance_to(runtime.now + 6.0)  # reply window + settling
        assert mutant.mode is NodeMode.PASSIVE  # chose a representative...
        checker = InvariantChecker(runtime, auto_raise=False)
        found = checker.check()
        assert any(
            v.invariant == "claimed-back" and v.node == member for v in found
        )
