"""Seeded randomized fault-schedule stress tests.

Each schedule trains, elects, runs §5.1 maintenance through a
randomized barrage of crashes, revivals, battery spikes, partitions
(and, in lossy configurations, a link-loss burst), then asserts every
protocol invariant at quiescence — including Table 2's six-message
bound for the election epoch.

The matrix size scales with ``REPRO_CHAOS_SEEDS`` (seeds per
configuration; default 50, so the default matrix is 50 × 4 = 200
schedules).  CI runs a reduced matrix; set it higher for soak runs.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import ChaosConfig, run_chaos_schedule

N_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "50"))

#: lossy/lossless × both cache policies (the acceptance matrix).
CONFIGURATIONS = [
    pytest.param(0.0, "model-aware", id="lossless-model-aware"),
    pytest.param(0.0, "round-robin", id="lossless-round-robin"),
    pytest.param(0.4, "model-aware", id="lossy-model-aware"),
    pytest.param(0.4, "round-robin", id="lossy-round-robin"),
]


@pytest.mark.chaos
@pytest.mark.parametrize("loss_burst,cache_policy", CONFIGURATIONS)
def test_chaos_matrix_upholds_all_invariants(loss_burst, cache_policy):
    """Hundreds of randomized fault schedules, zero violations allowed."""
    for seed in range(N_SEEDS):
        config = ChaosConfig(
            seed=seed, loss_burst=loss_burst, cache_policy=cache_policy
        )
        # run_chaos_schedule raises InvariantError (with the offending
        # schedule's seed in ``config``) on any violation.
        result = run_chaos_schedule(config)
        assert result.ok, f"seed {seed}: {result.violations}"
        # Every schedule must actually exercise the checks, including
        # the Table 2 message bound for its election epoch.
        assert result.checks_run == 2
        assert result.bound_checks_run == 1


@pytest.mark.chaos
def test_chaos_schedules_actually_inject_faults():
    """Anti-vacuity: across the seed range, schedules must crash nodes
    and force §5.1 repairs — a matrix that never perturbs the network
    would pass the invariants trivially."""
    crashes = revivals = reelections = 0
    for seed in range(min(N_SEEDS, 10)):
        result = run_chaos_schedule(ChaosConfig(seed=seed))
        crashes += result.crashes
        revivals += result.revivals
        reelections += result.reelections
    assert crashes > 0
    assert revivals > 0
    assert reelections > 0


def test_single_chaos_schedule_smoke():
    """One lossless and one lossy schedule run in the default suite even
    when the chaos marker is deselected."""
    clean = run_chaos_schedule(ChaosConfig(seed=0))
    assert clean.ok and clean.final_coverage > 0.0
    lossy = run_chaos_schedule(ChaosConfig(seed=0, loss_burst=0.4))
    assert lossy.ok
    # The lossy schedule shares the plan's crash events with the clean
    # one (same seed) plus the burst.
    assert len(lossy.plan) == len(clean.plan) + 1


# ---------------------------------------------------------------------------
# Sharded-engine chaos slice
# ---------------------------------------------------------------------------
#
# The differential counterpart of the matrix above: a seeded fault
# schedule — including a network partition whose group straddles the
# shard cut — rides on the 2-shard engine with the invariant checker
# attached, and the resulting state digest must still be byte-equal to
# the single-process run of the identical schedule.

import numpy as np

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.experiments.harness import make_cache_factory
from repro.faults.chaos import random_fault_plan
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan, NetworkPartition
from repro.network.topology import Topology
from repro.simulation.sharded import ShardedRuntime

SHARD_CHAOS_SEEDS = int(os.environ.get("REPRO_SHARD_CHAOS_SEEDS", "3"))


def _chaos_inputs(config):
    """The ``build_chaos_runtime`` deployment, per-entity disciplined."""
    n = config.n_nodes
    base = np.linspace(0.0, 30.0, 400)
    dataset = Dataset(np.stack([base + 0.3 * i for i in range(n)]))
    topology = Topology([(0.08 * i, 0.0) for i in range(n)], ranges=2.0)
    protocol = ProtocolConfig(
        threshold=config.threshold,
        heartbeat_period=config.heartbeat_period,
        rotation_probability=config.rotation_probability,
        member_expiry_periods=config.member_expiry_periods,
        rng_discipline="per-entity",
    )
    kwargs = dict(
        seed=config.seed,
        cache_factory=make_cache_factory(config.cache_policy, 2048),
        battery_capacity=config.battery_capacity,
    )
    return topology, dataset, protocol, kwargs


def _straddling_plan(config, partition):
    """A seeded schedule plus a partition crossing the shard cut."""
    rng = np.random.default_rng(np.random.SeedSequence([config.seed, 0xFA11]))
    events = list(random_fault_plan(config, rng))
    cut_group = frozenset(
        list(partition.shard_members(0))[-2:] + list(partition.shard_members(1))[:2]
    )
    owners = {partition.owner(i) for i in cut_group}
    assert owners == {0, 1}, "test premise: the group must straddle the cut"
    events.append(
        NetworkPartition(
            time=0.5 * config.heartbeat_period,
            duration=1.5 * config.heartbeat_period,
            group=cut_group,
        )
    )
    return FaultPlan(tuple(events))


def _ride_schedule(runtime, injector_apply, stop, config, plan):
    """Train → elect → check → maintain → faults → drain → check."""
    period = config.heartbeat_period
    checker = InvariantChecker(
        runtime,
        message_bound=config.message_bound,
        strict_claims=config.lossless,
    )
    try:
        runtime.train(duration=6.0)
        runtime.run_election()
        checker.check()
        runtime.start_maintenance()
        quiet_at = injector_apply(plan, runtime.now + period)
        runtime.advance_to(quiet_at + config.recovery_periods * period)
        stop()
        runtime.advance_to(runtime.now + 1.5 * period)
        checker.check()
        assert checker.checks_run == 2
        assert checker.bound_checks_run == 1
        assert not checker.violations
    finally:
        checker.close()


@pytest.mark.shard
def test_two_shard_chaos_slice_matches_reference():
    """Faults on the 2-shard engine: invariants hold on both engines and
    the final digests agree, partition-across-the-cut included."""
    for seed in range(SHARD_CHAOS_SEEDS):
        config = ChaosConfig(seed=seed)
        topology, dataset, protocol, kwargs = _chaos_inputs(config)

        sharded = ShardedRuntime(
            topology, dataset, protocol, n_shards=2, **kwargs
        )
        plan = _straddling_plan(config, sharded.partition)
        _ride_schedule(
            sharded,
            lambda p, at: sharded.apply_fault_plan(p, at=at),
            sharded.stop_maintenance,
            config,
            plan,
        )

        reference = SnapshotRuntime(topology, dataset, protocol, **kwargs)
        injector = FaultInjector(reference)
        _ride_schedule(
            reference,
            lambda p, at: injector.apply(p, at=at),
            reference.maintenance.stop,
            config,
            plan,
        )

        assert sharded.state_digest() == reference.state_digest(), (
            f"seed {seed}: sharded chaos trajectory diverged"
        )
        assert injector.crashes_applied > 0 or len(plan.crashes()) == 0
