"""Seeded randomized fault-schedule stress tests.

Each schedule trains, elects, runs §5.1 maintenance through a
randomized barrage of crashes, revivals, battery spikes, partitions
(and, in lossy configurations, a link-loss burst), then asserts every
protocol invariant at quiescence — including Table 2's six-message
bound for the election epoch.

The matrix size scales with ``REPRO_CHAOS_SEEDS`` (seeds per
configuration; default 50, so the default matrix is 50 × 4 = 200
schedules).  CI runs a reduced matrix; set it higher for soak runs.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import ChaosConfig, run_chaos_schedule

N_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "50"))

#: lossy/lossless × both cache policies (the acceptance matrix).
CONFIGURATIONS = [
    pytest.param(0.0, "model-aware", id="lossless-model-aware"),
    pytest.param(0.0, "round-robin", id="lossless-round-robin"),
    pytest.param(0.4, "model-aware", id="lossy-model-aware"),
    pytest.param(0.4, "round-robin", id="lossy-round-robin"),
]


@pytest.mark.chaos
@pytest.mark.parametrize("loss_burst,cache_policy", CONFIGURATIONS)
def test_chaos_matrix_upholds_all_invariants(loss_burst, cache_policy):
    """Hundreds of randomized fault schedules, zero violations allowed."""
    for seed in range(N_SEEDS):
        config = ChaosConfig(
            seed=seed, loss_burst=loss_burst, cache_policy=cache_policy
        )
        # run_chaos_schedule raises InvariantError (with the offending
        # schedule's seed in ``config``) on any violation.
        result = run_chaos_schedule(config)
        assert result.ok, f"seed {seed}: {result.violations}"
        # Every schedule must actually exercise the checks, including
        # the Table 2 message bound for its election epoch.
        assert result.checks_run == 2
        assert result.bound_checks_run == 1


@pytest.mark.chaos
def test_chaos_schedules_actually_inject_faults():
    """Anti-vacuity: across the seed range, schedules must crash nodes
    and force §5.1 repairs — a matrix that never perturbs the network
    would pass the invariants trivially."""
    crashes = revivals = reelections = 0
    for seed in range(min(N_SEEDS, 10)):
        result = run_chaos_schedule(ChaosConfig(seed=seed))
        crashes += result.crashes
        revivals += result.revivals
        reelections += result.reelections
    assert crashes > 0
    assert revivals > 0
    assert reelections > 0


def test_single_chaos_schedule_smoke():
    """One lossless and one lossy schedule run in the default suite even
    when the chaos marker is deselected."""
    clean = run_chaos_schedule(ChaosConfig(seed=0))
    assert clean.ok and clean.final_coverage > 0.0
    lossy = run_chaos_schedule(ChaosConfig(seed=0, loss_burst=0.4))
    assert lossy.ok
    # The lossy schedule shares the plan's crash events with the clean
    # one (same seed) plus the burst.
    assert len(lossy.plan) == len(clean.plan) + 1
