"""Unit tests for fault plans: validation, ordering, timing."""

from __future__ import annotations

import pytest

from repro.faults.plan import (
    BatteryDrain,
    FaultPlan,
    LinkLossBurst,
    NetworkPartition,
    NodeCrash,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(time=-1.0, node_id=0)

    def test_non_positive_down_for_rejected(self):
        with pytest.raises(ValueError):
            NodeCrash(time=0.0, node_id=0, down_for=0.0)

    def test_drain_fraction_bounds(self):
        with pytest.raises(ValueError):
            BatteryDrain(time=0.0, node_id=0, fraction=0.0)
        with pytest.raises(ValueError):
            BatteryDrain(time=0.0, node_id=0, fraction=1.5)
        assert BatteryDrain(time=0.0, node_id=0, fraction=1.0).fraction == 1.0

    def test_burst_needs_positive_duration_and_loss(self):
        with pytest.raises(ValueError):
            LinkLossBurst(time=0.0, duration=0.0, loss=0.5)
        with pytest.raises(ValueError):
            LinkLossBurst(time=0.0, duration=1.0, loss=0.0)

    def test_partition_needs_non_empty_group(self):
        with pytest.raises(ValueError):
            NetworkPartition(time=0.0, duration=1.0, group=frozenset())

    def test_partition_group_normalized_to_frozenset(self):
        partition = NetworkPartition(time=0.0, duration=1.0, group={1, 2})
        assert isinstance(partition.group, frozenset)


class TestEventTiming:
    def test_permanent_crash_ends_at_crash_time(self):
        assert NodeCrash(time=5.0, node_id=1).end_time == 5.0

    def test_transient_crash_ends_at_revival(self):
        assert NodeCrash(time=5.0, node_id=1, down_for=3.0).end_time == 8.0

    def test_burst_and_partition_end_after_duration(self):
        assert LinkLossBurst(time=2.0, duration=4.0).end_time == 6.0
        partition = NetworkPartition(time=1.0, duration=2.0, group=frozenset({0}))
        assert partition.end_time == 3.0


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        late = NodeCrash(time=9.0, node_id=0)
        early = BatteryDrain(time=1.0, node_id=1)
        plan = FaultPlan((late, early))
        assert [event.time for event in plan] == [1.0, 9.0]

    def test_end_time_is_last_effect(self):
        plan = FaultPlan(
            (
                NodeCrash(time=1.0, node_id=0, down_for=20.0),
                LinkLossBurst(time=5.0, duration=2.0),
            )
        )
        assert plan.end_time == 21.0

    def test_empty_plan(self):
        plan = FaultPlan()
        assert len(plan) == 0
        assert plan.end_time == 0.0
        assert plan.crashes() == ()

    def test_crashes_filters_other_events(self):
        crash = NodeCrash(time=2.0, node_id=3)
        plan = FaultPlan((BatteryDrain(time=1.0, node_id=0), crash))
        assert plan.crashes() == (crash,)

    def test_extended_returns_new_sorted_plan(self):
        plan = FaultPlan((NodeCrash(time=5.0, node_id=0),))
        grown = plan.extended(BatteryDrain(time=1.0, node_id=1))
        assert len(plan) == 1  # original untouched
        assert [event.time for event in grown] == [1.0, 5.0]
