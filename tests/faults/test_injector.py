"""Tests for the fault injector: crashes, revivals, drains, link faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ProtocolConfig
from repro.core.runtime import SnapshotRuntime
from repro.data.series import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BatteryDrain,
    FaultPlan,
    LinkLossBurst,
    NetworkPartition,
    NodeCrash,
)
from repro.network.links import GlobalLoss


def correlated_runtime(
    n: int = 8, seed: int = 11, battery: float | None = None, loss: float = 0.0
) -> SnapshotRuntime:
    from repro.network.topology import Topology

    base = np.linspace(0.0, 30.0, 300)
    dataset = Dataset(np.stack([base + 0.3 * i for i in range(n)]))
    topology = Topology([(0.08 * i, 0.0) for i in range(n)], ranges=2.0)
    return SnapshotRuntime(
        topology,
        dataset,
        ProtocolConfig(threshold=5.0, heartbeat_period=10.0),
        seed=seed,
        battery_capacity=battery,
        loss_model=GlobalLoss(loss),
    )


class TestCrashAndRevive:
    def test_crashed_node_sends_nothing(self):
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        injector.crash(3)
        device = runtime.radio.node(3)
        assert device.failed and not device.alive
        from repro.network.messages import Invitation

        assert not runtime.radio.broadcast(
            Invitation(sender=3, value=0.0, epoch=0)
        )

    def test_crash_is_idempotent(self):
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        injector.crash(3)
        injector.crash(3)
        assert injector.crashes_applied == 1
        assert runtime.simulator.trace.count("fault.crash") == 1

    def test_revive_reboots_protocol_node(self):
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        runtime.train(duration=6)
        runtime.run_election()
        injector.crash(3)
        injector.revive(3)
        assert runtime.radio.node(3).alive
        assert runtime.simulator.trace.count("protocol.reboot") == 1
        # The reboot re-elects: after the reply window the node settles.
        runtime.advance_to(runtime.now + 5.0)
        assert runtime.nodes[3].mode.settled

    def test_revive_without_crash_is_noop(self):
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        injector.revive(3)
        assert injector.revivals_applied == 0

    def test_crashed_while_awaiting_offers_recovers_after_revival(self):
        """The latent bug the reboot path fixes: a node that dies with
        ``_awaiting_offers`` set must not come back permanently mute."""
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        runtime.train(duration=6)
        runtime.run_election()
        node = runtime.nodes[2]
        node.start_reelection()
        assert node._awaiting_offers
        injector.crash(2)
        runtime.advance_to(runtime.now + 6.0)  # _finish_reelection fires dead
        injector.revive(2)
        # The reboot immediately opens a *fresh* re-election; the stale
        # one (whose _finish_reelection fired while dead) is forgotten,
        # so this round completes and the node settles.
        assert node._awaiting_offers
        runtime.advance_to(runtime.now + 5.0)
        assert not node._awaiting_offers
        assert node.mode.settled

    def test_battery_death_not_revived_as_alive(self):
        runtime = correlated_runtime(battery=50.0)
        injector = FaultInjector(runtime)
        injector.crash(1)
        runtime.radio.node(1).battery.draw(1e9)
        injector.revive(1)
        # The outage ended but the battery is gone: still dead, no reboot.
        assert not runtime.radio.node(1).alive
        assert runtime.simulator.trace.count("protocol.reboot") == 0


class TestDrain:
    def test_drain_draws_fraction_of_capacity(self):
        runtime = correlated_runtime(battery=1000.0)
        injector = FaultInjector(runtime)
        injector.drain(0, 0.4)
        assert runtime.radio.node(0).battery.charge == pytest.approx(600.0)

    def test_drain_on_infinite_battery_is_noop(self):
        runtime = correlated_runtime(battery=None)
        injector = FaultInjector(runtime)
        injector.drain(0, 0.9)
        assert runtime.radio.node(0).alive
        assert runtime.simulator.trace.count("fault.drain") == 0


class TestLinkFaults:
    def test_overlay_quiet_without_faults(self):
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        assert injector.overlay.quiet
        assert runtime.radio.loss_model is injector.overlay

    def test_injector_does_not_perturb_faultless_outcome(self):
        """Arming an injector (no faults) must not change the election:
        the overlay delegates draws to the base model verbatim."""
        plain = correlated_runtime(loss=0.3)
        plain.train(duration=6)
        view_plain = plain.run_election()

        armed = correlated_runtime(loss=0.3)
        FaultInjector(armed)
        armed.train(duration=6)
        view_armed = armed.run_election()

        assert view_plain.assignment == view_armed.assignment
        assert plain.stats.total_sent() == armed.stats.total_sent()

    def test_full_burst_blocks_delivery(self):
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        injector.begin_burst(1.0)
        from repro.network.messages import Invitation

        runtime.radio.broadcast(Invitation(sender=0, value=0.0, epoch=0))
        runtime.advance_to(runtime.now + 1.0)
        assert runtime.stats.delivered.total() == 0
        injector.end_burst(1.0)
        assert injector.overlay.quiet
        runtime.radio.broadcast(Invitation(sender=0, value=0.0, epoch=0))
        runtime.advance_to(runtime.now + 1.0)
        assert runtime.stats.delivered.total() > 0

    def test_burst_composes_with_base_loss(self):
        injector = FaultInjector(correlated_runtime(loss=0.5))
        injector.begin_burst(0.5)
        assert injector.overlay.loss_probability(0, 1) == pytest.approx(0.75)

    def test_partition_severs_only_cross_links(self):
        runtime = correlated_runtime()
        injector = FaultInjector(runtime)
        group = frozenset({0, 1, 2})
        injector.begin_partition(group)
        overlay = injector.overlay
        assert overlay.loss_probability(0, 5) == 1.0
        assert overlay.loss_probability(5, 0) == 1.0
        assert overlay.loss_probability(0, 1) == 0.0
        assert overlay.loss_probability(4, 5) == 0.0
        injector.end_partition(group)
        assert overlay.quiet


class TestPlanScheduling:
    def test_apply_schedules_relative_to_base(self):
        runtime = correlated_runtime(battery=1000.0)
        injector = FaultInjector(runtime)
        plan = FaultPlan(
            (
                NodeCrash(time=1.0, node_id=0, down_for=2.0),
                BatteryDrain(time=2.0, node_id=1, fraction=0.5),
                LinkLossBurst(time=0.5, duration=1.0, loss=1.0),
                NetworkPartition(time=0.5, duration=1.0, group=frozenset({0, 1})),
            )
        )
        quiet_at = injector.apply(plan, at=runtime.now + 10.0)
        assert quiet_at == pytest.approx(runtime.now + 13.0)
        runtime.advance_to(runtime.now + 10.9)
        assert runtime.radio.node(0).alive  # crash not due yet
        assert not injector.overlay.quiet  # burst + partition active
        runtime.advance_to(runtime.now + 0.2)
        assert not runtime.radio.node(0).alive
        runtime.advance_to(quiet_at + 0.1)
        assert runtime.radio.node(0).alive  # revived
        assert injector.overlay.quiet
        assert runtime.radio.node(1).battery.charge == pytest.approx(500.0)

    def test_apply_in_the_past_rejected(self):
        runtime = correlated_runtime()
        runtime.advance_to(5.0)
        injector = FaultInjector(runtime)
        with pytest.raises(ValueError):
            injector.apply(FaultPlan(), at=1.0)
