"""Edge cases of registry export/merge (``obs.shardmetrics``).

The shard-conformance suite exercises the happy path at scale; these
tests pin the degenerate and error-path contracts directly.
"""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.shardmetrics import export_metrics, merge_metrics


def registry_with(counter=(), gauge=None, hist=()) -> MetricsRegistry:
    registry = MetricsRegistry()
    counts = registry.counter("msgs", labels=("kind",))
    for kind, amount in counter:
        counts.inc_by((kind,), amount)
    if gauge is not None:
        registry.gauge("depth").set(gauge)
    histogram = registry.histogram("sizes", (1.0, 10.0))
    for value in hist:
        histogram.observe(value)
    return registry


def test_merge_of_no_exports_is_rejected():
    with pytest.raises(ValueError, match="at least one"):
        merge_metrics([])


def test_single_export_degenerate_merge_reproduces_rows():
    registry = registry_with(
        counter=[("data", 3), ("proto", 5)], gauge=2.0, hist=[0.5, 4.0, 40.0]
    )
    merged = merge_metrics([export_metrics(registry)])
    assert list(merged.rows()) == list(registry.rows())
    assert merged.enabled == registry.enabled


def test_empty_registry_merges_to_empty():
    merged = merge_metrics([export_metrics(MetricsRegistry())])
    assert list(merged.rows()) == []


def test_empty_shard_contributes_nothing():
    """A shard that owns no nodes exports an empty registry; folding it
    in must not perturb the populated shard's cells."""
    populated = registry_with(counter=[("data", 3)], hist=[4.0])
    merged = merge_metrics(
        [export_metrics(populated), export_metrics(MetricsRegistry())]
    )
    assert list(merged.rows()) == list(populated.rows())


def test_disjoint_label_sets_union():
    left = registry_with(counter=[("data", 3)])
    right = registry_with(counter=[("proto", 7)])
    merged = merge_metrics([export_metrics(left), export_metrics(right)])
    counts = merged.metric("msgs")
    assert counts.value(("data",)) == 3
    assert counts.value(("proto",)) == 7
    assert counts.total() == 10


def test_shared_counter_cells_sum():
    left = registry_with(counter=[("data", 3)], hist=[0.5, 4.0])
    right = registry_with(counter=[("data", 4)], hist=[40.0])
    merged = merge_metrics([export_metrics(left), export_metrics(right)])
    assert merged.metric("msgs").value(("data",)) == 7
    cell = merged.metric("sizes").cell()
    assert cell.count == 3
    assert cell.sum == pytest.approx(44.5)
    assert cell.counts == [1, 1, 1]


def test_gauges_must_agree():
    left = registry_with(gauge=2.0)
    right = registry_with(gauge=3.0)
    with pytest.raises(ValueError, match="diverges across"):
        merge_metrics([export_metrics(left), export_metrics(right)])
    # agreement is fine
    merged = merge_metrics([export_metrics(left), export_metrics(left)])
    assert merged.metric("depth").value() == 2.0


def test_enablement_must_agree():
    with pytest.raises(ValueError, match="enablement"):
        merge_metrics(
            [
                export_metrics(MetricsRegistry(enabled=True)),
                export_metrics(MetricsRegistry(enabled=False)),
            ]
        )


def test_maintenance_costs_rebuild_replaces_cell_summation():
    """With ``maintenance_costs`` given, the per-shard cells of the
    Figure-15 histogram are ignored and the merged histogram holds
    exactly the recomputed per-round costs."""
    shard = MetricsRegistry()
    histogram = shard.histogram("maintenance.msgs_per_node", (1.0, 10.0))
    histogram.observe(999.0)  # a raw ingredient, not a finished cost
    merged = merge_metrics([export_metrics(shard)], maintenance_costs=[2.0, 3.0])
    cell = merged.metric("maintenance.msgs_per_node").cell()
    assert cell.count == 2
    assert cell.sum == pytest.approx(5.0)

    # ... and when no shard ever defined the histogram, the costs are
    # dropped rather than inventing a metric the reference lacks.
    merged = merge_metrics(
        [export_metrics(MetricsRegistry())], maintenance_costs=[2.0]
    )
    assert "maintenance.msgs_per_node" not in merged
