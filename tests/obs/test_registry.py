"""Metrics-registry correctness: golden parity, invariants, gating."""

from __future__ import annotations

import time
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.stats import MessageStats
from repro.obs.registry import MetricsRegistry

from tests.conftest import make_runtime


# ----------------------------------------------------------------------
# golden-trace parity: the registry IS the legacy accounting
# ----------------------------------------------------------------------

#: Pinned transmission counts of the seeded 20-node discovery run below
#: (seed=7, threshold=1.0).  If these change, the simulation trajectory
#: changed — observability must never do that.
GOLDEN_TOTAL_SENT = 282
GOLDEN_KINDS = {
    "DataReport": 200,
    "Invitation": 20,
    "CandidateList": 20,
    "Accept": 20,
    "StayActive": 18,
    "Recall": 2,
    "AckRepresenting": 2,
}


def _discovery_run(**runtime_kwargs):
    runtime = make_runtime(**runtime_kwargs)
    runtime.train(duration=10)
    runtime.run_election()
    return runtime


class TestGoldenParity:
    def test_registry_counts_bit_identical_to_message_stats(self):
        runtime = _discovery_run()
        registry = runtime.metrics
        sent = registry.metric("net.messages.sent")
        # The registry cell store IS the MessageStats counter object.
        assert sent.cells is runtime.stats.sent
        assert sum(sent.cells.values()) == runtime.stats.total_sent()

    def test_seeded_run_matches_golden_counts(self):
        runtime = _discovery_run()
        by_kind = Counter()
        for (_, kind), count in runtime.stats.sent.items():
            by_kind[kind] += count
        assert runtime.stats.total_sent() == GOLDEN_TOTAL_SENT
        assert dict(by_kind) == GOLDEN_KINDS

    def test_registry_counts_match_trace_record_stream(self):
        runtime = _discovery_run(keep_trace_records=True)
        trace_by_kind = Counter(
            record.payload["message_kind"]
            for record in runtime.simulator.trace.of_kind("message.sent")
        )
        registry_by_kind = Counter()
        for (_, kind), count in runtime.metrics.metric("net.messages.sent").cells.items():
            registry_by_kind[kind] += count
        assert registry_by_kind == trace_by_kind

    def test_energy_ledger_is_registry_view(self):
        runtime = _discovery_run()
        draw = runtime.metrics.metric("energy.draw")
        assert draw.cells[(0, "transmit")] == runtime.ledger.node_breakdown(0)["transmit"]
        assert sum(draw.cells.values()) == pytest.approx(runtime.ledger.total())

    @pytest.mark.parametrize("policy", ["model-aware", "round-robin"])
    def test_parity_holds_under_both_cache_policies(self, policy):
        from repro.experiments.harness import make_cache_factory

        runtime = make_runtime(cache_factory=make_cache_factory(policy, 2048))
        runtime.train(duration=10)
        runtime.run_election()
        sent = runtime.metrics.metric("net.messages.sent")
        assert sent.cells is runtime.stats.sent
        assert sum(sent.cells.values()) == runtime.stats.total_sent() > 0
        observe = runtime.metrics.metric("cache.observe")
        assert observe.total() > 0


# ----------------------------------------------------------------------
# histogram invariants (property-based)
# ----------------------------------------------------------------------


class TestHistogramInvariants:
    @given(
        st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6,
                allow_nan=False, allow_infinity=False,
            ),
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_bucket_counts_sum_to_observation_count(self, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.0, 1.0, 10.0, 100.0))
        for value in values:
            histogram.observe(value)
        cell = histogram.cell()
        assert sum(cell.counts) == cell.count == len(values)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.floats(
                    min_value=-1e3, max_value=1e3,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_merged_cell_equals_sum_of_labeled_cells(self, observations):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(-10.0, 0.0, 10.0), labels=("node",))
        for node, value in observations:
            histogram.observe(value, node)
        merged = histogram.merged()
        assert merged.count == len(observations)
        assert sum(merged.counts) == merged.count
        assert merged.count == sum(cell.count for cell in histogram.cells.values())

    def test_bucket_edges_are_inclusive_upper_bounds(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)   # lands in <=1.0
        histogram.observe(1.5)   # lands in <=2.0
        histogram.observe(3.0)   # overflow
        assert histogram.cell().counts == [1, 1, 1]

    def test_buckets_must_increase(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("empty", buckets=())


# ----------------------------------------------------------------------
# registration semantics
# ----------------------------------------------------------------------


class TestRegistration:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("c", labels=("node",))
        b = registry.counter("c", labels=("node",))
        assert a is b

    def test_signature_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("node",))
        with pytest.raises(ValueError):
            registry.counter("c", labels=("node", "kind"))
        with pytest.raises(ValueError):
            registry.gauge("c")
        with pytest.raises(ValueError):
            registry.counter("c", labels=("node",), essential=True)

    def test_histogram_bucket_mismatch_is_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))


# ----------------------------------------------------------------------
# disabled registry: zero records, bounded overhead, protocol untouched
# ----------------------------------------------------------------------


class TestBulkIncrement:
    def test_inc_by_equals_repeated_inc(self):
        registry = MetricsRegistry()
        bulk = registry.counter("bulk", labels=("node", "action"))
        loop = registry.counter("loop", labels=("node", "action"))
        bulk.inc_by((1, "append"), 5)
        bulk.inc_by((2, "reject"), 3)
        bulk.inc_by((1, "append"), 2)
        for _ in range(7):
            loop.inc((1, "append"))
        for _ in range(3):
            loop.inc((2, "reject"))
        assert dict(bulk.cells) == dict(loop.cells)
        assert bulk.total() == 10

    @given(
        batches=st.lists(
            st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(1, 50)),
            max_size=30,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_inc_by_cell_order_and_values_match_scalar(self, batches):
        """Bulk flushes must preserve the Counter's first-touch cell
        insertion order — it is digested by the persist layer."""
        registry = MetricsRegistry()
        bulk = registry.counter("bulk")
        loop = registry.counter("loop")
        for key, n in batches:
            bulk.inc_by(key, n)
            for _ in range(n):
                loop.inc(key)
        assert list(bulk.cells.items()) == list(loop.cells.items())

    def test_inc_by_respects_disabled_gate(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("gated")
        counter.inc_by("x", 100)
        assert not counter.cells
        registry.enabled = True
        counter.inc_by("x", 4)
        assert counter.value("x") == 4


class TestDisabledRegistry:
    def test_disabled_registry_records_nothing_nonessential(self):
        runtime = make_runtime(metrics_enabled=False)
        runtime.train(duration=10)
        runtime.run_election()
        registry = runtime.metrics
        for name in registry.names():
            metric = registry.metric(name)
            if not metric.essential:
                assert not metric.cells, f"{name} recorded while disabled"

    def test_essential_accounting_survives_disabling(self):
        enabled = _discovery_run()
        disabled = _discovery_run(metrics_enabled=False)
        # Same trajectory, same functional accounting, span records off.
        assert disabled.stats.sent == enabled.stats.sent
        assert disabled.simulator.trace.count("span.begin") == 0
        assert enabled.simulator.trace.count("span.begin") > 0

    def test_disabled_run_has_identical_trajectory(self):
        enabled = _discovery_run()
        disabled = _discovery_run(metrics_enabled=False)
        assert [n.mode for n in enabled.nodes.values()] == [
            n.mode for n in disabled.nodes.values()
        ]
        assert enabled.ledger.total() == disabled.ledger.total()

    def test_disabled_record_path_overhead_is_bounded(self):
        """A generous tier-1 smoke bound; the precise <3% gate lives in
        benchmarks/bench_perf_radio.py where timing is controlled."""
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c", labels=("node",))
        n = 200_000
        start = time.perf_counter()
        for i in range(n):
            counter.inc(3)
        disabled_time = time.perf_counter() - start
        assert not counter.cells
        # A disabled increment is two attribute loads and a branch; even
        # heavily loaded CI should do 200k of them in well under a second.
        assert disabled_time < 1.0
